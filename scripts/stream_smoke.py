#!/usr/bin/env python3
"""CI stream smoke: a live delay stream against a real worker fleet.

Usage:  stream_smoke.py [num_workers] [num_events]   (default 2, 24)

Builds a tiny store, spawns a worker fleet under a `WorkerSupervisor`
behind a `FleetGateway`, generates a seeded delay stream
(docs/STREAMS.md), saves/loads it through the JSON interchange format,
and replays it with the production harness
(`repro.streams.replay_stream`) — closed-loop query workers running
alongside the delay poster, every batch delta-replanned
(`replan="incremental"`) through the fleet's coordinated two-phase
swap.  The bars:

1. **zero failed client requests** — queries and delay posts — across
   20+ streamed commits (`ReplayReport.check()`);
2. **generation accounting**: the fleet generation and every worker's
   generation equal the number of committed batches;
3. the gateway counted every swap as incremental and published a
   per-swap routing pause in `/metrics`.

Exits 0 only if every bar holds.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import shutil
import sys
import tempfile
import threading
from pathlib import Path

from repro.client import HttpBackend
from repro.fleet import FleetGateway, WorkerSupervisor
from repro.service import ServiceConfig, TransitService
from repro.streams import DelayStream, ReplayConfig, replay_stream
from repro.synthetic.delays import generate_delay_stream
from repro.synthetic.instances import make_instance

CONFIG = ServiceConfig(
    num_threads=2, use_distance_table=True, transfer_fraction=0.25
)
MIN_COMMITS = 20


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def main() -> int:
    num_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    num_events = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    assert num_events >= MIN_COMMITS, (
        f"the smoke must stream at least {MIN_COMMITS} commits"
    )
    tmp = Path(tempfile.mkdtemp(prefix="stream-smoke-"))
    timetable = make_instance("oahu", "tiny")
    store = tmp / "oahu"
    TransitService(timetable, CONFIG).save(store)
    print(f"store prepared at {store}")

    # Through the interchange format on purpose: the replayed stream
    # is what a committed scenario file would carry.
    stream_path = tmp / "stream.json"
    generate_delay_stream(
        timetable,
        seed=42,
        num_events=num_events,
        duration_s=2.0,
        name="ci-smoke",
    ).save(stream_path)
    stream = DelayStream.load(stream_path)
    print(f"stream {stream.name!r}: {stream.num_events} events")

    supervisor = WorkerSupervisor(
        [store],
        num_workers,
        runtime_dir=tmp / "rt",
        drain_grace=0.0,
        restart_backoff=0.1,
        stable_after=2.0,
        poll_interval=0.05,
    )
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()

    def run(coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)

    supervisor.start()
    gateway = FleetGateway(supervisor.endpoints, port=0, health_interval=0.1)
    try:
        run(gateway.start())
        run(gateway.wait_ready(workers=num_workers), 120)
        port = gateway.port
        print(f"gateway :{port} ready, {num_workers} workers healthy")

        report = replay_stream(
            stream,
            lambda: HttpBackend(f"http://127.0.0.1:{port}", timeout=120),
            ReplayConfig(
                query_threads=2,
                speed=4.0,
                replan="incremental",
                max_swap_seconds=120.0,
            ),
        ).check()  # bar 1: zero failed requests, every event committed
        m = report.metrics
        print(
            f"replayed {m['delay_posts_total']} commits, "
            f"{m['queries_total']} queries alongside, 0 failed "
            f"(swap ack max {m['swap_seconds_max'] * 1000:.0f} ms)"
        )

        # Bar 2: fleet + every worker at generation == committed batches.
        health = get_json(port, "/healthz")
        assert health["generations"] == {"oahu": stream.num_events}, health
        assert all(
            w["generations"] == {"oahu": stream.num_events}
            for w in health["workers"].values()
        ), health["workers"]
        assert m["last_generation"] == stream.num_events

        # Bar 3: every swap took the delta path, and the per-swap
        # routing pause is published.
        metrics = get_json(port, "/metrics")["gateway"]
        assert metrics["incremental_swaps_total"] == {
            "oahu": stream.num_events
        }, metrics
        pause = metrics["last_swap_pause_seconds"]["oahu"]
        assert pause >= 0.0, metrics
        print(
            f"generation {stream.num_events} on all {num_workers} workers, "
            f"all swaps incremental, last pause {pause * 1000:.1f} ms"
        )
        print("stream smoke: all bars hold")
        return 0
    finally:
        try:
            run(gateway.shutdown(), 30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            supervisor.stop()
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
