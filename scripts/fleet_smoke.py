#!/usr/bin/env python3
"""CI fleet smoke: the whole `repro.fleet` story in one process tree.

Usage:  fleet_smoke.py [num_workers]   (default 3)

Builds a tiny store, spawns a real worker fleet under a
`WorkerSupervisor`, fronts it with a `FleetGateway`, and then walks
the subsystem's contracts end to end over real TCP (docs/FLEET.md):

1. readiness: gateway `/healthz` reports every worker healthy;
2. routing: all six query shapes answer through the gateway and
   agree with each other (including the query zoo — multicriteria,
   via, min-transfers);
3. failover: SIGKILL a worker under closed-loop traffic — **zero**
   failed client requests, ejection + readmission in `/metrics`;
4. coordinated swap: `apply_delays` against the gateway bumps every
   worker to generation 1, answers move, no mixed generations;
5. catch-up: SIGKILL another worker *after* the swap — the respawned
   process (which warm-loaded the undelayed store) is replayed the
   delay log before readmission and reports generation 1.

Exits 0 only if every bar holds.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import shutil
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.client import connect
from repro.fleet import FleetGateway, WorkerSupervisor
from repro.service import ServiceConfig, TransitService
from repro.synthetic.instances import make_instance
from repro.timetable.delays import Delay

CONFIG = ServiceConfig(
    num_threads=2, use_distance_table=True, transfer_fraction=0.25
)


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def main() -> int:
    num_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    tmp = Path(tempfile.mkdtemp(prefix="fleet-smoke-"))
    store = tmp / "oahu"
    TransitService(make_instance("oahu", "tiny"), CONFIG).save(store)
    print(f"store prepared at {store}")

    supervisor = WorkerSupervisor(
        [store],
        num_workers,
        runtime_dir=tmp / "rt",
        drain_grace=0.0,
        restart_backoff=0.1,
        stable_after=2.0,
        poll_interval=0.05,
    )
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()

    def run(coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)

    def wait_worker(name: str, want_healthy: bool, timeout: float = 90.0):
        async def _wait() -> None:
            deadline = asyncio.get_running_loop().time() + timeout
            while True:
                st = gateway._workers.get(name)
                healthy = st is not None and st.state == "healthy"
                if healthy == want_healthy:
                    return
                if asyncio.get_running_loop().time() > deadline:
                    raise TimeoutError(
                        f"{name}: healthy={healthy}, wanted {want_healthy}"
                    )
                await asyncio.sleep(0.02)

        run(_wait(), timeout + 10)

    supervisor.start()
    gateway = FleetGateway(supervisor.endpoints, port=0, health_interval=0.1)
    try:
        run(gateway.start())
        run(gateway.wait_ready(workers=num_workers), 120)
        port = gateway.port

        # 1. Readiness.
        health = get_json(port, "/healthz")
        assert health["role"] == "gateway" and health["ready"] is True
        assert len(health["workers"]) == num_workers
        assert all(
            w["state"] == "healthy" for w in health["workers"].values()
        )
        print(f"gateway :{port} ready, {num_workers} workers healthy")

        # 2. All query shapes, agreeing with each other.
        backend = connect(f"http://127.0.0.1:{port}")
        journey = backend.journey(2, 5)
        profile = backend.profile(2, targets=[5])
        batch = backend.batch([(2, 5)])
        assert profile.profiles[5] == journey.profile
        assert batch.journeys[0].profile == journey.profile
        mc = backend.multicriteria(2, 5, departure=480)
        assert mc.best_arrival == journey.profile.earliest_arrival(480)
        mt = backend.min_transfers(2, 5, departure=480)
        assert (mt.transfers, mt.arrival) == (
            mc.options[0].transfers,
            mc.options[0].arrival,
        )
        via = backend.via(2, 5, 7, departure=480)
        assert via.via_arrival == journey.profile.earliest_arrival(480)
        print(
            f"query shapes agree ({len(journey.profile)} connections, "
            f"zoo front of {len(mc.options)})"
        )

        # 3. Failover: SIGKILL w0 under closed-loop traffic.
        failures: list[int] = []
        counted = [0]
        stop = threading.Event()

        def hammer(slot: int) -> None:
            client = connect(f"http://127.0.0.1:{port}")
            try:
                i = 0
                while not stop.is_set():
                    client.journey((slot + i) % 12, (slot + i + 5) % 12)
                    counted[0] += 1
                    i += 1
            except Exception:
                failures.append(slot)
                raise
            finally:
                client.close()

        threads = [
            threading.Thread(target=hammer, args=(s,), daemon=True)
            for s in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.4)
        supervisor.kill("w0", signal.SIGKILL)
        wait_worker("w0", want_healthy=False, timeout=30)
        wait_worker("w0", want_healthy=True, timeout=90)
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not failures, f"clients {failures} saw errors across the kill"
        metrics = get_json(port, "/metrics")["gateway"]
        assert metrics["ejections_total"].get("w0", 0) >= 1
        assert metrics["readmissions_total"].get("w0", 0) >= 1
        print(
            f"failover: {counted[0]} requests, 0 failed across SIGKILL "
            f"(failovers={metrics['failovers_total']}, "
            f"restarts={supervisor.restarts_total})"
        )

        # 4. Coordinated swap through the plain SDK call.
        update = backend.apply_delays([Delay(train=0, minutes=45)])
        assert update.generation == 1, update
        delayed = backend.journey(2, 5)
        assert delayed.profile != journey.profile, "swap moved nothing"
        delayed_mc = backend.multicriteria(2, 5, departure=480)
        assert delayed_mc.best_arrival == delayed.profile.earliest_arrival(
            480
        ), "post-swap multicriteria does not track the delayed profile"
        health = get_json(port, "/healthz")
        assert health["generations"] == {"oahu": 1}
        assert all(
            w["generations"] == {"oahu": 1}
            for w in health["workers"].values()
        ), health["workers"]
        print(
            f"coordinated swap: generation 1 on all {num_workers} workers "
            f"in {update.swap_seconds * 1000:.0f} ms"
        )

        # 5. Catch-up: a post-swap crash rejoins at the fleet generation.
        supervisor.kill("w1", signal.SIGKILL)
        wait_worker("w1", want_healthy=False, timeout=30)
        wait_worker("w1", want_healthy=True, timeout=90)
        w1_port = int(supervisor.endpoints()["w1"].rsplit(":", 1)[1])
        w1_health = get_json(w1_port, "/healthz")
        assert w1_health["generations"] == {"oahu": 1}, w1_health
        metrics = get_json(port, "/metrics")["gateway"]
        assert metrics["catch_up_batches_total"] >= 1
        via_w1 = connect(f"http://127.0.0.1:{w1_port}")
        try:
            assert via_w1.journey(2, 5).profile == delayed.profile
        finally:
            via_w1.close()
        print(
            f"catch-up: respawned w1 replayed "
            f"{metrics['catch_up_batches_total']} batch(es), "
            f"answers from generation 1"
        )

        backend.close()
        print("fleet smoke: all bars hold")
        return 0
    finally:
        try:
            run(gateway.shutdown(), 30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            supervisor.stop()
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
