#!/usr/bin/env python3
"""CI round trip: drive every server endpoint through the client SDK.

Usage:  client_roundtrip.py http://127.0.0.1:PORT

Run against a `repro-transit serve` started with ``--max-inflight 1``
and a generous ``--batch-window-ms`` (the CI server-smoke job does):
the single admission slot plus the journey collection window let the
script *force* a real 503→retry→success cycle deterministically —
one thread parks a journey in the batch window (occupying the slot),
the main thread's journey is rejected 503 `overloaded`, backs off per
``Retry-After``, and succeeds on retry.

Asserted end to end, over real TCP, via :class:`HttpBackend` only:

1. dataset resolution from ``/v1/datasets`` (no name given);
2. all six query shapes answer, and agree with each other (journey
   profile == restricted one-to-all profile == batch item == streamed
   item; the multicriteria front's best arrival == the journey's; the
   min-transfers head sits on the front; via == two chained journeys);
3. ``journey_many`` batches in one round trip;
4. the forced retry happened (client counted it, the server's
   ``retries_observed_total`` and ``rejected_total`` saw it);
5. a delay hot swap bumps the generation and moves the journey —
   and the new shapes answer from the delayed generation too;
6. typed errors: out-of-range station raises the documented
   exception, not a raw HTTP failure — for old and new shapes alike.
"""

from __future__ import annotations

import sys
import threading

from repro.client import BadRequestError, HttpBackend, RetryPolicy
from repro.service.model import JourneyRequest
from repro.timetable.delays import Delay


def main() -> int:
    base_url = sys.argv[1]
    backend = HttpBackend(
        base_url,
        retry=RetryPolicy(retries=6, backoff=0.1, max_backoff=1.5),
        timeout=60,
    )

    # 1. Resolve the one served dataset.
    info = backend.info()
    print(f"dataset: {info.name} ({info.stations} stations, "
          f"generation {info.generation})")
    assert info.generation == 0

    # 2. Query-shape agreement.
    journey = backend.journey(2, 5)
    profile = backend.profile(2, targets=[5])
    assert profile.profiles[5] == journey.profile, (
        "profile restriction disagrees with the journey profile"
    )
    batch = backend.batch([(2, 5)])
    assert batch.journeys[0].profile == journey.profile
    streamed = list(backend.iter_batch([(2, 5)]))
    assert streamed[0].profile == journey.profile
    print(f"query shapes agree: {len(journey.profile)} connection points")

    # 2b. The query zoo: multicriteria, via, min-transfers.
    departure = 480
    mc = backend.multicriteria(2, 5, departure=departure)
    assert mc.reachable and mc.options, mc
    assert mc.best_arrival == journey.profile.earliest_arrival(departure), (
        "multicriteria best arrival disagrees with the journey profile"
    )
    mt = backend.min_transfers(2, 5, departure=departure)
    assert (mt.transfers, mt.arrival) == (
        mc.options[0].transfers,
        mc.options[0].arrival,
    ), "min-transfers head is not the front's first option"
    via = backend.via(2, 5, 7, departure=departure)
    leg_one = backend.journey(2, 5, departure=departure)
    assert via.via_arrival == leg_one.arrival
    leg_two = backend.journey(5, 7, departure=via.via_arrival)
    assert via.arrival == leg_two.arrival, (
        "via arrival disagrees with two chained journeys"
    )
    print(
        f"query zoo agrees: front of {len(mc.options)}, "
        f"min {mt.transfers} transfer(s), via at {via.via_arrival}"
    )

    # 3. journey_many in one round trip.
    many = backend.journey_many([JourneyRequest(2, 5), JourneyRequest(0, 7)])
    assert [a.target for a in many] == [5, 7]
    assert many[0].profile == journey.profile
    print(f"journey_many answered {len(many)} journeys in one request")

    # 4. Force a retry: park one journey in the batch window (it holds
    # the single admission slot), then collide with it.
    parked = threading.Thread(
        target=lambda: backend.journey(1, 6)
    )
    parked.start()
    collided = backend.journey(3, 8)
    parked.join(timeout=60)
    assert collided.reachable is not None  # an actual answer arrived
    assert backend.stats.retries >= 1, (
        f"expected the collision to force a 503 retry "
        f"(stats: {backend.stats})"
    )
    print(f"forced retry observed client-side: {backend.stats.retries}")

    # 5. Hot swap moves the journey and bumps the generation.
    update = backend.apply_delays([Delay(train=0, minutes=45)])
    assert update.generation == 1, update
    delayed = backend.journey(2, 5)
    assert delayed.profile != journey.profile, (
        "post-swap journey did not change"
    )
    assert backend.info().generation == 1
    print(f"hot swap: generation {update.generation}, journey moved")

    # 5b. The new shapes answer from the delayed generation: their
    # arrivals must track the post-swap journey profile, not the old.
    delayed_mc = backend.multicriteria(2, 5, departure=departure)
    assert delayed_mc.best_arrival == delayed.profile.earliest_arrival(
        departure
    ), "post-swap multicriteria does not match the delayed profile"
    delayed_mt = backend.min_transfers(2, 5, departure=departure)
    assert delayed_mt.arrival == delayed_mc.options[0].arrival
    delayed_via = backend.via(2, 5, 7, departure=departure)
    assert delayed_via.via_arrival == delayed.profile.earliest_arrival(
        departure
    )
    print("query zoo answers from the delayed generation")

    # 6. Typed errors over the wire.
    try:
        backend.journey(0, 10**6)
    except BadRequestError as exc:
        assert exc.code == "out_of_range" and exc.field == "target"
        print(f"typed rejection: {exc}")
    else:
        raise AssertionError("out-of-range target was not rejected")
    try:
        backend.via(0, 10**6, 5, departure=480)
    except BadRequestError as exc:
        assert exc.code == "out_of_range" and exc.field == "via"
        print(f"typed rejection (via): {exc}")
    else:
        raise AssertionError("out-of-range via was not rejected")

    # The server saw all of it.
    metrics = backend.server_metrics()
    assert metrics["retries_observed_total"] >= 1, metrics
    assert metrics["rejected_total"] >= 1, metrics
    assert metrics["swaps_total"] == {info.name: 1}, metrics
    served = sum(metrics["requests_total"].values())
    print(f"server metrics: {served} requests, "
          f"{metrics['rejected_total']} rejected, "
          f"{metrics['retries_observed_total']} retries observed")
    backend.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
