#!/usr/bin/env python3
"""A realistic end-user scenario: commute planning over a GTFS feed.

Generates a city network, exports it as a GTFS-like feed (the format
real agencies publish), loads it back — the round trip a downstream
user of this library would perform — and answers the questions a
commuter actually asks:

* "When do I need to leave to be at work by 9?"
* "How does my travel time vary over the day?"
* "What is the last connection home?"

Run:  python examples/city_commute.py
"""

import tempfile
from pathlib import Path

from repro import (
    ServiceConfig,
    TransitService,
    load_gtfs,
    make_instance,
    save_gtfs,
)
from repro.functions.piecewise import INF_TIME
from repro.timetable.periodic import format_time


def main() -> None:
    # --- publish + ingest a GTFS-like feed ----------------------------
    with tempfile.TemporaryDirectory() as tmp:
        feed = Path(tmp) / "city-feed"
        save_gtfs(make_instance("oahu", scale="tiny", seed=2), feed)
        print(f"wrote GTFS-like feed to {feed}")
        timetable = load_gtfs(feed)
    print(f"loaded: {timetable.summary()}\n")

    # One prepared service, one profile query answers everything below.
    service = TransitService(timetable, ServiceConfig(num_threads=4))
    home, work = 2, timetable.num_stations - 3

    result = service.profile(home)
    to_work = result.profile(work)
    if to_work.is_empty():
        raise SystemExit("no connection between the chosen stations")

    # --- latest departure arriving by 09:00 ---------------------------
    deadline = 9 * 60
    candidates = [
        (dep, dep + dur)
        for dep, dur in to_work.connection_points()
        if dep + dur <= deadline
    ]
    print(f"to be at station {work} by {format_time(deadline)}:")
    if candidates:
        dep, arr = max(candidates)
        print(f"  leave station {home} at {format_time(dep)}, arrive {format_time(arr)}")
    else:
        print("  impossible — no connection arrives before the deadline")

    # --- travel time over the day --------------------------------------
    print("\ntravel time by departure hour (waiting + riding):")
    for hour in range(5, 24, 2):
        tau = hour * 60
        travel = to_work.travel_time(tau)
        bar = "#" * (travel // 5) if travel < INF_TIME else ""
        label = f"{travel:4d} min" if travel < INF_TIME else "  n/a"
        print(f"  {format_time(tau)}  {label}  {bar}")

    # --- last connection home ------------------------------------------
    back = service.profile(work).profile(home)
    if not back.is_empty():
        dep, dur = back.connection_points()[-1]
        print(
            f"\nlast connection home departs {format_time(dep)} and arrives "
            f"{format_time(dep + dur)}"
        )


if __name__ == "__main__":
    main()
