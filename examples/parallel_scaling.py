#!/usr/bin/env python3
"""Parallel scaling study (paper §3.2 / §5.1).

Runs the one-to-all profile search on 1..8 simulated cores for a dense
bus network and a sparse rail network, printing the speed-up curve and
the growth in settled connections — the paper's key parallel effect
(self-pruning cannot cross threads, and rail suffers more because each
thread owns few connections).

Run:  python examples/parallel_scaling.py
"""

from statistics import fmean

from repro import ProfileRequest, ServiceConfig, TransitService, make_instance
from repro.synthetic.workloads import random_sources


def study(instance: str) -> None:
    timetable = make_instance(instance, scale="tiny")
    # Prepare once; the p-sweep issues requests with per-request
    # thread-count overrides against the same service.
    service = TransitService(timetable, ServiceConfig(kernel="python"))
    sources = random_sources(timetable, 3, seed=0)
    print(f"\n== {instance}: {timetable.summary()} ==")
    print("  p   settled   growth   time [ms]   speed-up   balance")

    base_time = base_settled = None
    for p in range(1, 9):
        runs = [
            service.profile(ProfileRequest(s, num_threads=p))
            for s in sources
        ]
        settled = fmean(r.stats.settled_connections for r in runs)
        elapsed = fmean(r.stats.simulated_seconds for r in runs)
        imbalance = fmean(
            max(r.raw.stats.settled_per_thread)
            / (fmean(r.raw.stats.settled_per_thread) or 1)
            for r in runs
        )
        if base_time is None:
            base_time, base_settled = elapsed, settled
        print(
            f"  {p}   {settled:8,.0f}   {settled / base_settled:5.2f}   "
            f"{elapsed * 1000:9.1f}   {base_time / elapsed:8.2f}   {imbalance:7.2f}"
        )


def main() -> None:
    for instance in ("losangeles", "europe"):
        study(instance)
    print(
        "\nReading the output: 'growth' is total settled work relative to "
        "one core — it rises with p because self-pruning cannot act across "
        "threads; the rail network (europe) grows faster, which is exactly "
        "the scalability anomaly the paper reports in §5.1."
    )


if __name__ == "__main__":
    main()
