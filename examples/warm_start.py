#!/usr/bin/env python3
"""Warm-start serving: persist prepared artifacts, reload in milliseconds.

The serving lifecycle of :mod:`repro.store`:

1. prepare once (graph build + packing + station graph + transfer
   selection + distance table) and ``service.save(path)``;
2. every later process calls ``TransitService.load(path)`` — no
   builder runs, the numpy buffers are memory-mapped, and answers are
   bitwise-identical to the cold service;
3. repeated requests are served from the per-service LRU result cache;
4. ``apply_delays`` returns a fresh service with an empty cache, so
   stale answers can never leak past a delay.

Run:  python examples/warm_start.py
"""

import tempfile
import time
from pathlib import Path

from repro import Delay, ServiceConfig, TransitService, make_instance
from repro.store import describe_store


def main() -> None:
    timetable = make_instance("losangeles", scale="small")
    config = ServiceConfig(
        kernel="flat",
        num_threads=4,
        use_distance_table=True,
        transfer_fraction=0.05,
    )

    # --- 1. Cold prepare + save (paid once per dataset) ---------------
    t0 = time.perf_counter()
    service = TransitService(timetable, config)
    cold_seconds = time.perf_counter() - t0
    stats = service.prepare_stats
    print(timetable.summary())
    print(
        f"cold prepare: {cold_seconds * 1000:.0f} ms "
        f"(graph {stats.graph_seconds * 1000:.0f} ms, "
        f"pack {stats.pack_seconds * 1000:.0f} ms, "
        f"table {stats.table_seconds * 1000:.0f} ms)"
    )

    store = Path(tempfile.mkdtemp()) / "la-store"
    service.save(store)
    info = describe_store(store)
    print(
        f"store: {info['total_bytes'] / 1024:.0f} KiB on disk, "
        f"format v{info['format_version']}, "
        f"config {info['config_hash'][:12]}…\n"
    )

    # --- 2. Warm start (every process start after the first) ----------
    t0 = time.perf_counter()
    warm = TransitService.load(store)
    warm_seconds = time.perf_counter() - t0
    assert warm.prepare_stats.loaded_from_store
    print(
        f"warm start: {warm_seconds * 1000:.0f} ms "
        f"({cold_seconds / warm_seconds:.1f}x faster, zero builds)"
    )

    source, target = 0, timetable.num_stations // 2
    cold_answer = service.journey(source, target)
    warm_answer = warm.journey(source, target)
    assert (cold_answer.profile.deps == warm_answer.profile.deps).all()
    print(
        f"journey {source} → {target}: {len(warm_answer.profile)} profile "
        f"points, identical cold vs warm\n"
    )

    # --- 3. The result cache serves repeats from memory ---------------
    t0 = time.perf_counter()
    warm.journey(source, target)  # already computed above -> cache hit
    hit_seconds = time.perf_counter() - t0
    cache = warm.cache_stats
    print(
        f"repeat answered in {hit_seconds * 1e6:.0f} µs from cache "
        f"({cache.hits} hits / {cache.misses} misses)"
    )

    # --- 4. Delays invalidate by construction -------------------------
    delayed = warm.apply_delays([Delay(train=0, minutes=30)])
    print(
        f"after a delay: new service, cache starts empty "
        f"(size {delayed.cache_stats.size}) — no stale answers possible"
    )


if __name__ == "__main__":
    main()
