#!/usr/bin/env python3
"""Quickstart: profile search on a hand-built timetable.

Builds the three-train toy of the paper's Fig. 2, hands it to the
:class:`TransitService` facade (prepare once, query many), runs a
one-to-all profile search, and prints the piecewise-linear travel-time
function ``dist(S, T, ·)`` with its connection points.

Run:  python examples/quickstart.py
"""

from repro import ServiceConfig, TimetableBuilder, TransitService
from repro.timetable.periodic import format_time


def main() -> None:
    # --- 1. Describe a timetable ------------------------------------
    builder = TimetableBuilder(name="fig2-toy")
    home = builder.add_station("Home", transfer_time=2)
    hub = builder.add_station("Hub", transfer_time=5)
    work = builder.add_station("Work", transfer_time=3)

    # Three direct trains Home→Work (the three relevant departures in
    # the paper's Fig. 2) ...
    for dep, ride in ((7 * 60, 55), (8 * 60, 45), (9 * 60, 50)):
        builder.add_trip([(home, dep), (work, dep + ride)], name=f"direct-{dep}")
    # ... plus a slower alternative via the hub every 30 minutes.
    for dep in range(6 * 60 + 10, 21 * 60, 30):
        builder.add_trip(
            [(home, dep), (hub, dep + 20), (work, dep + 75)], name=f"via-hub-{dep}"
        )

    timetable = builder.build()
    print(timetable.summary())

    # --- 2. Prepare the service (graph build + packing, paid once) ----
    service = TransitService(timetable, ServiceConfig(num_threads=4))
    graph = service.graph
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"{len(graph.routes)} routes "
        f"(prepared in {service.prepare_stats.total_seconds * 1000:.1f} ms)\n"
    )

    # --- 3. One-to-all profile search (all best connections, one run) -
    result = service.profile(home)
    stats = result.stats
    print(
        f"profile search settled {stats.settled_connections} connections "
        f"on {stats.num_threads} (simulated) cores in "
        f"{stats.simulated_seconds * 1000:.2f} ms\n"
    )

    # --- 4. Read off the travel-time function toward Work ------------
    profile = result.profile(work)
    print(f"dist(Home, Work, ·) has {len(profile)} connection points:")
    for dep, duration in profile.connection_points():
        print(
            f"  depart {format_time(dep)}  arrive {format_time(dep + duration)}"
            f"  ({duration:3d} min)"
        )

    # --- 5. Evaluate it like a function ------------------------------
    print("\nearliest arrivals for a few departure times:")
    for query in (6 * 60, 7 * 60 + 30, 8 * 60, 12 * 60):
        arrival = profile.earliest_arrival(query)
        print(
            f"  leave at {format_time(query)} -> arrive {format_time(arrival)}"
            f"  (travel {arrival - query} min)"
        )


if __name__ == "__main__":
    main()
