#!/usr/bin/env python3
"""Station-to-station queries with distance-table acceleration
(paper §4, Figs. 3–4).

On a synthetic city bus network: select transfer stations by
contraction, build the profile distance table, inspect a target's
local/via stations, and compare accelerated vs plain query work.

Run:  python examples/station_to_station.py
"""

import numpy as np

from repro import (
    StationToStationEngine,
    build_distance_table,
    build_station_graph,
    build_td_graph,
    make_instance,
    select_transfer_stations,
)
from repro.query.via import compute_via_stations
from repro.timetable.periodic import format_time


def main() -> None:
    timetable = make_instance("washington", scale="tiny", seed=1)
    graph = build_td_graph(timetable)
    print(timetable.summary())

    # --- transfer stations and the distance table (paper §4) ---------
    transfer = select_transfer_stations(
        timetable, method="contraction", fraction=0.25
    )
    print(f"\ntransfer stations (contraction, 25%): {transfer.tolist()}")
    table = build_distance_table(graph, transfer, num_threads=4)
    print(
        f"distance table: {table.num_transfer_stations}² profiles, "
        f"{table.size_mib() * 1024:.1f} KiB, built in {table.build_seconds:.2f} s"
    )

    # --- local and via stations of a target (paper Fig. 3) -----------
    station_graph = build_station_graph(timetable)
    mask = np.zeros(timetable.num_stations, dtype=bool)
    mask[transfer] = True
    target = int(np.nonzero(~mask)[0][-1])
    via_info = compute_via_stations(station_graph, target, mask)
    print(f"\ntarget station {target}:")
    print(f"  local(T) = {sorted(via_info.local_stations)}")
    print(f"  via(T)   = {sorted(via_info.via_stations)}")

    # --- accelerated vs plain queries ---------------------------------
    accelerated = StationToStationEngine(graph, table, num_threads=4)
    plain = StationToStationEngine(graph, None, num_threads=4)

    rng = np.random.default_rng(7)
    print("\nsource -> target   class    settled (accel)  settled (plain)")
    total_accel = total_plain = 0
    for _ in range(8):
        s = int(rng.integers(0, timetable.num_stations))
        if s == target:
            continue
        fast = accelerated.query(s, target)
        slow = plain.query(s, target)
        assert fast.profile == slow.profile  # acceleration is lossless
        total_accel += fast.settled_connections
        total_plain += slow.settled_connections
        print(
            f"  {s:4d} -> {target:4d}     {fast.classification:7s} "
            f"{fast.settled_connections:10d} {slow.settled_connections:16d}"
        )
    print(
        f"\ntotal settled connections: {total_accel} with the table vs "
        f"{total_plain} with the stopping criterion only"
    )

    # --- show one full answer -----------------------------------------
    source = int(rng.integers(0, timetable.num_stations - 1))
    answer = accelerated.query(source, target)
    print(f"\nall best connections {source} -> {target} over the day:")
    for dep, dur in answer.profile.connection_points()[:10]:
        print(
            f"  depart {format_time(dep)}  arrive {format_time(dep + dur)}"
            f"  ({dur} min)"
        )
    if len(answer.profile) > 10:
        print(f"  ... and {len(answer.profile) - 10} more")


if __name__ == "__main__":
    main()
