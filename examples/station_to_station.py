#!/usr/bin/env python3
"""Station-to-station queries with distance-table acceleration
(paper §4, Figs. 3–4) through the :class:`TransitService` facade.

On a synthetic city bus network: one service prepared *with* the
distance table (transfer stations by contraction), one without, then
the same queries on both — acceleration must be lossless.  The
prepared artifacts (station graph, transfer stations) are read off the
service for the via-station inspection.

Run:  python examples/station_to_station.py
"""

import numpy as np

from repro import ServiceConfig, TransitService, make_instance
from repro.query.via import compute_via_stations
from repro.timetable.periodic import format_time


def main() -> None:
    timetable = make_instance("washington", scale="tiny", seed=1)
    print(timetable.summary())

    # --- prepare once: graph, pack, transfer stations, table ---------
    accelerated = TransitService(
        timetable,
        ServiceConfig(
            num_threads=4,
            use_distance_table=True,
            transfer_selection="contraction",
            transfer_fraction=0.25,
        ),
    )
    prepared = accelerated.prepared
    table = accelerated.table
    print(
        f"\ntransfer stations (contraction, 25%): "
        f"{prepared.transfer_stations.tolist()}"
    )
    print(
        f"distance table: {table.num_transfer_stations}² profiles, "
        f"{table.size_mib() * 1024:.1f} KiB, built in {table.build_seconds:.2f} s"
    )

    # A second service over the same graph, stopping criterion only.
    plain = TransitService.from_graph(
        prepared.graph, ServiceConfig(num_threads=4)
    )

    # --- local and via stations of a target (paper Fig. 3) -----------
    mask = np.zeros(timetable.num_stations, dtype=bool)
    mask[prepared.transfer_stations] = True
    target = int(np.nonzero(~mask)[0][-1])
    via_info = compute_via_stations(prepared.station_graph, target, mask)
    print(f"\ntarget station {target}:")
    print(f"  local(T) = {sorted(via_info.local_stations)}")
    print(f"  via(T)   = {sorted(via_info.via_stations)}")

    # --- accelerated vs plain queries ---------------------------------
    rng = np.random.default_rng(7)
    print("\nsource -> target   class    settled (accel)  settled (plain)")
    total_accel = total_plain = 0
    for _ in range(8):
        s = int(rng.integers(0, timetable.num_stations))
        if s == target:
            continue
        fast = accelerated.journey(s, target)
        slow = plain.journey(s, target)
        assert fast.profile == slow.profile  # acceleration is lossless
        total_accel += fast.stats.settled_connections
        total_plain += slow.stats.settled_connections
        print(
            f"  {s:4d} -> {target:4d}     {fast.stats.classification:7s} "
            f"{fast.stats.settled_connections:10d} "
            f"{slow.stats.settled_connections:16d}"
        )
    print(
        f"\ntotal settled connections: {total_accel} with the table vs "
        f"{total_plain} with the stopping criterion only"
    )

    # --- show one full answer, with concrete legs ---------------------
    source = int(rng.integers(0, timetable.num_stations - 1))
    answer = accelerated.journey(source, target, departure=8 * 60)
    print(f"\nall best connections {source} -> {target} over the day:")
    for dep, dur in answer.profile.connection_points()[:10]:
        print(
            f"  depart {format_time(dep)}  arrive {format_time(dep + dur)}"
            f"  ({dur} min)"
        )
    if len(answer.profile) > 10:
        print(f"  ... and {len(answer.profile) - 10} more")
    if answer.legs:
        print(f"\nleaving at {format_time(8 * 60)}, the journey itself:")
        for leg in answer.legs:
            print(
                f"  {leg.from_station:4d} -> {leg.to_station:4d}  "
                f"ready {format_time(leg.departure)}  "
                f"arrive {format_time(leg.arrival)}"
            )


if __name__ == "__main__":
    main()
