#!/usr/bin/env python3
"""Model tour: the realistic time-dependent graph (paper §2, Fig. 1).

Builds the exact two-station, two-route situation of the paper's
Figure 1 and walks through the resulting graph structure: station
nodes, route nodes, boarding/alighting edges, and the time-dependent
route edges with their connection points.

Run:  python examples/model_tour.py
"""

from repro import TimetableBuilder, build_station_graph, build_td_graph
from repro.timetable.periodic import format_time


def main() -> None:
    builder = TimetableBuilder(name="fig1")
    s1 = builder.add_station("S1", transfer_time=3)
    s2 = builder.add_station("S2", transfer_time=4)

    # Trains Z1, Z2 share the sequence S1→S2 and therefore one route;
    # Z3 runs the opposite direction and forms its own route.
    builder.add_trip([(s1, 8 * 60), (s2, 8 * 60 + 30)], name="Z1")
    builder.add_trip([(s1, 9 * 60), (s2, 9 * 60 + 30)], name="Z2")
    builder.add_trip([(s2, 8 * 60 + 45), (s1, 9 * 60 + 15)], name="Z3")

    timetable = builder.build()
    graph = build_td_graph(timetable)

    print("== routes (trains partitioned by station sequence) ==")
    for route in graph.routes:
        names = [timetable.stations[s].name for s in route.stations]
        trains = [timetable.trains[t].name for t in route.trains]
        print(f"  route {route.id}: {' -> '.join(names)}   trains: {trains}")

    print("\n== nodes ==")
    for node in range(graph.num_nodes):
        kind = "station" if graph.is_station_node(node) else "route"
        station = timetable.stations[graph.station_of(node)].name
        print(f"  node {node}: {kind:7s} node at {station}")

    print("\n== edges ==")
    for node, edges in enumerate(graph.adjacency):
        for edge in edges:
            if edge.ttf is None:
                kind = (
                    f"boarding (+T={edge.weight} min)"
                    if graph.is_station_node(node)
                    else "alighting (free)"
                )
                print(f"  {node} -> {edge.target}: {kind}")
            else:
                points = ", ".join(
                    f"(dep {format_time(dep)}, ride {dur} min)"
                    for dep, dur in edge.ttf.connection_points()
                )
                print(f"  {node} -> {edge.target}: time-dependent [{points}]")

    print("\n== station graph G_S (paper §4) ==")
    station_graph = build_station_graph(timetable)
    for s in range(station_graph.num_stations):
        succs = station_graph.successors(s).tolist()
        weights = station_graph.successor_weights(s).tolist()
        name = timetable.stations[s].name
        targets = ", ".join(
            f"{timetable.stations[t].name} (min {w} min)"
            for t, w in zip(succs, weights)
        )
        print(f"  {name}: -> {targets or '(none)'}")

    print(
        "\nKey takeaways: staying on a train is free (route nodes chain), "
        "changing trains pays the station's transfer time on the boarding "
        "edge, and starting a journey pays nothing (profile searches seed "
        "route nodes directly)."
    )


if __name__ == "__main__":
    main()
