#!/usr/bin/env python3
"""Serve a city over HTTP: the full lifecycle of ``repro.server``,
driven through the ``repro.client`` SDK.

1. prepare a dataset once and persist it to an artifact store;
2. warm-load it into a :class:`DatasetRegistry` and start the
   :class:`TransitServer` (exactly what ``repro-transit serve
   --store DIR`` does);
3. connect an :class:`HttpBackend` and ask all three query shapes —
   the same calls would run unchanged against a
   :class:`LocalBackend` over the store (see
   ``examples/client_backends.py`` for that parity demo);
4. post a delay hot swap and watch the answers change generation;
5. read ``/metrics`` and shut down gracefully (drain, then stop).

Run:  python examples/serve_city.py
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro import ServiceConfig, TransitService, make_instance
from repro.client import HttpBackend
from repro.server import DatasetRegistry, TransitServer
from repro.timetable.delays import Delay


def main() -> None:
    # --- 1. Prepare once, persist (the per-dataset cost) --------------
    store = Path(tempfile.mkdtemp()) / "losangeles"
    timetable = make_instance("losangeles", scale="tiny")
    config = ServiceConfig(
        num_threads=2, use_distance_table=True, transfer_fraction=0.1
    )
    TransitService(timetable, config).save(store)
    print(f"prepared {timetable.summary()}")
    print(f"store written to {store}")

    # --- 2. Warm-load and serve (what `repro-transit serve` does) -----
    registry = DatasetRegistry.from_stores([store])
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    server = TransitServer(registry, port=0, max_inflight=32)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    print(f"\nserving on http://127.0.0.1:{server.port}")

    # --- 3. Connect the SDK; all three query shapes -------------------
    # The URL names the dataset; `connect()` would pick the backend
    # from the target ("http://..." vs a store path) automatically.
    backend = HttpBackend(f"http://127.0.0.1:{server.port}/losangeles")
    info = backend.info()
    print(f"  serving {info.name}: {info.stations} stations, "
          f"{info.connections} connections (generation {info.generation})")

    journey = backend.journey(4, 0, departure=8 * 60)
    print(
        f"\njourney 4 → 0 departing 08:00: arrive minute "
        f"{journey.arrival} via {len(journey.legs)} leg(s) "
        f"[{journey.stats.classification}]"
    )
    profile = backend.profile(4, targets=[0])
    print(
        f"profile 4 → 0 over the period: "
        f"{len(profile.profiles[0])} best connections"
    )
    batch = backend.batch([(0, 5), (2, 7)])
    print(f"batch of {batch.stats.num_queries} journeys answered")

    # --- 4. Hot delay swap --------------------------------------------
    swap = backend.apply_delays([Delay(train=28, minutes=30)])
    print(
        f"\nhot swap: generation {swap.generation} replanned in "
        f"{swap.swap_seconds * 1000:.0f} ms (in-flight queries "
        f"drained against the old timetable)"
    )
    delayed = backend.journey(4, 0, departure=8 * 60)
    print(
        f"same journey now arrives minute {delayed.arrival} "
        f"(was {journey.arrival})"
    )

    # --- 5. Metrics + graceful drain ----------------------------------
    metrics = backend.server_metrics()
    print(
        f"\nmetrics: {sum(metrics['requests_total'].values())} requests, "
        f"result-cache hit rate "
        f"{metrics['datasets']['losangeles']['result_cache']['hit_rate']:.2f}"
    )
    backend.close()
    asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(30)
    loop.call_soon_threadsafe(loop.stop)
    print("drained and stopped cleanly")


if __name__ == "__main__":
    main()
