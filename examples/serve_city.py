#!/usr/bin/env python3
"""Serve a city over HTTP: the full lifecycle of ``repro.server``.

1. prepare a dataset once and persist it to an artifact store;
2. warm-load it into a :class:`DatasetRegistry` and start the
   :class:`TransitServer` (exactly what ``repro-transit serve
   --store DIR`` does);
3. query all three shapes over the versioned JSON wire protocol;
4. post a delay hot swap and watch the answers change generation;
5. read ``/metrics`` and shut down gracefully (drain, then stop).

Run:  python examples/serve_city.py
"""

import asyncio
import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import ServiceConfig, TransitService, make_instance
from repro.server import DatasetRegistry, TransitServer


def request(port: int, method: str, path: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(req) as response:
        return json.loads(response.read())


def main() -> None:
    # --- 1. Prepare once, persist (the per-dataset cost) --------------
    store = Path(tempfile.mkdtemp()) / "losangeles"
    timetable = make_instance("losangeles", scale="tiny")
    config = ServiceConfig(
        num_threads=2, use_distance_table=True, transfer_fraction=0.1
    )
    TransitService(timetable, config).save(store)
    print(f"prepared {timetable.summary()}")
    print(f"store written to {store}")

    # --- 2. Warm-load and serve (what `repro-transit serve` does) -----
    registry = DatasetRegistry.from_stores([store])
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    server = TransitServer(registry, port=0, max_inflight=32)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    port = server.port
    print(f"\nserving on http://127.0.0.1:{port}")
    print(f"  healthz: {request(port, 'GET', '/healthz')}")

    # --- 3. All three query shapes over the wire ----------------------
    journey = request(
        port,
        "POST",
        "/v1/losangeles/journey",
        {"source": 4, "target": 0, "departure": 8 * 60},
    )
    print(
        f"\njourney 4 → 0 departing 08:00: arrive minute "
        f"{journey['arrival']} via {len(journey['legs'])} leg(s) "
        f"[{journey['stats']['classification']}]"
    )
    profile = request(
        port, "POST", "/v1/losangeles/profile", {"source": 4, "targets": [0]}
    )
    print(
        f"profile 4 → 0 over the period: "
        f"{len(profile['profiles']['0'])} best connections"
    )
    batch = request(
        port,
        "POST",
        "/v1/losangeles/batch",
        {"journeys": [{"source": 0, "target": 5}, {"source": 2, "target": 7}]},
    )
    print(f"batch of {batch['stats']['num_queries']} journeys answered")

    # --- 4. Hot delay swap --------------------------------------------
    swap = request(
        port,
        "POST",
        "/v1/datasets/losangeles/delays",
        {"delays": [{"train": 28, "minutes": 30}]},
    )
    print(
        f"\nhot swap: generation {swap['generation']} replanned in "
        f"{swap['swap_seconds'] * 1000:.0f} ms (in-flight queries "
        f"drained against the old timetable)"
    )
    delayed = request(
        port,
        "POST",
        "/v1/losangeles/journey",
        {"source": 4, "target": 0, "departure": 8 * 60},
    )
    print(
        f"same journey now arrives minute {delayed['arrival']} "
        f"(was {journey['arrival']})"
    )

    # --- 5. Metrics + graceful drain ----------------------------------
    metrics = request(port, "GET", "/metrics")
    print(
        f"\nmetrics: {sum(metrics['requests_total'].values())} requests, "
        f"result-cache hit rate "
        f"{metrics['datasets']['losangeles']['result_cache']['hit_rate']:.2f}"
    )
    asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(30)
    loop.call_soon_threadsafe(loop.stop)
    print("drained and stopped cleanly")


if __name__ == "__main__":
    main()
