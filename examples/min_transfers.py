#!/usr/bin/env python3
"""Multi-criteria profile search: arrival time vs number of transfers.

Implements the paper's §6 future-work challenge ("incorporate
multi-criteria connections, e.g., minimizing the number of transfers
... keep up the connection-setting property and find efficient
criteria for self-pruning") and shows the resulting Pareto fronts on a
rail network, where transfer-count trade-offs actually occur.

The scan/report logic lives in :mod:`repro.query.min_transfers` (the
same helpers the served ``min-transfers`` request shape uses); this
example only prints.

Run:  python examples/min_transfers.py
"""

from repro import build_td_graph, make_instance
from repro.query.min_transfers import scan_tradeoffs, transfer_bounded_counts
from repro.timetable.periodic import format_time


def main() -> None:
    timetable = make_instance("germany", scale="small", seed=0)
    graph = build_td_graph(timetable)
    print(timetable.summary())

    # Scan a few sources for fronts that actually show trade-offs (on
    # sparse rail networks many relations are dominated by one line).
    scan = scan_tradeoffs(graph)
    source, result = scan.source, scan.result

    stats = result.stats
    print(
        f"\nmulti-criteria profile search from station {source}: "
        f"{stats.settled} settled (node, connection, transfers) triples, "
        f"{stats.pruned} dominance-pruned\n"
    )

    print("Pareto fronts with genuine speed-vs-convenience trade-offs:")
    for front in scan.fronts[:5]:
        name = timetable.stations[front.station].name
        print(
            f"\n  to {name} (station {front.station}), "
            f"departing {format_time(front.departure)}:"
        )
        for transfers, arrival in front.options:
            label = "transfer" if transfers == 1 else "transfers"
            print(
                f"    {transfers} {label:9s} -> arrive {format_time(arrival)}"
            )
    if not scan.fronts:
        print("  (no trade-offs found — the network is transfer-free)")

    # Compare the fastest-overall vs fewest-transfer connection.
    print("\ntransfer-bounded day profiles toward one satellite station:")
    target = next(
        s.id for s in timetable.stations if "sat-" in s.name and s.id != source
    )
    for budget, reachable in transfer_bounded_counts(
        result, target, (0, 1, 4)
    ).items():
        print(
            f"  ≤{budget} transfers: {reachable:3d} optimal "
            f"connections over the day"
        )


if __name__ == "__main__":
    main()
