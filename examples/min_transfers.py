#!/usr/bin/env python3
"""Multi-criteria profile search: arrival time vs number of transfers.

Implements the paper's §6 future-work challenge ("incorporate
multi-criteria connections, e.g., minimizing the number of transfers
... keep up the connection-setting property and find efficient
criteria for self-pruning") and shows the resulting Pareto fronts on a
rail network, where transfer-count trade-offs actually occur.

Run:  python examples/min_transfers.py
"""

from repro import build_td_graph, make_instance
from repro.core import mc_profile_search
from repro.functions.piecewise import INF_TIME
from repro.timetable.periodic import format_time


def main() -> None:
    timetable = make_instance("germany", scale="small", seed=0)
    graph = build_td_graph(timetable)
    print(timetable.summary())

    departure = 8 * 60

    # Scan a few sources for fronts that actually show trade-offs (on
    # sparse rail networks many relations are dominated by one line).
    best_source, best_fronts, result = 0, [], None
    for source in range(min(timetable.num_stations, 16)):
        candidate = mc_profile_search(graph, source, max_transfers=4)
        fronts = []
        for station in range(timetable.num_stations):
            if station == source:
                continue
            for tau in (7 * 60, 8 * 60, 17 * 60):
                front = candidate.pareto_front(station, tau)
                if len(front) >= 2:
                    fronts.append((station, tau, front))
                    break
        if result is None or len(fronts) > len(best_fronts):
            best_source, best_fronts, result = source, fronts, candidate
        if len(best_fronts) >= 3:
            break
    source = best_source

    stats = result.stats
    print(
        f"\nmulti-criteria profile search from station {source}: "
        f"{stats.settled} settled (node, connection, transfers) triples, "
        f"{stats.pruned} dominance-pruned\n"
    )

    print("Pareto fronts with genuine speed-vs-convenience trade-offs:")
    for station, tau, front in best_fronts[:5]:
        name = timetable.stations[station].name
        print(f"\n  to {name} (station {station}), departing {format_time(tau)}:")
        for transfers, arrival in front:
            label = "transfer" if transfers == 1 else "transfers"
            print(
                f"    {transfers} {label:9s} -> arrive {format_time(arrival)}"
            )
    if not best_fronts:
        print("  (no trade-offs found — the network is transfer-free)")

    # Compare the fastest-overall vs fewest-transfer connection.
    print("\ntransfer-bounded day profiles toward one satellite station:")
    target = next(
        s.id for s in timetable.stations if "sat-" in s.name and s.id != source
    )
    for budget in (0, 1, 4):
        points = result.profile_points(target, budget)
        reachable = [p for p in points if p[1] < INF_TIME]
        print(
            f"  ≤{budget} transfers: {len(reachable):3d} optimal "
            f"connections over the day"
        )


if __name__ == "__main__":
    main()
