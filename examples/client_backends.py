#!/usr/bin/env python3
"""One query API, two transports — the client SDK's parity guarantee.

``commute_report`` below is an ordinary journey-planning program
written against :class:`repro.client.TransitBackend`.  It runs twice:

* over a :class:`LocalBackend` — the dataset lives in this process;
* over an :class:`HttpBackend` — the *same* store served by a
  :class:`TransitServer` on localhost, reached through the stdlib
  HTTP client (keep-alive pool, typed errors, bounded 503 retry).

The two reports are asserted **identical, line for line**: a program
written against the backend protocol cannot tell transports apart
except by latency.  That is what lets notebooks, load generators and
production callers share one codebase while the dataset moves from a
laptop directory to a remote fleet.

Run:  python examples/client_backends.py
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro import ServiceConfig, TransitService, make_instance
from repro.client import TransitBackend, connect
from repro.server import DatasetRegistry, TransitServer
from repro.timetable.delays import Delay
from repro.timetable.periodic import format_time


def commute_report(backend: TransitBackend) -> list[str]:
    """A small planning session: metadata, a morning journey, a
    streamed batch, a delay scenario.  Transport-agnostic."""
    lines: list[str] = []
    info = backend.info()
    lines.append(f"{info.name}: {info.stations} stations, "
                 f"{info.connections} connections")

    journey = backend.journey(4, 0, departure=8 * 60)
    legs = " / ".join(
        f"{leg.from_station}→{leg.to_station} "
        f"{format_time(leg.departure)}-{format_time(leg.arrival)}"
        for leg in journey.legs
    )
    lines.append(f"08:00 commute 4→0: arrive {format_time(journey.arrival)}"
                 f" via {legs}")

    # Streaming batch: answers arrive one by one, in submission order.
    for answer in backend.iter_batch([(0, 5), (2, 7), (6, 1)]):
        best = answer.profile.connection_points()[0]
        lines.append(
            f"  {answer.source}→{answer.target}: {len(answer.profile)} "
            f"connections, first {format_time(best[0])} ({best[1]} min)"
        )

    # The dynamic scenario: delay a train, replan, re-ask.
    update = backend.apply_delays([Delay(train=28, minutes=30)])
    delayed = backend.journey(4, 0, departure=8 * 60)
    lines.append(f"after delaying train 28 (generation "
                 f"{update.generation}): arrive "
                 f"{format_time(delayed.arrival)}")
    return lines


def main() -> None:
    store = Path(tempfile.mkdtemp()) / "losangeles"
    timetable = make_instance("losangeles", scale="tiny")
    config = ServiceConfig(
        num_threads=2, use_distance_table=True, transfer_fraction=0.1
    )
    TransitService(timetable, config).save(store)

    # Transport 1: in-process, straight off the artifact store.
    local = connect(store)
    local_lines = commute_report(local)
    print("LocalBackend (in-process store):")
    for line in local_lines:
        print(f"  {line}")

    # Transport 2: the same store behind a server, over HTTP.
    registry = DatasetRegistry.from_stores([store])
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    server = TransitServer(registry, port=0)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    remote = connect(f"http://127.0.0.1:{server.port}/losangeles")
    remote_lines = commute_report(remote)
    print(f"\nHttpBackend (http://127.0.0.1:{server.port}):")
    for line in remote_lines:
        print(f"  {line}")

    assert local_lines == remote_lines, "transports must answer identically"
    print("\nidentical output on both transports — parity holds")

    remote.close()
    asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(30)
    loop.call_soon_threadsafe(loop.stop)


if __name__ == "__main__":
    main()
