#!/usr/bin/env python3
"""The fully dynamic scenario: querying under train delays (§5.1).

The paper points out that because SPCS needs no preprocessing, it can
serve timetable information under delays directly.  The
:class:`TransitService` facade packages that as
:meth:`~repro.service.TransitService.apply_delays`: a new service for
the delayed timetable that re-derives only travel-time-dependent
artifacts (graph, packed arrays) and shares the topology-only state
(station graph, transfer-station selection).  This example delays a
morning train, shows how the travel-time profile degrades, and
demonstrates slack recovery.

Run:  python examples/dynamic_delays.py
"""

from repro import Delay, ServiceConfig, TransitService, make_instance
from repro.timetable.delays import train_lateness_profile
from repro.timetable.periodic import format_time


def main() -> None:
    timetable = make_instance("germany", scale="tiny", seed=0)
    service = TransitService(timetable, ServiceConfig(num_threads=4))
    print(timetable.summary())

    source, target = 0, timetable.num_stations - 1
    baseline = service.profile(source).profile(target)
    if baseline.is_empty():
        raise SystemExit("chosen pair not connected; pick other stations")

    # Delay a morning train that actually carries best connections to
    # the target (scan the 06:00–09:00 departures for an impactful one).
    def impact(train):
        delayed = service.apply_delays([Delay(train=train, minutes=35)])
        prof = delayed.profile(source).profile(target)
        return sum(
            1
            for tau in range(0, timetable.period, 30)
            if prof.earliest_arrival(tau) > baseline.earliest_arrival(tau)
        )

    morning = [
        c
        for c in timetable.outgoing_connections(source)
        if 360 <= c.dep_time < 540
    ]
    victim, dep_time = max(
        ((c.train, c.dep_time) for c in morning),
        key=lambda pair: impact(pair[0]),
    )
    print(
        f"\ninjecting a 35-minute delay on train {victim} "
        f"(scheduled {format_time(dep_time)} from station {source})"
    )

    delayed_service = service.apply_delays([Delay(train=victim, minutes=35)])
    late_profile = train_lateness_profile(
        timetable, delayed_service.timetable, victim
    )
    print(f"per-leg lateness without recovery: {late_profile}")

    recovered_service = service.apply_delays(
        [Delay(train=victim, minutes=35)], slack_per_leg=6
    )
    print(
        "per-leg lateness with 6 min/leg slack recovery: "
        f"{train_lateness_profile(timetable, recovered_service.timetable, victim)}"
    )
    print(
        "replanning re-derived the graph in "
        f"{delayed_service.prepare_stats.total_seconds * 1000:.0f} ms "
        "(station graph shared: "
        f"{delayed_service.prepare_stats.shared_station_graph})"
    )

    # No preprocessing to repair: the delayed service answers directly.
    delayed = delayed_service.profile(source).profile(target)

    print(f"\nprofile {source} -> {target}, before vs after the delay:")
    print("  departure   planned arrival   delayed arrival")
    for tau in range(6 * 60, 12 * 60, 45):
        before = baseline.earliest_arrival(tau)
        after = delayed.earliest_arrival(tau)
        marker = "  <- degraded" if after > before else ""
        print(
            f"  {format_time(tau)}       {format_time(before)}             "
            f"{format_time(after)}{marker}"
        )

    affected = sum(
        1
        for tau in range(0, timetable.period, 10)
        if delayed.earliest_arrival(tau) > baseline.earliest_arrival(tau)
    )
    print(
        f"\n{affected * 10} minutes of the day have a worse best connection; "
        "the rest of the profile is untouched — exactly why profile "
        "queries without preprocessing suit dynamic scenarios."
    )


if __name__ == "__main__":
    main()
