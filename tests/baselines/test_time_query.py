"""Unit tests for the time-dependent Dijkstra baseline (paper §2)."""

import pytest

from repro.baselines.time_query import time_query
from repro.functions.piecewise import INF_TIME


class TestToyAnswers:
    """Hand-checked answers on the 4-station toy network.

    Lines: A→B→C every 30' (15'/leg, from 08:00), C→D every 40'
    (20', from 08:10), A→D direct hourly (70', from 08:20).
    Transfers: A=2, B=3, C=1, D=2.
    """

    def test_direct_ride(self, toy_graph):
        result = time_query(toy_graph, 0, 480)  # depart A at 08:00
        assert result.arrival_at_station(1) == 495  # B 08:15
        assert result.arrival_at_station(2) == 510  # C 08:30

    def test_transfer_respected(self, toy_graph):
        # Arrive C 08:30; with transfer time 1 the 08:30 C→D train is
        # missed too tightly?  No: trains run 08:10, 08:50, 09:30; the
        # first boardable departure after 08:31 is 08:50, arriving 09:10.
        result = time_query(toy_graph, 0, 480)
        assert result.arrival_at_station(3) == 550  # D 09:10 via 08:50 train

    def test_direct_beats_transfer_when_departing_0820(self, toy_graph):
        result = time_query(toy_graph, 0, 500)  # 08:20
        # Direct A→D 08:20 arrives 09:30 (570); via C also 570 — equal.
        assert result.arrival_at_station(3) == 570

    def test_waiting_at_source_has_no_transfer_cost(self, toy_graph):
        # Departing A at 07:59 may still catch the 08:00 train.
        result = time_query(toy_graph, 0, 479)
        assert result.arrival_at_station(1) == 495

    def test_source_arrival_is_departure(self, toy_graph):
        result = time_query(toy_graph, 0, 480)
        assert result.arrival_at_station(0) == 480
        assert result.travel_time(0) == 0

    def test_wraps_to_next_day(self, toy_graph):
        result = time_query(toy_graph, 0, 720)  # noon: all trips done
        assert result.arrival_at_station(1) == 1440 + 495

    def test_travel_time(self, toy_graph):
        result = time_query(toy_graph, 0, 480)
        assert result.travel_time(2) == 30

    def test_unreachable_station(self):
        from repro.graph.td_model import build_td_graph
        from repro.timetable.builder import TimetableBuilder

        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_station("island")
        builder.add_trip([(a, 10), (b, 20)])
        graph = build_td_graph(builder.build())
        result = time_query(graph, 0, 0)
        assert result.arrival_at_station(2) == INF_TIME
        assert result.travel_time(2) == INF_TIME


class TestOptions:
    def test_early_termination_at_target(self, toy_graph):
        full = time_query(toy_graph, 0, 480)
        stopped = time_query(toy_graph, 0, 480, target=1)
        assert stopped.arrival_at_station(1) == full.arrival_at_station(1)
        assert stopped.settled <= full.settled

    def test_queue_variants_agree(self, toy_graph):
        results = {
            q: time_query(toy_graph, 0, 480, queue=q).arrival
            for q in ("binary", "4-ary", "lazy")
        }
        base = results["binary"]
        assert results["4-ary"] == base
        assert results["lazy"] == base

    def test_rejects_non_station_source(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            time_query(toy_graph, toy_graph.num_nodes - 1, 0)

    def test_rejects_non_station_target(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            time_query(toy_graph, 0, 0, target=toy_graph.num_nodes - 1)


class TestLabelSetting:
    def test_settled_counts_bounded_by_nodes(self, toy_graph):
        result = time_query(toy_graph, 0, 480)
        assert 0 < result.settled <= toy_graph.num_nodes

    def test_monotone_in_departure_time(self, oahu_tiny_graph):
        """FIFO network ⇒ leaving later never arrives earlier."""
        early = time_query(oahu_tiny_graph, 0, 400)
        late = time_query(oahu_tiny_graph, 0, 460)
        for station in range(oahu_tiny_graph.num_stations):
            a, b = early.arrival_at_station(station), late.arrival_at_station(station)
            if a < INF_TIME and b < INF_TIME:
                assert b >= a
