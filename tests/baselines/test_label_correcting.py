"""Unit tests for the label-correcting profile baseline (paper §2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.label_correcting import label_correcting_profile
from repro.baselines.time_query import time_query
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import build_td_graph

from tests.helpers import random_line_timetable


class TestToyProfiles:
    def test_profile_matches_time_queries(self, toy_graph):
        lc = label_correcting_profile(toy_graph, 0)
        profile = lc.profile(3)
        for dep, dur in profile.connection_points():
            assert time_query(toy_graph, 0, dep).arrival_at_station(3) == dep + dur

    def test_label_matrix_shape(self, toy_graph):
        lc = label_correcting_profile(toy_graph, 0)
        conns = toy_graph.timetable.outgoing_connections(0)
        assert lc.labels.shape == (toy_graph.num_nodes, len(conns))
        assert lc.conn_deps.tolist() == [c.dep_time for c in conns]

    def test_source_without_departures(self, toy_graph):
        lc = label_correcting_profile(toy_graph, 3)  # D has no departures
        assert lc.labels.shape[1] == 0
        assert lc.settled_connections == 0

    def test_rejects_route_node_source(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            label_correcting_profile(toy_graph, toy_graph.num_nodes - 1)

    def test_counts_positive(self, toy_graph):
        lc = label_correcting_profile(toy_graph, 0)
        assert lc.settled_connections > 0
        assert lc.queue_pops > 0


class TestScalarMode:
    def test_identical_labels(self, toy_graph):
        fast = label_correcting_profile(toy_graph, 0, vectorized=True)
        slow = label_correcting_profile(toy_graph, 0, vectorized=False)
        assert (fast.labels == slow.labels).all()
        assert fast.settled_connections == slow.settled_connections
        assert fast.queue_pops == slow.queue_pops

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_identical_on_random_networks(self, seed):
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=8, num_lines=4)
        )
        fast = label_correcting_profile(graph, 0, vectorized=True)
        slow = label_correcting_profile(graph, 0, vectorized=False)
        assert (fast.labels == slow.labels).all()


class TestAgainstTimeQueries:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_anchor_evaluations_exact(self, seed):
        """Evaluating the reduced profile at each anchor must match a
        direct time-query (function equality; a kept point may be
        cyclically dominated by next-day service, which the evaluation
        resolves)."""
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=8, num_lines=4)
        )
        lc = label_correcting_profile(graph, 0)
        conns = graph.timetable.outgoing_connections(0)
        if not conns:
            return
        # Skip the source itself: a time-query trivially "arrives" at the
        # departure time, whereas a profile tracks journeys returning to it.
        for station in range(1, graph.num_stations):
            profile = lc.profile(station, graph.timetable.period)
            for dep, _dur in profile.connection_points():
                truth = time_query(graph, 0, dep).arrival_at_station(station)
                assert truth == profile.earliest_arrival(dep)
