"""Unit and property tests for edge travel-time functions (paper §2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.piecewise import INF_TIME, TravelTimeFunction


def _simple():
    # Departures 08:00, 09:00, 10:00, each riding 15 min.
    return TravelTimeFunction([480, 540, 600], [15, 15, 15])


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="parallel"):
            TravelTimeFunction([1, 2], [3])

    def test_rejects_unsorted_departures(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TravelTimeFunction([5, 3], [1, 1])

    def test_rejects_departure_outside_period(self):
        with pytest.raises(ValueError, match="outside"):
            TravelTimeFunction([1500], [10])

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError, match="positive"):
            TravelTimeFunction([100], [0])

    def test_from_connections(self, toy):
        conns = [c for c in toy.connections if c.dep_station == 0 and c.arr_station == 1]
        ttf = TravelTimeFunction.from_connections(conns)
        assert len(ttf) == len(conns)
        assert ttf.deps == sorted(ttf.deps)


class TestArrival:
    def test_exact_departure(self):
        assert _simple().arrival(480) == 495

    def test_waits_for_next(self):
        assert _simple().arrival(485) == 555

    def test_wraps_past_last_departure(self):
        # 10:30: next train is tomorrow 08:00, arriving 08:15 (+1 day).
        assert _simple().arrival(630) == 1440 + 495

    def test_absolute_times_supported(self):
        assert _simple().arrival(1440 + 480) == 1440 + 495

    def test_empty_function_unreachable(self):
        assert TravelTimeFunction([], []).arrival(100) == INF_TIME

    def test_overtaking_train_used(self):
        """A later, faster train must win even though it departs later."""
        ttf = TravelTimeFunction([100, 110], [60, 20])
        # At 100: slow arrives 160, waiting for fast arrives 130.
        assert ttf.arrival(100) == 130

    def test_travel_time(self):
        assert _simple().travel_time(485) == 70
        assert TravelTimeFunction([], []).travel_time(0) == INF_TIME

    def test_min_duration(self):
        assert _simple().min_duration() == 15
        assert TravelTimeFunction([], []).min_duration() == INF_TIME


class TestBatchEvaluation:
    def test_matches_scalar_on_fifo(self):
        ttf = _simple()
        times = np.array([0, 479, 480, 481, 700, 1440 + 480], dtype=np.int64)
        batch = ttf.arrival_batch(times)
        scalar = [ttf.arrival(int(t)) for t in times]
        assert batch.tolist() == scalar

    def test_inf_propagates(self):
        batch = _simple().arrival_batch(np.array([INF_TIME, 480], dtype=np.int64))
        assert batch[0] == INF_TIME
        assert batch[1] == 495

    def test_matches_scalar_on_non_fifo(self):
        ttf = TravelTimeFunction([100, 110, 300], [60, 20, 10])
        times = np.arange(0, 1600, 7, dtype=np.int64)
        assert ttf.arrival_batch(times).tolist() == [
            ttf.arrival(int(t)) for t in times
        ]

    def test_empty_function(self):
        out = TravelTimeFunction([], []).arrival_batch(np.array([5], dtype=np.int64))
        assert out[0] == INF_TIME

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_points=st.integers(min_value=1, max_value=12),
    )
    def test_batch_equals_scalar_random(self, seed, num_points):
        rng = np.random.default_rng(seed)
        deps = np.sort(rng.integers(0, 1440, num_points))
        durs = rng.integers(1, 200, num_points)
        ttf = TravelTimeFunction(deps.tolist(), durs.tolist())
        times = rng.integers(0, 3 * 1440, 32).astype(np.int64)
        assert ttf.arrival_batch(times).tolist() == [
            ttf.arrival(int(t)) for t in times
        ]


class TestFifo:
    def test_fifo_function(self):
        assert _simple().is_fifo()

    def test_non_fifo_detected(self):
        assert not TravelTimeFunction([100, 110], [60, 20]).is_fifo()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_points=st.integers(min_value=1, max_value=10),
    )
    def test_arrival_never_before_query(self, seed, num_points):
        rng = np.random.default_rng(seed)
        deps = np.sort(rng.integers(0, 1440, num_points))
        durs = rng.integers(1, 300, num_points)
        ttf = TravelTimeFunction(deps.tolist(), durs.tolist())
        for t in rng.integers(0, 2 * 1440, 16):
            assert ttf.arrival(int(t)) > int(t)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_waiting_monotonicity_on_fifo_legs(self, seed):
        """On constant-duration legs (all generators emit these) the
        function is FIFO: arrival is non-decreasing in query time."""
        rng = np.random.default_rng(seed)
        deps = np.sort(rng.integers(0, 1440, 8))
        ttf = TravelTimeFunction(deps.tolist(), [17] * 8)
        arrivals = [ttf.arrival(t) for t in range(0, 1440, 11)]
        assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))
        assert ttf.is_fifo()

    def test_connection_points(self):
        assert _simple().connection_points() == [(480, 15), (540, 15), (600, 15)]
