"""Unit and property tests for profile functions and their algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.algebra import Profile, merge_profiles
from repro.functions.piecewise import INF_TIME


def _profile():
    # Depart 08:00 → arrive 08:40; 09:00 → 09:05; 10:00 → 10:40.
    return Profile([480, 540, 600], [520, 545, 640])


@st.composite
def reduced_profiles(draw):
    """Random reduced profiles: strictly increasing deps and arrivals."""
    n = draw(st.integers(min_value=0, max_value=12))
    deps = sorted(draw(st.sets(st.integers(0, 1439), min_size=n, max_size=n)))
    arrs = []
    floor = 0
    for dep in deps:
        arrival = draw(st.integers(max(dep, floor) + 1, max(dep, floor) + 300))
        arrs.append(arrival)
        floor = arrival
    return Profile(deps, arrs)


class TestConstruction:
    def test_rejects_unsorted_deps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Profile([20, 10], [30, 40])

    def test_rejects_arrival_before_departure(self):
        with pytest.raises(ValueError, match="before departure"):
            Profile([100], [90])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="parallel"):
            Profile([1, 2], [3])

    def test_from_raw_reduces(self):
        profile = Profile.from_raw([480, 540, 600], [560, 545, 640])
        # First point (arr 560) dominated by second (dep later, arr 545).
        assert profile.connection_points() == [(540, 5), (600, 40)]

    def test_len_and_empty(self):
        assert len(_profile()) == 3
        assert not _profile().is_empty()
        assert Profile([], []).is_empty()


class TestEvaluation:
    def test_exact_anchor(self):
        assert _profile().earliest_arrival(480) == 520

    def test_between_anchors_takes_next(self):
        assert _profile().earliest_arrival(481) == 545

    def test_wraps_to_next_day(self):
        assert _profile().earliest_arrival(601) == 1440 + 520

    def test_empty_profile_unreachable(self):
        assert Profile([], []).earliest_arrival(0) == INF_TIME

    def test_travel_time(self):
        assert _profile().travel_time(481) == 545 - 481
        assert Profile([], []).travel_time(0) == INF_TIME

    def test_absolute_query_times(self):
        profile = _profile()
        assert profile.earliest_arrival(1440 + 480) == 1440 + 520


class TestMinimum:
    def test_pointwise_min(self):
        a = Profile([480], [520])
        b = Profile([480], [510])
        assert a.minimum(b) == b.minimum(a)
        assert a.minimum(b).earliest_arrival(480) == 510

    def test_empty_identity(self):
        a = _profile()
        empty = Profile([], [])
        assert a.minimum(empty) == a
        assert empty.minimum(a) == a

    def test_period_mismatch_rejected(self):
        with pytest.raises(ValueError, match="period"):
            Profile([1], [2], period=100).minimum(Profile([1], [2], period=200))

    @given(a=reduced_profiles(), b=reduced_profiles())
    def test_minimum_never_worse_than_either(self, a, b):
        merged = a.minimum(b)
        for tau in range(0, 1440, 97):
            assert merged.earliest_arrival(tau) <= a.earliest_arrival(tau)
            assert merged.earliest_arrival(tau) <= b.earliest_arrival(tau)

    @given(a=reduced_profiles(), b=reduced_profiles())
    def test_minimum_attained_by_one_side(self, a, b):
        merged = a.minimum(b)
        for tau in range(0, 1440, 97):
            assert merged.earliest_arrival(tau) == min(
                a.earliest_arrival(tau), b.earliest_arrival(tau)
            )

    @given(a=reduced_profiles())
    def test_minimum_idempotent(self, a):
        assert a.minimum(a) == a


class TestDominance:
    def test_dominates_itself(self):
        assert _profile().dominates(_profile())

    def test_better_profile_dominates(self):
        better = Profile([480, 540, 600], [500, 545, 640])
        assert better.dominates(_profile())
        assert not _profile().dominates(better)

    @given(a=reduced_profiles(), b=reduced_profiles())
    def test_minimum_dominates_operands(self, a, b):
        merged = a.minimum(b)
        assert merged.dominates(a)
        assert merged.dominates(b)


class TestMergeProfiles:
    def test_requires_input(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_profiles([])

    def test_merges_many(self):
        profiles = [Profile([100 * k], [100 * k + 10 + k]) for k in range(1, 5)]
        merged = merge_profiles(profiles)
        for profile in profiles:
            assert merged.dominates(profile)


class TestFifo:
    def test_reduced_profile_is_fifo(self):
        assert _profile().is_fifo()

    @given(a=reduced_profiles())
    def test_generated_profiles_fifo(self, a):
        assert a.is_fifo()
