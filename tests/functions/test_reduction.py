"""Unit and property tests for connection reduction (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.piecewise import INF_TIME
from repro.functions.reduction import (
    is_reduced,
    reduce_connection_points,
    reduction_mask,
)


class TestReductionMask:
    def test_keeps_strictly_improving_points(self):
        # deps implicit 0..: arrivals 100, 90, 120 → middle dominates first.
        mask = reduction_mask([100, 90, 120])
        assert mask.tolist() == [False, True, True]

    def test_equal_arrival_dominated_by_later_departure(self):
        """Paper: delete j < i_min when τ_arr_j ≥ τ_arr_min — ties lose."""
        mask = reduction_mask([100, 100])
        assert mask.tolist() == [False, True]

    def test_infinite_arrivals_dropped(self):
        mask = reduction_mask([INF_TIME, 50, INF_TIME])
        assert mask.tolist() == [False, True, False]

    def test_empty(self):
        assert reduction_mask([]).size == 0

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            reduction_mask(np.zeros((2, 2), dtype=np.int64))

    def test_last_point_always_kept_if_finite(self):
        assert reduction_mask([5])[0]
        assert not reduction_mask([INF_TIME])[0]

    @given(
        arrivals=st.lists(
            st.integers(min_value=0, max_value=10_000) | st.just(INF_TIME),
            max_size=40,
        )
    )
    def test_survivors_strictly_increasing(self, arrivals):
        mask = reduction_mask(arrivals)
        kept = [a for a, keep in zip(arrivals, mask) if keep]
        assert all(b > a for a, b in zip(kept, kept[1:]))
        assert INF_TIME not in kept

    @given(
        arrivals=st.lists(
            st.integers(min_value=0, max_value=10_000) | st.just(INF_TIME),
            max_size=40,
        )
    )
    def test_removed_points_are_dominated(self, arrivals):
        """Every removed finite point has a later point arriving no later."""
        mask = reduction_mask(arrivals)
        for i, (arrival, keep) in enumerate(zip(arrivals, mask)):
            if keep or arrival >= INF_TIME:
                continue
            assert any(
                later <= arrival for later in arrivals[i + 1 :]
            ), f"point {i} removed without dominator"

    @given(
        arrivals=st.lists(
            st.integers(min_value=0, max_value=10_000), max_size=40
        )
    )
    def test_minimum_preserved(self, arrivals):
        """Reduction never loses the best (minimum) arrival."""
        mask = reduction_mask(arrivals)
        if arrivals:
            kept = [a for a, keep in zip(arrivals, mask) if keep]
            assert min(kept) == min(arrivals)


class TestReduceConnectionPoints:
    def test_parallel_output(self):
        deps, arrs = reduce_connection_points([10, 20, 30], [100, 90, 120])
        assert deps.tolist() == [20, 30]
        assert arrs.tolist() == [90, 120]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            reduce_connection_points([1, 2], [3])

    def test_idempotent(self):
        deps, arrs = reduce_connection_points([10, 20, 30], [100, 90, 120])
        deps2, arrs2 = reduce_connection_points(deps, arrs)
        assert deps2.tolist() == deps.tolist()
        assert arrs2.tolist() == arrs.tolist()


class TestIsReduced:
    def test_empty_is_reduced(self):
        assert is_reduced([])

    def test_strictly_increasing(self):
        assert is_reduced([10, 20, 30])

    def test_plateau_not_reduced(self):
        assert not is_reduced([10, 10])

    def test_inf_not_reduced(self):
        assert not is_reduced([10, INF_TIME])

    @given(
        arrivals=st.lists(
            st.integers(min_value=0, max_value=10_000) | st.just(INF_TIME),
            max_size=30,
        )
    )
    def test_reduction_output_is_reduced(self, arrivals):
        deps = list(range(len(arrivals)))
        _deps, arrs = reduce_connection_points(deps, np.maximum(arrivals, deps))
        assert is_reduced(arrs)
