"""Unit tests of the wire schema: strict validation in, deterministic
encoding out — no server, no sockets."""

from __future__ import annotations

import json

import pytest

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_journey,
    encode_profile,
    parse_batch_request,
    parse_delay_request,
    parse_journey_request,
    parse_profile_request,
)
from repro.service import (
    JourneyRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.timetable.delays import Delay

N = 10  # stations in scope for parsing tests
TRAINS = 5


def err(fn, *args, **kwargs) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        fn(*args, **kwargs)
    return excinfo.value


class TestParseProfile:
    def test_minimal(self):
        request, targets = parse_profile_request({"source": 3}, N)
        assert request == ProfileRequest(3)
        assert targets is None

    def test_full(self):
        request, targets = parse_profile_request(
            {"v": 1, "source": 3, "num_threads": 2, "targets": [0, 9]}, N
        )
        assert request == ProfileRequest(3, num_threads=2)
        assert targets == (0, 9)

    def test_rejections(self):
        assert err(parse_profile_request, [], N).code == "invalid_request"
        assert err(parse_profile_request, {}, N).code == "missing_field"
        assert (
            err(parse_profile_request, {"source": "0"}, N).code
            == "invalid_type"
        )
        assert (
            err(parse_profile_request, {"source": True}, N).code
            == "invalid_type"
        )
        assert (
            err(parse_profile_request, {"source": N}, N).code
            == "out_of_range"
        )
        assert (
            err(parse_profile_request, {"source": -1}, N).code
            == "out_of_range"
        )
        assert (
            err(parse_profile_request, {"source": 0, "threads": 2}, N).code
            == "unknown_field"
        )
        assert (
            err(parse_profile_request, {"source": 0, "num_threads": 0}, N).code
            == "out_of_range"
        )
        assert (
            err(parse_profile_request, {"source": 0, "targets": []}, N).code
            == "invalid_type"
        )
        assert (
            err(parse_profile_request, {"source": 0, "targets": [N]}, N).code
            == "out_of_range"
        )

    def test_num_threads_is_capped(self):
        """An unauthenticated request must not size allocations: the
        wire cap bounds per-query cores in both places they appear."""
        from repro.server.protocol import MAX_NUM_THREADS

        parse_profile_request({"source": 0, "num_threads": MAX_NUM_THREADS}, N)
        assert (
            err(
                parse_profile_request,
                {"source": 0, "num_threads": MAX_NUM_THREADS + 1},
                N,
            ).code
            == "out_of_range"
        )
        assert (
            err(
                parse_batch_request,
                {"profiles": [{"source": 0, "num_threads": 10**9}]},
                N,
            ).code
            == "out_of_range"
        )

    def test_version_gate(self):
        exc = err(parse_profile_request, {"v": 2, "source": 0}, N)
        assert exc.code == "unsupported_version"
        assert exc.status == 400
        # Omitted version means the current one.
        parse_profile_request({"source": 0}, N)


class TestParseJourney:
    def test_roundtrip(self):
        request = parse_journey_request(
            {"source": 1, "target": 8, "departure": 480}, N
        )
        assert request == JourneyRequest(1, 8, 480)
        assert parse_journey_request({"source": 1, "target": 8}, N) == (
            JourneyRequest(1, 8, None)
        )

    def test_rejections(self):
        assert (
            err(parse_journey_request, {"source": 1}, N).code
            == "missing_field"
        )
        assert (
            err(
                parse_journey_request,
                {"source": 1, "target": 2, "departure": -1},
                N,
            ).code
            == "out_of_range"
        )


class TestParseBatch:
    def test_mixed(self):
        request = parse_batch_request(
            {
                "journeys": [
                    {"source": 0, "target": 5},
                    {"source": 1, "target": 6, "departure": 60},
                ],
                "profiles": [{"source": 2, "num_threads": 2}],
            },
            N,
        )
        assert request.journeys == (
            JourneyRequest(0, 5),
            JourneyRequest(1, 6, 60),
        )
        assert request.profiles == (ProfileRequest(2, num_threads=2),)

    def test_rejections(self):
        assert err(parse_batch_request, {}, N).code == "invalid_request"
        assert (
            err(parse_batch_request, {"journeys": "x"}, N).code
            == "invalid_type"
        )
        exc = err(
            parse_batch_request,
            {"journeys": [{"source": 0, "target": 1, "x": 2}]},
            N,
        )
        assert exc.code == "unknown_field"
        assert "journeys[0]" in exc.message


class TestParseDelays:
    def test_roundtrip(self):
        command = parse_delay_request(
            {
                "delays": [
                    {"train": 0, "minutes": 10},
                    {"train": 4, "minutes": 5, "from_stop": 1},
                ],
                "slack_per_leg": 2,
            },
            TRAINS,
        )
        assert command.delays == (
            Delay(train=0, minutes=10),
            Delay(train=4, minutes=5, from_stop=1),
        )
        assert command.slack_per_leg == 2
        assert command.mode == "apply" and command.token is None

    def test_two_phase_modes(self):
        prepare = parse_delay_request(
            {"mode": "prepare", "delays": [{"train": 0, "minutes": 3}]},
            TRAINS,
        )
        assert prepare.mode == "prepare" and prepare.token is None
        commit = parse_delay_request({"mode": "commit", "token": 7}, TRAINS)
        assert commit.mode == "commit" and commit.token == 7
        assert commit.delays == ()
        abort = parse_delay_request({"mode": "abort", "token": 7}, TRAINS)
        assert abort.mode == "abort" and abort.token == 7

    def test_two_phase_rejections(self):
        # An unknown phase name.
        assert (
            err(parse_delay_request, {"mode": "merge", "token": 1}, TRAINS).code
            == "invalid_request"
        )
        # commit/abort must not re-send the batch...
        assert (
            err(
                parse_delay_request,
                {"mode": "commit", "token": 1,
                 "delays": [{"train": 0, "minutes": 1}]},
                TRAINS,
            ).code
            == "invalid_request"
        )
        # ...and need their token.
        assert (
            err(parse_delay_request, {"mode": "commit"}, TRAINS).code
            == "missing_field"
        )
        # apply/prepare carry delays, never a token.
        assert (
            err(
                parse_delay_request,
                {"delays": [{"train": 0, "minutes": 1}], "token": 3},
                TRAINS,
            ).code
            == "invalid_request"
        )

    def test_rejections(self):
        assert (
            err(parse_delay_request, {"delays": []}, TRAINS).code
            == "invalid_request"
        )
        assert (
            err(
                parse_delay_request,
                {"delays": [{"train": TRAINS, "minutes": 1}]},
                TRAINS,
            ).code
            == "out_of_range"
        )
        assert (
            err(
                parse_delay_request,
                {"delays": [{"train": 0}]},
                TRAINS,
            ).code
            == "missing_field"
        )


class TestErrorPayload:
    def test_shape_and_status(self):
        exc = ProtocolError("boom", "it broke", field="x", status=418)
        assert exc.status == 418
        assert exc.payload() == {
            "v": PROTOCOL_VERSION,
            "error": {"code": "boom", "message": "it broke", "field": "x"},
        }


class TestEncoding:
    @pytest.fixture(scope="class")
    def service(self, oahu_tiny):
        return TransitService(oahu_tiny, ServiceConfig(num_threads=2))

    def test_journey_payload_is_json_safe_and_faithful(self, service):
        result = service.journey(0, 5, departure=480)
        payload = json.loads(json.dumps(encode_journey(result)))
        assert payload["v"] == PROTOCOL_VERSION
        assert payload["source"] == 0 and payload["target"] == 5
        assert payload["arrival"] == result.arrival
        assert payload["profile"] == [
            [int(dep), int(dur)]
            for dep, dur in result.profile.connection_points()
        ]
        assert len(payload["legs"]) == len(result.legs)
        assert payload["stats"]["cache_hit"] is False

    def test_profile_payload_respects_targets(self, service):
        result = service.profile(0)
        full = encode_profile(result, num_stations=12)
        assert str(0) not in full["profiles"]  # source is omitted
        assert len(full["profiles"]) == 11
        part = encode_profile(result, num_stations=12, targets=(5,))
        assert list(part["profiles"]) == ["5"]
        assert part["profiles"]["5"] == full["profiles"]["5"]
