"""End-to-end server tests over real TCP.

The acceptance bars of the serving subsystem:

* **Parity** — every query shape answered over HTTP is bitwise-
  identical to a direct :class:`TransitService` call (timings aside:
  wall-clock fields are scrubbed before comparison, everything else —
  profiles, arrivals, legs, counters — must match exactly).
* **Hot swap** — a delay swap posted under concurrent traffic
  completes with zero failed in-flight requests, and post-swap answers
  match a cold service built on the delayed timetable.
* **Micro-batching** — concurrent journeys group into shared
  :meth:`TransitService.batch` passes (visible in ``/metrics``)
  without changing any answer.
* **Overload** — past ``max_inflight`` the server answers a fast 503
  instead of queueing; **drain** — shutdown finishes in-flight work.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.server import DatasetRegistry
from repro.server.protocol import (
    encode_batch,
    encode_journey,
    encode_profile,
)
from repro.service import BatchRequest, JourneyRequest, ProfileRequest
from repro.timetable.delays import Delay

from tests.server.harness import ServerHarness


def scrubbed(payload):
    """Drop wall-clock noise; keep every deterministic field."""
    if isinstance(payload, dict):
        return {
            key: (0.0 if key.endswith("_seconds") else scrubbed(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [scrubbed(item) for item in payload]
    return payload


NUM_STATIONS = 12  # oahu tiny


async def _call_soon(fn):
    """Run a sync callable on the server's event loop."""
    return fn()


class TestParity:
    def test_journey_matches_direct_call(self, harness, make_service):
        direct = make_service()
        for source, target, departure in ((0, 5, None), (2, 9, 480)):
            body = {"source": source, "target": target}
            if departure is not None:
                body["departure"] = departure
            status, payload = harness.request(
                "POST", "/v1/oahu/journey", body
            )
            assert status == 200
            expected = encode_journey(
                direct.journey(JourneyRequest(source, target, departure))
            )
            assert scrubbed(payload) == scrubbed(expected)

    def test_profile_matches_direct_call(self, harness, make_service):
        direct = make_service()
        status, payload = harness.request(
            "POST", "/v1/oahu/profile", {"source": 3}
        )
        assert status == 200
        expected = encode_profile(
            direct.profile(ProfileRequest(3)), num_stations=NUM_STATIONS
        )
        assert scrubbed(payload) == scrubbed(expected)
        # The targets restriction trims the wire payload, not the search.
        status, restricted = harness.request(
            "POST", "/v1/oahu/profile", {"source": 3, "targets": [0, 7]}
        )
        assert status == 200
        assert set(restricted["profiles"]) == {"0", "7"}
        assert restricted["profiles"]["7"] == payload["profiles"]["7"]

    def test_batch_matches_direct_call(self, harness, make_service):
        direct = make_service()
        body = {
            "journeys": [
                {"source": 0, "target": 5},
                {"source": 1, "target": 6, "departure": 540},
            ],
            "profiles": [{"source": 2}],
        }
        status, payload = harness.request("POST", "/v1/oahu/batch", body)
        assert status == 200
        expected = encode_batch(
            direct.batch(
                BatchRequest(
                    journeys=(
                        JourneyRequest(0, 5),
                        JourneyRequest(1, 6, 540),
                    ),
                    profiles=(ProfileRequest(2),),
                )
            ),
            num_stations=NUM_STATIONS,
        )
        assert scrubbed(payload) == scrubbed(expected)

    def test_repeated_request_is_served_from_cache(self, harness):
        first = harness.request("POST", "/v1/oahu/profile", {"source": 4})[1]
        second = harness.request("POST", "/v1/oahu/profile", {"source": 4})[1]
        assert not first["stats"]["cache_hit"]
        assert second["stats"]["cache_hit"]
        assert second["profiles"] == first["profiles"]
        metrics = harness.request("GET", "/metrics")[1]
        assert metrics["datasets"]["oahu"]["result_cache"]["hits"] >= 1


class TestMicroBatching:
    def test_concurrent_journeys_group_without_changing_answers(
        self, make_service
    ):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(
            registry, batch_window=0.25, batch_max=6, max_inflight=32
        )
        try:
            direct = make_service()
            pairs = [(s, s + 6) for s in range(6)]
            results: dict[int, tuple[int, dict]] = {}
            barrier = threading.Barrier(len(pairs))

            def client(i: int, source: int, target: int) -> None:
                barrier.wait()
                results[i] = harness.request(
                    "POST",
                    "/v1/oahu/journey",
                    {"source": source, "target": target},
                )

            threads = [
                threading.Thread(target=client, args=(i, s, t))
                for i, (s, t) in enumerate(pairs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(results) == len(pairs)
            for i, (source, target) in enumerate(pairs):
                status, payload = results[i]
                assert status == 200
                expected = encode_journey(direct.journey(source, target))
                assert scrubbed(payload) == scrubbed(expected)

            micro = harness.request("GET", "/metrics")[1]["micro_batching"]
            assert micro["batched_queries_total"] == len(pairs)
            # Grouping must actually have happened: fewer flushes than
            # requests, and at least one multi-request group.
            assert micro["batches_total"] < len(pairs)
            assert micro["max_batch_size"] >= 2

            # Grouped execution must not have bypassed the per-journey
            # result cache: repeating one of the grouped requests is a
            # hit.
            source, target = pairs[0]
            repeat = harness.request(
                "POST",
                "/v1/oahu/journey",
                {"source": source, "target": target},
            )[1]
            assert repeat["stats"]["cache_hit"]
        finally:
            harness.close()


class TestHotSwap:
    DELAYS = {"delays": [{"train": 0, "minutes": 45}], "slack_per_leg": 0}

    def test_swap_under_traffic_fails_no_inflight_request(
        self, make_service
    ):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry, max_inflight=64)
        try:
            stop = threading.Event()
            statuses: list[int] = []
            lock = threading.Lock()

            def hammer() -> None:
                while not stop.is_set():
                    status, _ = harness.request(
                        "POST",
                        "/v1/oahu/journey",
                        {"source": 0, "target": 5},
                    )
                    with lock:
                        statuses.append(status)

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)
            swap_status, swap = harness.request(
                "POST", "/v1/datasets/oahu/delays", self.DELAYS
            )
            time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(timeout=60)

            assert swap_status == 200
            assert swap["generation"] == 1
            assert statuses, "no traffic ran during the swap"
            assert set(statuses) == {200}, (
                f"in-flight requests failed during hot swap: "
                f"{[s for s in statuses if s != 200]}"
            )
        finally:
            harness.close()

    def test_post_swap_answers_match_cold_delayed_service(
        self, harness, make_service
    ):
        # 2 → 5 rides train 0's route: the 45-minute delay must move
        # this profile (verified against a cold delayed service below).
        before = harness.request(
            "POST", "/v1/oahu/journey", {"source": 2, "target": 5}
        )[1]
        status, swap = harness.request(
            "POST", "/v1/datasets/oahu/delays", self.DELAYS
        )
        assert status == 200 and swap["generation"] == 1
        after = harness.request(
            "POST", "/v1/oahu/journey", {"source": 2, "target": 5}
        )[1]
        cold = make_service().apply_delays(
            [Delay(train=0, minutes=45)]
        )
        expected = encode_journey(cold.journey(2, 5))
        assert scrubbed(after) == scrubbed(expected)
        assert after["profile"] != before["profile"], (
            "delaying train 0 by 45 minutes must change the 2→5 profile"
        )
        # /v1/datasets and /metrics reflect the swap.
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["generation"] == 1
        metrics = harness.request("GET", "/metrics")[1]
        assert metrics["swaps_total"] == {"oahu": 1}

    def test_two_phase_prepare_then_commit(self, harness, make_service):
        """The fleet gateway's worker-facing protocol: ``prepare``
        replans off to the side (answers unchanged), ``commit`` makes
        the pointer swap, and a prepare invalidated by an interleaved
        apply is refused with 409 instead of committing a stale plan."""
        before = harness.request(
            "POST", "/v1/oahu/journey", {"source": 2, "target": 5}
        )[1]

        status, prep = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {**self.DELAYS, "mode": "prepare"},
        )
        assert status == 200 and prep["mode"] == "prepare"
        assert prep["base_generation"] == 0
        assert prep["replan_seconds"] > 0
        token = prep["token"]

        # The expensive replan already happened, yet nothing changed
        # for clients: same answers, same generation.
        mid = harness.request(
            "POST", "/v1/oahu/journey", {"source": 2, "target": 5}
        )[1]
        assert mid["profile"] == before["profile"]
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["generation"] == 0

        status, commit = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"mode": "commit", "token": token},
        )
        assert status == 200 and commit["generation"] == 1
        # Commit swaps a pointer and books the prepare's replan time
        # as the swap cost (the work happened there, off to the side).
        assert commit["swap_seconds"] == prep["replan_seconds"]

        after = harness.request(
            "POST", "/v1/oahu/journey", {"source": 2, "target": 5}
        )[1]
        cold = make_service().apply_delays([Delay(train=0, minutes=45)])
        assert scrubbed(after) == scrubbed(encode_journey(cold.journey(2, 5)))

        # A consumed token cannot commit twice.
        status, payload = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"mode": "commit", "token": token},
        )
        assert status == 409
        assert payload["error"]["code"] == "swap_conflict"

    def test_prepare_invalidated_by_interleaved_apply(self, harness):
        status, prep = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {**self.DELAYS, "mode": "prepare"},
        )
        assert status == 200
        # An apply lands between prepare and commit: the prepared plan
        # was computed against generation 0 and must not commit.
        status, _ = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"delays": [{"train": 1, "minutes": 5}]},
        )
        assert status == 200
        status, payload = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"mode": "commit", "token": prep["token"]},
        )
        assert status == 409
        assert payload["error"]["code"] == "swap_conflict"
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["generation"] == 1  # only the apply landed

    def test_abort_discards_prepared_swap(self, harness):
        status, prep = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {**self.DELAYS, "mode": "prepare"},
        )
        assert status == 200
        status, aborted = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"mode": "abort", "token": prep["token"]},
        )
        assert status == 200 and aborted["discarded"] is True
        # Nothing swapped; the token is dead.
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["generation"] == 0
        status, payload = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"mode": "commit", "token": prep["token"]},
        )
        assert status == 409

    def test_swap_validation_errors_are_client_errors(self, harness):
        status, payload = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"delays": [{"train": 0, "minutes": 10, "from_stop": 9999}]},
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        status, payload = harness.request(
            "POST",
            "/v1/datasets/oahu/delays",
            {"delays": [{"train": 10**6, "minutes": 10}]},
        )
        assert status == 400
        assert payload["error"]["code"] == "out_of_range"
        # Neither attempt swapped anything.
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["generation"] == 0


class TestOverloadAndDrain:
    def test_overload_gets_fast_503(self, make_service):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        # One admission slot, and a collection window long enough that
        # the first journey is guaranteed still in flight when the
        # second arrives.
        harness = ServerHarness(
            registry, max_inflight=1, batch_window=0.5, batch_max=64
        )
        try:
            first: list[tuple[int, dict]] = []

            def slow_request() -> None:
                first.append(
                    harness.request(
                        "POST",
                        "/v1/oahu/journey",
                        {"source": 0, "target": 5},
                    )
                )

            t = threading.Thread(target=slow_request)
            t.start()
            time.sleep(0.1)  # let it be admitted and parked in the window
            t0 = time.perf_counter()
            status, headers, payload = harness.request_full(
                "POST", "/v1/oahu/journey", {"source": 1, "target": 6}
            )
            rejected_in = time.perf_counter() - t0
            t.join(timeout=60)

            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert payload["error"]["retriable"] is True
            # The rejection carries the backoff hint clients honor
            # (default retry_after=1.0 renders as integral seconds).
            assert headers.get("retry-after") == "1"
            assert rejected_in < 0.4, (
                f"503 took {rejected_in * 1000:.0f} ms — overload "
                f"rejection must not wait for the batch window"
            )
            assert first and first[0][0] == 200, (
                "the admitted request must still complete"
            )
            metrics = harness.request("GET", "/metrics")[1]
            assert metrics["rejected_total"] >= 1
        finally:
            harness.close()

    def test_shutdown_drains_inflight_requests(self, make_service):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry, batch_window=0.3, batch_max=64)
        outcome: list[tuple[int, dict]] = []

        def inflight() -> None:
            outcome.append(
                harness.request(
                    "POST", "/v1/oahu/journey", {"source": 0, "target": 5}
                )
            )

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.1)  # admitted, parked in the batch window
        harness.close()  # graceful drain must flush and answer it
        t.join(timeout=60)
        assert outcome and outcome[0][0] == 200

    def test_begin_drain_flips_readiness_before_rejecting(
        self, make_service
    ):
        """Readiness vs liveness (``docs/SERVER.md``): ``begin_drain``
        makes ``/healthz`` report "draining" while queries still get
        full answers — the window in which load balancers stop routing
        *before* any client ever sees a 503.  Only the hard drain
        (``shutdown``) starts rejecting."""
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry, drain_grace=0.2)
        try:
            asyncio.run_coroutine_threadsafe(
                _call_soon(harness.server.begin_drain), harness.loop
            ).result(timeout=10)
            health = harness.request("GET", "/healthz")[1]
            assert health["status"] == "draining"
            assert health["ready"] is False
            # Not-ready ≠ not-serving: queries still succeed.
            status, payload = harness.request(
                "POST", "/v1/oahu/journey", {"source": 0, "target": 5}
            )
            assert status == 200 and payload["kind"] == "journey"
        finally:
            harness.close()

    def test_draining_server_rejects_new_queries(self, make_service):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry)
        harness.server._draining = True
        try:
            status, headers, payload = harness.request_full(
                "POST", "/v1/oahu/journey", {"source": 0, "target": 5}
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
            # Draining rejections advertise the same backoff hint.
            assert headers.get("retry-after") == "1"
            # Delay swaps obey the same gate: no new replans mid-drain.
            status, payload = harness.request(
                "POST",
                "/v1/datasets/oahu/delays",
                {"delays": [{"train": 0, "minutes": 5}]},
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
            health = harness.request("GET", "/healthz")
            assert health[0] == 200 and health[1]["status"] == "draining"
        finally:
            harness.server._draining = False
            harness.close()

    def test_shutdown_is_not_stalled_by_idle_keepalive_connections(
        self, make_service
    ):
        """An idle keep-alive client parks its handler in a read that
        would never return; shutdown must close it and complete anyway
        (harness.close() enforces a 30 s deadline)."""
        import http.client

        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry)
        conn = http.client.HTTPConnection("127.0.0.1", harness.port)
        try:
            conn.request(
                "POST",
                "/v1/oahu/journey",
                body='{"source": 0, "target": 5}',
            )
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            # The connection is now idle (keep-alive, no new request).
            t0 = time.perf_counter()
            harness.close()
            assert time.perf_counter() - t0 < 10.0
        finally:
            conn.close()

    def test_oversized_body_gets_413(self, make_service):
        registry = DatasetRegistry.from_services({"oahu": make_service()})
        harness = ServerHarness(registry)
        try:
            import http.client

            from repro.server import MAX_BODY_BYTES

            conn = http.client.HTTPConnection("127.0.0.1", harness.port)
            # Declare an over-cap body; the server must answer 413
            # without reading it off the socket.
            conn.putrequest("POST", "/v1/oahu/journey")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            conn.send(b"x" * 1024)  # a taste, not the whole body
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 413
            assert payload["error"]["code"] == "payload_too_large"
        finally:
            harness.close()


class TestHttpErrors:
    def test_malformed_json_is_400(self, harness):
        status, payload = harness.request(
            "POST", "/v1/oahu/journey", "{not json"
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_unknown_dataset_is_404(self, harness):
        status, payload = harness.request(
            "POST", "/v1/nowhere/journey", {"source": 0, "target": 1}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_dataset"
        assert "oahu" in payload["error"]["message"]

    def test_unknown_route_is_404(self, harness):
        status, payload = harness.request("GET", "/v2/oahu/journey")
        assert status == 404
        assert payload["error"]["code"] == "unknown_route"

    def test_wrong_method_is_405(self, harness):
        status, payload = harness.request("POST", "/healthz", {})
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_wrong_protocol_version_is_rejected(self, harness):
        status, payload = harness.request(
            "POST", "/v1/oahu/journey", {"v": 99, "source": 0, "target": 1}
        )
        assert status == 400
        assert payload["error"]["code"] == "unsupported_version"

    def test_listing_and_health(self, harness):
        status, health = harness.request("GET", "/healthz")
        assert status == 200
        assert health == {
            "v": 1,
            "status": "ok",
            "ready": True,
            "datasets": ["oahu"],
            "generations": {"oahu": 0},
        }
        listed = harness.request("GET", "/v1/datasets")[1]["datasets"]
        assert listed[0]["name"] == "oahu"
        assert listed[0]["stations"] == NUM_STATIONS
        assert listed[0]["has_distance_table"] is True

    def test_metrics_counts_traffic(self, harness):
        harness.request("POST", "/v1/oahu/journey", {"source": 0, "target": 5})
        metrics = harness.request("GET", "/metrics")[1]
        label = "POST /v1/{name}/journey"
        assert metrics["requests_total"][label] == 1
        assert metrics["responses_total"][label]["200"] == 1
        assert metrics["latency"][label]["count"] == 1

    def test_metrics_count_observed_client_retries(self, harness):
        """Requests that declare themselves retries (X-Retry-Attempt,
        as sent by repro.client's 503 backoff) feed the
        retries_observed_total counter; first attempts don't."""
        body = {"source": 0, "target": 5}
        harness.request_full("POST", "/v1/oahu/journey", body)
        assert (
            harness.request("GET", "/metrics")[1]["retries_observed_total"]
            == 0
        )
        harness.request_full(
            "POST",
            "/v1/oahu/journey",
            body,
            headers={"X-Retry-Attempt": "1"},
        )
        harness.request_full(
            "POST",
            "/v1/oahu/journey",
            body,
            headers={"X-Retry-Attempt": "2"},
        )
        # Malformed attempt counts are ignored, not 500s.
        status, _, _ = harness.request_full(
            "POST",
            "/v1/oahu/journey",
            body,
            headers={"X-Retry-Attempt": "not-a-number"},
        )
        assert status == 200
        metrics = harness.request("GET", "/metrics")[1]
        assert metrics["retries_observed_total"] == 2
