"""ServerMetrics unit behaviour: histogram overflow surfacing and
per-endpoint reject attribution (the /metrics e2e payload is pinned in
``test_server_e2e``)."""

from __future__ import annotations

from repro.server.metrics import (
    LATENCY_BUCKETS_MS,
    LatencyHistogram,
    ServerMetrics,
)


class TestLatencyHistogram:
    def test_empty_percentiles_are_none(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms_le"] is None
        assert snap["overflow_count"] == 0

    def test_percentile_reports_bucket_upper_bound(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.004)  # 4 ms -> the "5.0" bucket
        assert hist.percentile(0.5) == 5.0
        assert hist.percentile(0.99) == 5.0

    def test_overflow_percentile_is_null_not_clamped(self):
        """A 10 s request must never report p99 <= 2500 ms: quantiles
        landing in the +inf bucket have no finite upper bound."""
        hist = LatencyHistogram()
        hist.observe(10.0)  # 10 s: beyond the last finite bound
        assert hist.percentile(0.5) is None
        assert hist.percentile(0.99) is None
        snap = hist.snapshot()
        assert snap["p50_ms_le"] is None
        assert snap["p99_ms_le"] is None
        assert snap["overflow_count"] == 1
        assert snap["buckets_ms"]["inf"] == 1

    def test_mixed_load_splits_at_the_overflow_boundary(self):
        """With 90 fast requests and 10 runaways, p50 stays a finite
        bound while p99 (landing in the overflow) goes null — the
        overload tail is surfaced exactly where it lives."""
        hist = LatencyHistogram()
        for _ in range(90):
            hist.observe(0.001)
        for _ in range(10):
            hist.observe(60.0)
        assert hist.percentile(0.50) == 1.0
        assert hist.percentile(0.99) is None
        snap = hist.snapshot()
        assert snap["p50_ms_le"] == 1.0
        assert snap["p99_ms_le"] is None
        assert snap["overflow_count"] == 10
        assert snap["count"] == 100

    def test_last_finite_bucket_still_reports_its_bound(self):
        """Observations inside the last *finite* bucket keep reporting
        its bound — only true overflow goes null."""
        hist = LatencyHistogram()
        hist.observe(LATENCY_BUCKETS_MS[-1] / 1000.0)  # exactly 2500 ms
        assert hist.percentile(0.99) == LATENCY_BUCKETS_MS[-1]
        assert hist.snapshot()["overflow_count"] == 0


class TestRejectAttribution:
    def test_rejects_recorded_per_endpoint_and_in_total(self):
        metrics = ServerMetrics()
        metrics.observe_reject("POST /v1/{name}/journey")
        metrics.observe_reject("POST /v1/{name}/journey")
        metrics.observe_reject("POST /v1/datasets/{name}/delays")
        snap = metrics.snapshot()
        # The scalar stays for wire compat...
        assert snap["rejected_total"] == 3
        # ...and the breakdown attributes 503 pressure per route.
        assert snap["rejected_by_endpoint"] == {
            "POST /v1/{name}/journey": 2,
            "POST /v1/datasets/{name}/delays": 1,
        }

    def test_snapshot_copies_the_breakdown(self):
        metrics = ServerMetrics()
        metrics.observe_reject("POST /v1/{name}/journey")
        snap = metrics.snapshot()
        snap["rejected_by_endpoint"]["POST /v1/{name}/journey"] = 99
        assert metrics.rejected_by_endpoint["POST /v1/{name}/journey"] == 1
