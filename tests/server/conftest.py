"""Server-test fixtures over the shared :class:`ServerHarness`."""

from __future__ import annotations

import pytest

from repro.server import DatasetRegistry
from repro.service import ServiceConfig, TransitService

from tests.server.harness import ServerHarness

#: One prepared-service recipe for every server test: flat kernel with
#: a distance table, so HTTP answers exercise the pruned query paths.
SERVER_CONFIG = ServiceConfig(
    num_threads=2,
    use_distance_table=True,
    transfer_fraction=0.25,
)


@pytest.fixture()
def make_service(oahu_tiny):
    """Fresh, identically-configured services: the direct-call twin of
    whatever the server serves (equal config + timetable ⇒ bitwise-
    identical answers, pinned by the facade suite)."""

    def _make(config: ServiceConfig = SERVER_CONFIG) -> TransitService:
        return TransitService(oahu_tiny, config)

    return _make


@pytest.fixture()
def harness(make_service):
    """A running server over one dataset named ``oahu``."""
    registry = DatasetRegistry.from_services({"oahu": make_service()})
    h = ServerHarness(registry)
    yield h
    h.close()
