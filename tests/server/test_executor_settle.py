"""Micro-batch settling: a misbehaving ``journey_many`` (wrong result
count) must fail futures loudly, never leave them pending forever."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.executor import QueryExecutor
from repro.service.model import JourneyRequest


def _settled_group(results, num_futures):
    """Run _settle_group on a completed task inside a real loop and
    return the per-request futures."""

    async def scenario():
        loop = asyncio.get_running_loop()
        task = loop.create_future()
        task.set_result(results)
        futures = [loop.create_future() for _ in range(num_futures)]
        QueryExecutor._settle_group(task, futures)
        return futures

    return asyncio.run(scenario())


class TestSettleGroupLengths:
    def test_matching_lengths_settle_positionally(self):
        futures = _settled_group(["a", "b", "c"], 3)
        assert [f.result() for f in futures] == ["a", "b", "c"]

    def test_short_result_list_fails_leftovers(self):
        """Three grouped requests, two results: the aligned prefix is
        delivered, the trailing future fails with a clear error
        instead of hanging until the client's HTTP timeout."""
        futures = _settled_group(["a", "b"], 3)
        assert futures[0].result() == "a"
        assert futures[1].result() == "b"
        with pytest.raises(RuntimeError, match="2 results for 3"):
            futures[2].result()
        assert all(f.done() for f in futures)  # nothing left pending

    def test_long_result_list_fails_everything(self):
        """More results than requests means the positional alignment
        itself is untrustworthy — no future may accept an answer."""
        futures = _settled_group(["a", "b", "c"], 2)
        for future in futures:
            with pytest.raises(RuntimeError, match="3 results for 2"):
                future.result()

    def test_empty_result_list_fails_all(self):
        futures = _settled_group([], 2)
        for future in futures:
            with pytest.raises(RuntimeError, match="0 results for 2"):
                future.result()


class TestSettleGroupEndToEnd:
    def test_broken_journey_many_fails_grouped_requests(self, make_service):
        """Through the real micro-batch path: a service whose
        journey_many drops an answer produces request failures, not
        hangs."""
        service = make_service()
        real = service.journey_many
        service.journey_many = lambda requests: real(requests)[:-1]

        async def scenario():
            executor = QueryExecutor(
                workers=2, batch_window=0.05, batch_max=2
            )
            try:
                a = asyncio.create_task(
                    executor.journey(service, JourneyRequest(0, 5))
                )
                b = asyncio.create_task(
                    executor.journey(service, JourneyRequest(1, 6))
                )
                results = await asyncio.gather(a, b, return_exceptions=True)
            finally:
                await executor.shutdown()
            return results

        results = asyncio.run(asyncio.wait_for(scenario(), timeout=10))
        # The aligned prefix answered; the dropped tail failed loudly.
        errors = [r for r in results if isinstance(r, Exception)]
        assert len(errors) == 1
        assert "1 results for 2" in str(errors[0])