"""A real :class:`TransitServer` on a background event-loop thread,
driven over actual TCP by synchronous stdlib HTTP clients.  Shared by
the server test suite (via ``tests/server/conftest.py``) and
``benchmarks/bench_server_throughput.py``."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.server import DatasetRegistry, TransitServer


class ServerHarness:
    """Run one server on its own event loop; synchronous test access."""

    def __init__(self, registry: DatasetRegistry, **server_kwargs) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="server-loop", daemon=True
        )
        self._thread.start()
        self.server = TransitServer(registry, port=0, **server_kwargs)
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=10)

    @property
    def port(self) -> int:
        return self.server.port

    def request(
        self,
        method: str,
        path: str,
        body: dict | str | None = None,
        *,
        timeout: float = 30.0,
    ) -> tuple[int, dict]:
        """One HTTP request on a fresh connection; JSON-decoded reply."""
        status, _headers, payload = self.request_full(
            method, path, body, timeout=timeout
        )
        return status, payload

    def request_full(
        self,
        method: str,
        path: str,
        body: dict | str | None = None,
        *,
        timeout: float = 30.0,
        headers: dict | None = None,
    ) -> tuple[int, dict, dict]:
        """Like :meth:`request`, with lowercased response headers."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            data = (
                body
                if body is None or isinstance(body, str)
                else json.dumps(body)
            )
            conn.request(method, path, body=data, headers=headers or {})
            response = conn.getresponse()
            payload = json.loads(response.read())
            response_headers = {
                name.lower(): value for name, value in response.headers.items()
            }
            return response.status, response_headers, payload
        finally:
            conn.close()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()
