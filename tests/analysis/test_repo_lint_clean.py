"""The standing guard: the repository itself lints clean.

This is the fourth standing suite next to oracle-equivalence, client
parity and the bench gate — every true positive PR 8 fixed (supervisor
lock discipline, metric-catalog drift) is pinned here, because the
moment any of them regresses, the corresponding rule fires and this
test fails tier-1.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint import Project, default_config, run_lint
from repro.analysis.lint.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_has_no_findings():
    report = run_lint(Project(REPO_ROOT), default_config())
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"repo lint regressed:\n{rendered}"


def test_all_five_rules_actually_ran():
    report = run_lint(Project(REPO_ROOT), default_config())
    assert set(report.rules_run) == {
        "ASYNC-BLOCK",
        "LOCK-GUARD",
        "WIRE-PARITY",
        "METRIC-DRIFT",
        "EXPORT-SANITY",
    }


def test_committed_baseline_is_empty():
    """Policy (docs/ANALYSIS.md): debt is fixed or justified inline,
    never parked in the baseline."""
    baseline = json.loads((REPO_ROOT / DEFAULT_BASELINE_NAME).read_text())
    assert baseline == {"version": 1, "findings": []}


def test_every_suppression_carries_a_justification():
    """`# lint: disable=RULE` without an ` — why` is a naked override;
    the convention requires the reason inline."""
    report = run_lint(Project(REPO_ROOT), default_config())
    project = Project(REPO_ROOT)
    for finding in report.suppressed:
        lines = project.lines(finding.path)
        window = lines[max(finding.line - 2, 0): finding.line]
        assert any(
            "lint: disable=" in line and "—" in line for line in window
        ), f"suppression without justification at {finding.path}:{finding.line}"


def test_guard_annotations_are_seeded_where_the_issue_requires():
    """PR 8 seeds `# guarded-by:` across the concurrency-sensitive
    modules; losing an annotation silently disables its checks."""
    expected = {
        "src/repro/service/cache.py": "_lock",
        "src/repro/server/registry.py": "_swap_lock",
        "src/repro/server/metrics.py": "loop",
        "src/repro/fleet/metrics.py": "loop",
        "src/repro/fleet/supervisor.py": "_lock",
        "src/repro/fleet/gateway.py": "_swap_lock",
    }
    for relpath, lock in expected.items():
        text = (REPO_ROOT / relpath).read_text()
        assert f"# guarded-by: {lock}" in text, (
            f"{relpath} lost its '# guarded-by: {lock}' annotation"
        )
