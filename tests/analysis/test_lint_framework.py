"""Framework behavior: suppressions, baselines, and the `repro lint`
CLI (exit codes, JSON output, baseline workflow)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    BaselineError,
    Finding,
    Project,
    default_config,
    load_baseline,
    run_lint,
    split_by_baseline,
    write_baseline,
)
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
NEARMISS = FIXTURES / "nearmiss"


def _write_async_violation(root: Path, *, suppress: str = "") -> Path:
    mod = root / "src" / "repro" / "server" / "app.py"
    mod.parent.mkdir(parents=True, exist_ok=True)
    body = "import time\n\n\nasync def handle():\n"
    if suppress:
        body += f"    {suppress}\n"
    body += "    time.sleep(0.1)\n"
    mod.write_text(body)
    return mod


class TestSuppressions:
    def test_inline_disable_on_preceding_line(self, tmp_path):
        _write_async_violation(
            tmp_path,
            suppress="# lint: disable=ASYNC-BLOCK — test justification",
        )
        report = run_lint(Project(tmp_path), default_config())
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["ASYNC-BLOCK"]

    def test_disable_of_a_different_rule_does_not_suppress(self, tmp_path):
        _write_async_violation(
            tmp_path, suppress="# lint: disable=LOCK-GUARD — wrong rule"
        )
        report = run_lint(Project(tmp_path), default_config())
        assert [f.rule for f in report.findings] == ["ASYNC-BLOCK"]

    def test_same_line_disable(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "server" / "app.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import time\n\n\nasync def handle():\n"
            "    time.sleep(0.1)  # lint: disable=ASYNC-BLOCK — reason\n"
        )
        report = run_lint(Project(tmp_path), default_config())
        assert report.findings == []


class TestBaseline:
    def test_round_trip_accepts_current_findings(self, tmp_path):
        report = run_lint(Project(VIOLATIONS), default_config())
        assert report.findings
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)
        accepted = load_baseline(path)
        new, baselined, stale = split_by_baseline(report.findings, accepted)
        assert new == []
        assert len(baselined) == len(report.findings)
        assert stale == set()

    def test_fingerprints_are_line_independent(self):
        a = Finding("p.py", 10, "RULE", "sym", "msg")
        b = Finding("p.py", 99, "RULE", "sym", "other msg")
        assert a.fingerprint() == b.fingerprint()

    def test_stale_entries_are_reported(self):
        new, baselined, stale = split_by_baseline([], {"RULE::gone.py::x"})
        assert stale == {"RULE::gone.py::x"}

    def test_invalid_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}')
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCli:
    def test_violations_exit_1(self):
        assert main(["lint", "--root", str(VIOLATIONS)]) == 1

    def test_nearmiss_exit_0(self):
        assert main(["lint", "--root", str(NEARMISS)]) == 0

    def test_json_format_lists_all_rules_fired(self, capsys):
        code = main(["lint", "--root", str(VIOLATIONS), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {
            "ASYNC-BLOCK",
            "LOCK-GUARD",
            "WIRE-PARITY",
            "METRIC-DRIFT",
            "EXPORT-SANITY",
        }
        for finding in payload["findings"]:
            assert finding["line"] >= 1
            assert finding["fingerprint"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint", "--root", str(VIOLATIONS),
                    "--baseline", str(baseline), "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "lint", "--root", str(VIOLATIONS),
                    "--baseline", str(baseline),
                ]
            )
            == 0
        )

    def test_stale_baseline_entry_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"version": 1, "findings": ["RULE::gone.py::x"]}
            )
        )
        assert (
            main(
                ["lint", "--root", str(NEARMISS), "--baseline", str(baseline)]
            )
            == 1
        )

    def test_missing_explicit_baseline_is_an_error(self, tmp_path):
        assert (
            main(
                [
                    "lint", "--root", str(NEARMISS),
                    "--baseline", str(tmp_path / "absent.json"),
                ]
            )
            == 2
        )

    def test_unknown_rule_is_an_error(self):
        assert main(["lint", "--root", str(NEARMISS), "--rule", "NOPE"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("ASYNC-BLOCK", "LOCK-GUARD", "WIRE-PARITY",
                     "METRIC-DRIFT", "EXPORT-SANITY"):
            assert rule in out
