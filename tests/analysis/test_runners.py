"""Unit tests for the experiment runners and formatting (paper §5)."""

import pytest

from repro.analysis.formatting import format_table, render_table1, render_table2
from repro.analysis.runners import (
    run_scalability_series,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def table1_result(request):
    graph = request.getfixturevalue("oahu_tiny_graph")
    return run_table1(
        "oahu", scale="tiny", num_queries=2, cores=(1, 2, 4), graph=graph
    )


class TestRunTable1:
    def test_cells_per_core_count(self, table1_result):
        assert [c.num_cores for c in table1_result.cells] == [1, 2, 4]

    def test_baseline_speedup_is_one(self, table1_result):
        assert table1_result.cells[0].speedup == pytest.approx(1.0)

    def test_speedups_positive(self, table1_result):
        assert all(c.speedup > 0 for c in table1_result.cells)

    def test_lc_included(self, table1_result):
        assert table1_result.lc is not None
        assert table1_result.lc.settled_mean > 0

    def test_lc_settles_more_than_cs(self, table1_result):
        """Table 1's headline: CS investigates far fewer connections."""
        assert table1_result.lc.settled_mean > table1_result.cells[0].settled_mean

    def test_lc_excluded_on_request(self, oahu_tiny_graph):
        result = run_table1(
            "oahu",
            scale="tiny",
            num_queries=1,
            cores=(1,),
            include_lc=False,
            graph=oahu_tiny_graph,
        )
        assert result.lc is None


class TestRunTable2:
    def test_rows_per_selection(self, oahu_tiny_graph):
        rows = run_table2(
            "oahu",
            scale="tiny",
            num_queries=3,
            fractions=(0.0, 0.25),
            include_degree_rule=True,
            graph=oahu_tiny_graph,
        )
        assert [r.selection for r in rows] == ["0.0%", "25.0%", "deg > 2"]
        assert rows[0].num_transfer == 0
        assert rows[1].num_transfer > 0
        assert rows[1].prepro_seconds > 0
        assert rows[0].speedup == pytest.approx(1.0)

    def test_settled_not_worse_with_large_table(self, oahu_tiny_graph):
        rows = run_table2(
            "oahu",
            scale="tiny",
            num_queries=4,
            fractions=(0.0, 0.3),
            include_degree_rule=False,
            graph=oahu_tiny_graph,
        )
        assert rows[1].settled_mean <= rows[0].settled_mean


class TestScalabilitySeries:
    def test_points(self, oahu_tiny_graph):
        points = run_scalability_series(
            "oahu", scale="tiny", num_queries=1, max_cores=4, graph=oahu_tiny_graph
        )
        assert [p.num_cores for p in points] == [1, 2, 3, 4]
        assert points[0].settled_growth == pytest.approx(1.0)
        assert all(p.speedup > 0 for p in points)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # fixed width

    def test_render_table1(self, table1_result):
        text = render_table1([table1_result])
        assert "oahu" in text and "LC" in text and "spd-up" in text

    def test_render_table2(self, oahu_tiny_graph):
        rows = run_table2(
            "oahu",
            scale="tiny",
            num_queries=2,
            fractions=(0.0,),
            include_degree_rule=False,
            graph=oahu_tiny_graph,
        )
        text = render_table2(rows)
        assert "0.0%" in text and "prepro" in text
