"""Run the mypy clean-module allowlist (mypy.ini) when mypy is
available.

The dev container does not bake mypy in, so this skips locally unless
it is installed; the CI `static-analysis` job installs mypy and runs
the same configuration, making that job the authoritative gate.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed in this environment",
)
def test_mypy_allowlist_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"mypy allowlist regressed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_allowlist_covers_the_required_modules():
    """ISSUE 8 names repro.benchops, repro.store and
    repro.client.errors as the minimum allowlist — shrinking it is a
    regression even while mypy itself is absent locally."""
    config = (REPO_ROOT / "mypy.ini").read_text()
    for required in (
        "src/repro/benchops",
        "src/repro/store",
        "src/repro/client/errors.py",
    ):
        assert required in config, f"mypy.ini lost allowlist entry {required}"
