"""Pinning regression tests for the true positives `repro lint`
surfaced in PR 8.

LOCK-GUARD flagged two `WorkerSupervisor` methods touching
``_workers`` without ``_lock`` (``log_tail`` raced the monitor thread
during respawns; ``_await_ports`` snapshotted the list unlocked).
The lint rule pins the *pattern*; these tests pin the *behavior* —
the lock is genuinely acquired, and the methods still work.
"""

from __future__ import annotations

import threading

from repro.fleet.supervisor import WorkerSupervisor


class RecordingLock:
    """A real lock that counts acquisitions (context-manager use)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquisitions = 0

    def __enter__(self):
        self._lock.acquire()
        self.acquisitions += 1
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()

    def acquire(self, *a, **k):
        self.acquisitions += 1
        return self._lock.acquire(*a, **k)

    def release(self) -> None:
        self._lock.release()


def _supervisor(tmp_path, num_workers=2) -> WorkerSupervisor:
    return WorkerSupervisor(
        [str(tmp_path / "store")],
        num_workers=num_workers,
        runtime_dir=tmp_path / "runtime",
        spawn_timeout=2.0,
    )


class TestSupervisorLockDiscipline:
    def test_log_tail_takes_the_lock(self, tmp_path):
        sup = _supervisor(tmp_path)
        lock = RecordingLock()
        sup._lock = lock
        assert sup.log_tail("w0") == ""  # no log yet — still no crash
        assert lock.acquisitions == 1

    def test_log_tail_reads_outside_the_lock(self, tmp_path):
        """Tailing a (possibly large) log must not stall the monitor:
        the file read happens after the lock is released."""
        sup = _supervisor(tmp_path)
        (sup.runtime_dir / "w0.log").write_text("line1\nline2\nline3\n")
        lock = RecordingLock()
        sup._lock = lock
        tail = sup.log_tail("w0", lines=2)
        assert tail == "line2\nline3"
        # Lock free again: a second acquisition succeeds immediately.
        assert lock.acquire(blocking=False)
        lock.release()

    def test_log_tail_unknown_worker_raises(self, tmp_path):
        sup = _supervisor(tmp_path)
        try:
            sup.log_tail("w99")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unknown worker")

    def test_await_ports_snapshots_under_the_lock(self, tmp_path):
        sup = _supervisor(tmp_path)
        # Pre-write every port file so _await_ports returns immediately
        # (no processes were spawned).
        for worker in sup._workers:
            worker.port_file.write_text("4242")
        lock = RecordingLock()
        sup._lock = lock
        sup._await_ports()
        assert lock.acquisitions == 1

    def test_concurrent_log_tail_and_endpoints_do_not_race(self, tmp_path):
        """Both walk ``_workers`` under the lock now; hammering them
        from two threads must stay exception-free."""
        sup = _supervisor(tmp_path, num_workers=4)
        errors: list[BaseException] = []

        def hammer(fn):
            try:
                for _ in range(200):
                    fn()
            except BaseException as exc:  # noqa: BLE001 — test harness
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(lambda: sup.log_tail("w0"),)),
            threading.Thread(target=hammer, args=(sup.endpoints,)),
            threading.Thread(target=hammer, args=(sup.worker_pids,)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
