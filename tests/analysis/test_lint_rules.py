"""Per-rule coverage over the fixture mini-repos.

``fixtures/violations/`` mirrors the real repo layout with exactly
one seeded violation per rule (two for the rules with two modes) —
every rule must fire.  ``fixtures/nearmiss/`` holds the adjacent
*sanctioned* patterns — nothing may fire (false-positive guard).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import Project, default_config, run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
NEARMISS = FIXTURES / "nearmiss"

ALL_RULES = {
    "ASYNC-BLOCK",
    "LOCK-GUARD",
    "WIRE-PARITY",
    "METRIC-DRIFT",
    "EXPORT-SANITY",
}


def lint(root: Path, rules: list[str] | None = None):
    return run_lint(Project(root), default_config(), rules)


class TestViolationsFixture:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint(VIOLATIONS).findings

    def test_every_rule_fires(self, findings):
        assert {f.rule for f in findings} == ALL_RULES

    def test_async_block_reports_the_reachability_chain(self, findings):
        [f] = [f for f in findings if f.rule == "ASYNC-BLOCK"]
        assert f.path == "src/repro/server/app.py"
        assert f.symbol == "handle->time.sleep@_refresh_cache"
        assert "via `_refresh_cache`" in f.message

    def test_lock_guard_fires_on_unlocked_access_and_deferred_capture(
        self, findings
    ):
        symbols = {f.symbol for f in findings if f.rule == "LOCK-GUARD"}
        assert symbols == {"_entries@size", "requests_total@defer"}

    def test_wire_parity_fires_both_directions(self, findings):
        symbols = {f.symbol for f in findings if f.rule == "WIRE-PARITY"}
        assert symbols == {
            "encode_journey<->decode_journey:arrival:unread",
            "journey_body:via:rejected",
        }

    def test_metric_drift_fires_both_directions(self, findings):
        symbols = {f.symbol for f in findings if f.rule == "METRIC-DRIFT"}
        assert symbols == {"secret_total:undocumented", "ghost_total:unknown"}

    def test_export_sanity_fires_on_unbound_export(self, findings):
        [f] = [f for f in findings if f.rule == "EXPORT-SANITY"]
        assert f.symbol == "missing_symbol:unbound"

    def test_findings_carry_file_and_line(self, findings):
        for f in findings:
            assert f.line >= 1
            assert (VIOLATIONS / f.path).is_file()

    def test_rule_selection_runs_only_that_rule(self):
        report = lint(VIOLATIONS, ["ASYNC-BLOCK"])
        assert report.rules_run == ["ASYNC-BLOCK"]
        assert {f.rule for f in report.findings} == {"ASYNC-BLOCK"}


class TestNearMissFixture:
    def test_no_rule_fires(self):
        report = lint(NEARMISS)
        assert report.findings == []

    @pytest.mark.parametrize("rule", sorted(ALL_RULES))
    def test_each_rule_individually_clean(self, rule):
        assert lint(NEARMISS, [rule]).findings == []


class TestExportSanityEdgeCases:
    def test_duplicate_and_uncovered(self, tmp_path):
        mod = tmp_path / "src" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            '__all__ = ["f", "f"]\n\n\ndef f():\n    pass\n\n\n'
            "def public_helper():\n    pass\n"
        )
        report = lint(tmp_path, ["EXPORT-SANITY"])
        assert {f.symbol for f in report.findings} == {
            "f:duplicate",
            "public_helper:uncovered",
        }

    def test_computed_all_is_skipped(self, tmp_path):
        mod = tmp_path / "src" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("names = ['f']\n__all__ = list(names)\n")
        assert lint(tmp_path, ["EXPORT-SANITY"]).findings == []

    def test_underscore_defs_need_no_export(self, tmp_path):
        mod = tmp_path / "src" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text('__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\n'
                       "def _private():\n    pass\n")
        assert lint(tmp_path, ["EXPORT-SANITY"]).findings == []


class TestParseErrors:
    def test_unparsable_file_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "server" / "app.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = lint(tmp_path)
        assert [f.rule for f in report.findings] == ["PARSE-ERROR"]
        assert report.findings[0].path == "src/repro/server/app.py"
