"""Seeded LOCK-GUARD violation: a guarded attribute read unlocked."""

from threading import Lock


class Cache:
    def __init__(self) -> None:
        self._lock = Lock()
        self._entries: dict = {}  # guarded-by: _lock

    def size(self) -> int:
        return len(self._entries)  # LOCK-GUARD: no lock held

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
