"""Seeded METRIC-DRIFT and LOCK-GUARD(loop) violations."""


class Metrics:
    def __init__(self) -> None:
        self.requests_total = 0  # guarded-by: loop

    def defer(self, executor) -> None:
        # LOCK-GUARD: a loop-confined counter captured into a callable
        # that may run on an executor thread.
        executor.submit(lambda: self.requests_total + 1)

    def snapshot(self) -> dict:
        return {
            "requests_total": self.requests_total,
            "secret_total": 2,  # METRIC-DRIFT: not in docs/SERVER.md
        }
