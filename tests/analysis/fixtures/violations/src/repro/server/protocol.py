"""Seeded WIRE-PARITY violation: the encoder grew a field the client
decoder never learned to read."""

_JOURNEY_FIELDS = {"v", "source", "target", "departure"}


def encode_journey(result) -> dict:
    return {
        "v": 1,
        "kind": "journey",
        "source": result.source,
        "target": result.target,
        "arrival": result.arrival,  # WIRE-PARITY: decoder ignores this
    }
