"""Seeded ASYNC-BLOCK and EXPORT-SANITY violations.

This fixture mirrors the real repo layout so the *default* lint
config fires on it: the blocking call is reachable from a coroutine
through a sync helper, and ``__all__`` exports a name that is never
bound.
"""

import time

__all__ = ["handle", "missing_symbol"]


def _refresh_cache():
    time.sleep(0.1)  # ASYNC-BLOCK: reachable from `handle`


async def handle():
    _refresh_cache()
    return "ok"
