"""Seeded WIRE-PARITY request violation: the renderer sends a field
the server's allowed-field set would reject with a 400."""


def journey_body(source: int, target: int, departure: int, via: int) -> dict:
    return {
        "source": source,
        "target": target,
        "departure": departure,
        "via": via,  # WIRE-PARITY: not in _JOURNEY_FIELDS
    }
