"""Client decoder half of the seeded WIRE-PARITY violation."""


def decode_journey(payload: dict) -> dict:
    return {
        "source": payload["source"],
        "target": payload["target"],
    }
