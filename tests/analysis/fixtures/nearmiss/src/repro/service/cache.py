"""LOCK-GUARD near-misses: every access holds the annotated lock (or
is the declaring ``__init__``)."""

from threading import Lock


class Cache:
    def __init__(self) -> None:
        self._lock = Lock()
        self._entries: dict = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock

    def get(self, key):
        with self._lock:
            self._hits += 1
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
