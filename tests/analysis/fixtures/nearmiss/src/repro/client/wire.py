"""WIRE-PARITY request near-miss: a renderer that produces a strict
*subset* of the allowed fields is fine (optional fields may be
omitted)."""


def journey_body(source: int, target: int) -> dict:
    return {
        "source": source,
        "target": target,
    }
