"""Decoder half of the WIRE-PARITY near-miss: reads exactly what the
encoder produces (envelope keys are the lint config's business)."""


def decode_journey(payload: dict) -> dict:
    return {
        "source": payload["source"],
        "target": payload["target"],
        "arrival": payload.get("arrival"),
    }
