"""ASYNC-BLOCK near-misses: every sanctioned way to do blocking work
from a coroutine, none of which may fire.
"""

import asyncio
import time

__all__ = ["handle", "prefetch"]


def _blocking_refresh():
    # Blocking — but only ever *referenced* by `handle`, never called
    # from the loop: run_in_executor runs it on a worker thread.
    time.sleep(0.1)


async def handle():
    await asyncio.sleep(0.01)  # the asyncio equivalent is fine
    loop = asyncio.get_running_loop()
    # Bare callable reference: not a call made by the coroutine.
    await loop.run_in_executor(None, _blocking_refresh)
    # Bare stdlib reference: same.
    await loop.run_in_executor(None, time.sleep, 0.05)
    # Lambda bodies are deferred; the blocking call is the thread's.
    await loop.run_in_executor(None, lambda: time.sleep(0.05))
    return "ok"


async def prefetch(requests: dict) -> int:
    # A local mapping named `requests` is not the requests library.
    return requests.get("journey", 0)
