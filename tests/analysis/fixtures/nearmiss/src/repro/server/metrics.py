"""LOCK-GUARD(loop) near-miss: loop-confined counters mutated in
straight-line methods (the loop serialises them) — only *deferred*
captures are violations."""


class Metrics:
    def __init__(self) -> None:
        self.requests_total = 0  # guarded-by: loop

    def observe(self) -> None:
        self.requests_total += 1

    def snapshot(self) -> dict:
        return {"requests_total": self.requests_total}
