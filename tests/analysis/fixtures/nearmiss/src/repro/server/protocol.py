"""WIRE-PARITY near-miss: encoder and decoder agree exactly, modulo
the declared envelope keys (``v``/``kind``)."""

_JOURNEY_FIELDS = {"v", "source", "target", "departure"}


def encode_journey(result) -> dict:
    return {
        "v": 1,
        "kind": "journey",
        "source": result.source,
        "target": result.target,
        "arrival": result.arrival,
    }
