"""End-to-end integration: generate → serialize → graph → query stack.

Exercises the full pipeline the README advertises, across both network
families, asserting cross-layer consistency rather than per-module
behaviour (unit tests cover that).
"""

import numpy as np
import pytest

from repro import (
    StationToStationEngine,
    build_distance_table,
    build_td_graph,
    label_correcting_profile,
    load_gtfs,
    parallel_profile_search,
    save_gtfs,
    select_transfer_stations,
    time_query,
)


@pytest.mark.parametrize("instance_fixture", ["oahu_tiny", "germany_tiny"])
def test_full_pipeline(instance_fixture, tmp_path, request):
    timetable = request.getfixturevalue(instance_fixture)

    # 1. GTFS round trip preserves the network.
    feed_dir = tmp_path / "feed"
    save_gtfs(timetable, feed_dir)
    reloaded = load_gtfs(feed_dir)
    assert reloaded.num_connections == timetable.num_connections

    # 2. Graphs from both copies answer identically.
    graph = build_td_graph(timetable)
    graph2 = build_td_graph(reloaded)
    tq1 = time_query(graph, 0, 480)
    tq2 = time_query(graph2, 0, 480)
    for station in range(timetable.num_stations):
        assert tq1.arrival_at_station(station) == tq2.arrival_at_station(station)

    # 3. Parallel one-to-all == LC on a couple of sources.
    for source in (0, timetable.num_stations // 2):
        par = parallel_profile_search(graph, source, 4)
        lc = label_correcting_profile(graph, source)
        for station in range(timetable.num_stations):
            assert par.profile(station) == lc.profile(station, timetable.period)

    # 4. Accelerated station-to-station == plain profile.
    stations = select_transfer_stations(
        timetable, method="contraction", fraction=0.25
    )
    table = build_distance_table(graph, stations, num_threads=4)
    engine = StationToStationEngine(graph, table, num_threads=4)
    rng = np.random.default_rng(0)
    for _ in range(8):
        s, t = rng.integers(0, timetable.num_stations, 2)
        if s == t:
            continue
        truth = parallel_profile_search(graph, int(s), 4).profile(int(t))
        assert engine.query(int(s), int(t)).profile == truth


def test_public_api_surface():
    """Everything the README imports must be exposed at top level."""
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_runs():
    """The README quickstart, verbatim in spirit."""
    from repro import build_td_graph, make_instance, parallel_profile_search

    timetable = make_instance("oahu", scale="tiny")
    graph = build_td_graph(timetable)
    result = parallel_profile_search(graph, 0, num_threads=4)
    profile = result.profile(5)
    arrival = profile.earliest_arrival(8 * 60)
    assert arrival >= 8 * 60
