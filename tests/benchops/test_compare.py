"""The regression gate: direction inference, noise-band edges,
baseline selection, and the CLI exit codes CI relies on."""

from __future__ import annotations

import pytest

from repro.benchops import (
    BenchOpsError,
    compare_latest,
    compare_records,
    metric_direction,
)


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name", ["run_ms", "prepare_seconds", "p99_ms"]
    )
    def test_lower_is_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize(
        "name",
        ["rate_qps", "kernel_speedup", "queries_per_second", "cache_hit_rate"],
    )
    def test_higher_is_better(self, name):
        assert metric_direction(name) == +1

    @pytest.mark.parametrize(
        "name", ["settled", "mean_batch", "space_mib", "imbalance"]
    )
    def test_unknown_is_ungated(self, name):
        assert metric_direction(name) == 0


class TestCompareRecords:
    def test_identical_runs_pass(self, record_factory):
        a = record_factory(metrics={"run_ms": 10.0, "rate_qps": 50.0})
        b = record_factory(metrics={"run_ms": 10.0, "rate_qps": 50.0})
        report = compare_records(a, b)
        assert report.ok
        assert len(report.deltas) == 2

    def test_regression_beyond_band_fails_both_directions(
        self, record_factory
    ):
        base = record_factory(metrics={"run_ms": 100.0, "rate_qps": 100.0})
        slow = record_factory(metrics={"run_ms": 120.0, "rate_qps": 100.0})
        report = compare_records(base, slow)
        assert not report.ok
        assert [d.metric for d in report.regressions] == ["run_ms"]
        starved = record_factory(metrics={"run_ms": 100.0, "rate_qps": 80.0})
        report = compare_records(base, starved)
        assert [d.metric for d in report.regressions] == ["rate_qps"]

    def test_band_edges_are_inclusive(self, record_factory):
        """Exactly-at-the-band passes (the band is accepted noise);
        one part in a thousand beyond it fails."""
        base = record_factory(metrics={"run_ms": 1000.0})
        at_edge = record_factory(metrics={"run_ms": 1150.0})
        assert compare_records(base, at_edge, band=0.15).ok
        beyond = record_factory(metrics={"run_ms": 1151.0})
        assert not compare_records(base, beyond, band=0.15).ok
        # The good direction is never a regression, however far.
        much_faster = record_factory(metrics={"run_ms": 1.0})
        assert compare_records(base, much_faster, band=0.15).ok

    def test_improvements_never_fail(self, record_factory):
        base = record_factory(metrics={"run_ms": 100.0, "rate_qps": 10.0})
        better = record_factory(metrics={"run_ms": 10.0, "rate_qps": 100.0})
        assert compare_records(base, better).ok

    def test_per_metric_override_widens_and_skips(self, record_factory):
        base = record_factory(metrics={"run_ms": 100.0, "rate_qps": 100.0})
        cand = record_factory(metrics={"run_ms": 140.0, "rate_qps": 50.0})
        assert not compare_records(base, cand).ok
        report = compare_records(
            base, cand, overrides={"run_ms": 0.5, "rate_qps": None}
        )
        assert report.ok
        assert "rate_qps" in report.skipped

    def test_ungated_metrics_are_skipped(self, record_factory):
        base = record_factory(metrics={"run_ms": 10.0, "settled": 100.0})
        cand = record_factory(metrics={"run_ms": 10.0, "settled": 5000.0})
        report = compare_records(base, cand)
        assert report.ok
        assert report.skipped == ["settled"]

    def test_missing_gated_metric_fails(self, record_factory):
        base = record_factory(metrics={"run_ms": 10.0, "rate_qps": 50.0})
        cand = record_factory(metrics={"run_ms": 10.0})
        report = compare_records(base, cand)
        assert not report.ok
        assert report.missing == ["rate_qps"]

    def test_zero_baseline_is_skipped(self, record_factory):
        base = record_factory(metrics={"run_ms": 0.0})
        cand = record_factory(metrics={"run_ms": 5.0})
        report = compare_records(base, cand)
        assert report.ok
        assert report.skipped == ["run_ms"]

    def test_cross_benchmark_comparison_refused(self, record_factory):
        with pytest.raises(BenchOpsError, match="across benchmarks"):
            compare_records(record_factory("a"), record_factory("b"))

    def test_negative_band_refused(self, record_factory):
        with pytest.raises(BenchOpsError, match="non-negative"):
            compare_records(record_factory(), record_factory(), band=-0.1)


class TestCompareLatest:
    def test_gates_newest_against_previous(self, record_factory):
        history = [
            record_factory(metrics={"run_ms": 10.0}),
            record_factory(metrics={"run_ms": 10.5}),
            record_factory(metrics={"run_ms": 20.0}),
        ]
        report = compare_latest(history)
        assert not report.ok
        assert report.regressions[0].baseline == 10.5

    def test_no_history_no_gate(self, record_factory):
        assert compare_latest([]) is None
        assert compare_latest([record_factory()]) is None

    def test_baseline_must_match_scale_and_config(self, record_factory):
        """Entries from another scale or config never gate: a tiny CI
        run cannot 'regress' against a small-scale local run."""
        history = [
            record_factory(scale="small", metrics={"run_ms": 1.0}),
            record_factory(
                scale="tiny", metrics={"run_ms": 1.0}, config={"n": 99}
            ),
            record_factory(scale="tiny", metrics={"run_ms": 500.0}),
        ]
        assert compare_latest(history) is None  # nothing comparable

        history.append(record_factory(scale="tiny", metrics={"run_ms": 520.0}))
        report = compare_latest(history)
        assert report is not None and report.ok  # found the 500 ms baseline

    def test_explicit_candidate_gates_against_full_history(
        self, record_factory
    ):
        history = [record_factory(metrics={"run_ms": 10.0})]
        degraded = record_factory(metrics={"run_ms": 100.0})
        report = compare_latest(history, candidate=degraded)
        assert not report.ok


class TestCompareCLI:
    """The ``bench compare`` exit codes the CI gate depends on."""

    def _seed(self, tmp_path, record_factory, *metric_sets):
        from repro.benchops import append_record

        for metrics in metric_sets:
            append_record(tmp_path, record_factory(metrics=metrics))

    def test_exit_zero_on_identical_runs(self, tmp_path, record_factory):
        from repro.cli import main

        self._seed(
            tmp_path, record_factory, {"run_ms": 10.0}, {"run_ms": 10.0}
        )
        assert main(["bench", "compare", "--root", str(tmp_path)]) == 0

    def test_exit_one_on_regression(self, tmp_path, record_factory, capsys):
        from repro.cli import main

        self._seed(
            tmp_path, record_factory, {"run_ms": 10.0}, {"run_ms": 100.0}
        )
        assert main(["bench", "compare", "--root", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_candidate_file_gates_without_indexing(
        self, tmp_path, record_factory
    ):
        import json

        from repro.cli import main

        self._seed(tmp_path, record_factory, {"run_ms": 10.0})
        candidate = tmp_path / "candidate.json"
        candidate.write_text(
            json.dumps(record_factory(metrics={"run_ms": 100.0}).to_dict())
        )
        assert (
            main(
                [
                    "bench",
                    "compare",
                    "--root",
                    str(tmp_path),
                    "--candidate",
                    str(candidate),
                ]
            )
            == 1
        )
        # A wide band or a skip override lets the same candidate pass.
        assert (
            main(
                [
                    "bench",
                    "compare",
                    "--root",
                    str(tmp_path),
                    "--candidate",
                    str(candidate),
                    "--override",
                    "run_ms=skip",
                ]
            )
            == 0
        )
