"""Shared builders for the benchops suite."""

from __future__ import annotations

import pytest

from repro.benchops import BenchRecord


@pytest.fixture
def record_factory():
    """Build valid records with controlled metrics/config/scale.

    ``capture`` stamps real machine/git provenance, so everything a
    test varies is passed through; records built from the same config
    share a ``config_hash`` (comparable), different configs do not.
    """

    def build(
        benchmark: str = "demo_bench",
        *,
        scale: str = "tiny",
        metrics: dict | None = None,
        config: dict | None = None,
    ) -> BenchRecord:
        return BenchRecord.capture(
            benchmark,
            scale=scale,
            metrics=metrics or {"run_ms": 10.0, "rate_qps": 100.0},
            config=config if config is not None else {"n": 3},
        )

    return build
