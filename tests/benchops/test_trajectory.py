"""Trajectory indexing: append order, idempotent consumption, and the
corrupt-file refusals that keep ``BENCH_*.json`` trustworthy."""

from __future__ import annotations

import json

import pytest

from repro.benchops import (
    TrajectoryError,
    append_record,
    emit_record,
    index_records,
    load_trajectory,
    trajectory_names,
    trajectory_path,
)


class TestAppend:
    def test_append_creates_then_extends(self, tmp_path, record_factory):
        first = record_factory(metrics={"run_ms": 10.0})
        second = record_factory(metrics={"run_ms": 11.0})
        path = append_record(tmp_path, first)
        assert path == trajectory_path(tmp_path, "demo_bench")
        append_record(tmp_path, second)
        history = load_trajectory(path)
        assert [r.metrics["run_ms"] for r in history] == [10.0, 11.0]

    def test_trajectory_names(self, tmp_path, record_factory):
        append_record(tmp_path, record_factory("bench_a"))
        append_record(tmp_path, record_factory("bench_b"))
        assert trajectory_names(tmp_path) == ["bench_a", "bench_b"]


class TestIndexer:
    def test_indexes_pending_records_oldest_first(
        self, tmp_path, record_factory
    ):
        records_dir = tmp_path / "records"
        emit_record(record_factory(metrics={"run_ms": 1.0}), records_dir)
        emit_record(record_factory(metrics={"run_ms": 2.0}), records_dir)
        summary = index_records(records_dir, tmp_path)
        assert len(summary.indexed) == 2
        assert summary.rejected == []
        history = load_trajectory(trajectory_path(tmp_path, "demo_bench"))
        assert [r.metrics["run_ms"] for r in history] == [1.0, 2.0]
        # Consumed: a second run indexes nothing (idempotent).
        assert list(records_dir.glob("*.json")) == []
        again = index_records(records_dir, tmp_path)
        assert again.indexed == [] and again.rejected == []

    def test_keep_leaves_pending_files(self, tmp_path, record_factory):
        records_dir = tmp_path / "records"
        emit_record(record_factory(), records_dir)
        index_records(records_dir, tmp_path, consume=False)
        assert len(list(records_dir.glob("*.json"))) == 1

    def test_invalid_record_rejected_and_left_in_place(
        self, tmp_path, record_factory
    ):
        records_dir = tmp_path / "records"
        good = emit_record(record_factory(metrics={"run_ms": 1.0}), records_dir)
        bad = records_dir / "zz-bad.json"
        raw = json.loads(good.read_text())
        raw["metrics"] = {}
        bad.write_text(json.dumps(raw))
        summary = index_records(records_dir, tmp_path)
        assert len(summary.indexed) == 1
        assert len(summary.rejected) == 1
        assert summary.rejected[0][0] == bad
        assert "metrics" in summary.rejected[0][1]
        assert bad.exists()  # rejected files are never consumed

    def test_unreadable_record_rejected(self, tmp_path):
        records_dir = tmp_path / "records"
        records_dir.mkdir()
        (records_dir / "junk.json").write_text("{not json")
        summary = index_records(records_dir, tmp_path)
        assert summary.indexed == []
        assert "unreadable" in summary.rejected[0][1]


class TestCorruptTrajectories:
    """A corrupt trajectory is reported and refused — never silently
    replaced, truncated, or extended."""

    def _trajectory(self, tmp_path, record_factory):
        append_record(tmp_path, record_factory())
        return trajectory_path(tmp_path, "demo_bench")

    def test_refuses_invalid_json(self, tmp_path, record_factory):
        path = self._trajectory(tmp_path, record_factory)
        path.write_text("{broken")
        with pytest.raises(TrajectoryError, match="not valid JSON"):
            load_trajectory(path)
        with pytest.raises(TrajectoryError):
            append_record(tmp_path, record_factory())

    def test_refuses_wrong_benchmark_name(self, tmp_path, record_factory):
        path = self._trajectory(tmp_path, record_factory)
        raw = json.loads(path.read_text())
        raw["benchmark"] = "someone_else"
        path.write_text(json.dumps(raw))
        with pytest.raises(TrajectoryError, match="filename"):
            load_trajectory(path)

    def test_refuses_corrupt_entry_with_index(self, tmp_path, record_factory):
        append_record(tmp_path, record_factory())
        path = self._trajectory(tmp_path, record_factory)
        raw = json.loads(path.read_text())
        raw["entries"][1]["metrics"]["run_ms"] = "fast"
        path.write_text(json.dumps(raw))
        with pytest.raises(TrajectoryError, match="entry 1"):
            load_trajectory(path)

    def test_refuses_wrong_schema_version(self, tmp_path, record_factory):
        path = self._trajectory(tmp_path, record_factory)
        raw = json.loads(path.read_text())
        raw["schema_version"] = 0
        path.write_text(json.dumps(raw))
        with pytest.raises(TrajectoryError, match="schema_version"):
            load_trajectory(path)

    def test_indexer_leaves_record_pending_on_corrupt_trajectory(
        self, tmp_path, record_factory
    ):
        path = self._trajectory(tmp_path, record_factory)
        path.write_text("[]")  # an object is required
        records_dir = tmp_path / "records"
        pending = emit_record(record_factory(), records_dir)
        summary = index_records(records_dir, tmp_path)
        assert summary.indexed == []
        assert len(summary.rejected) == 1
        assert pending.exists()
        assert path.read_text() == "[]"  # untouched