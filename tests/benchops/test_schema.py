"""BenchRecord schema: capture, round-trip, and validation rejects."""

from __future__ import annotations

import pytest

from repro.benchops import (
    RECORD_SHAPES,
    BenchRecord,
    RecordError,
    emit_record,
    validate_record,
)
from repro.benchops.schema import MACHINE_KEYS, config_hash


def make_record() -> BenchRecord:
    return BenchRecord.capture(
        "demo_bench",
        scale="tiny",
        metrics={"run_ms": 12.5, "qps_qps": 80.0, "settled": 1234.0},
        config={"instance": "oahu", "n": 3},
    )


class TestCapture:
    def test_capture_stamps_provenance(self):
        record = make_record()
        assert record.scale == "tiny"
        for key in MACHINE_KEYS:
            assert key in record.machine
        assert record.machine["cpu_count"] >= 1
        assert record.created_unix > 0
        # This repo is a git work tree, so capture finds a commit.
        assert record.git_sha and len(record.git_sha) == 40
        assert record.config_hash == config_hash(record.config)

    def test_roundtrip_through_dict(self):
        record = make_record()
        again = validate_record(record.to_dict())
        assert again == record

    def test_metrics_coerced_to_float(self):
        record = BenchRecord.capture(
            "demo_bench", scale="tiny", metrics={"n_ms": 3}
        )
        assert record.metrics["n_ms"] == 3.0
        assert isinstance(record.metrics["n_ms"], float)


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(RecordError, match="expected an object"):
            validate_record([1, 2])

    def test_rejects_wrong_schema_version(self):
        raw = make_record().to_dict()
        raw["schema_version"] = 99
        with pytest.raises(RecordError, match="schema_version"):
            validate_record(raw)

    def test_rejects_bad_benchmark_name(self):
        raw = make_record().to_dict()
        raw["benchmark"] = "has spaces!"
        with pytest.raises(RecordError, match="benchmark"):
            validate_record(raw)

    def test_rejects_unknown_scale(self):
        raw = make_record().to_dict()
        raw["scale"] = "enormous"
        with pytest.raises(RecordError, match="scale"):
            validate_record(raw)

    def test_rejects_tampered_config(self):
        """config_hash pins config: editing one without the other is
        caught at validation (the hash keys baseline comparability)."""
        raw = make_record().to_dict()
        raw["config"]["n"] = 999
        with pytest.raises(RecordError, match="config_hash"):
            validate_record(raw)

    def test_rejects_empty_metrics(self):
        raw = make_record().to_dict()
        raw["metrics"] = {}
        with pytest.raises(RecordError, match="metrics"):
            validate_record(raw)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "12", True, None])
    def test_rejects_non_finite_or_non_numeric_metric(self, bad):
        raw = make_record().to_dict()
        raw["metrics"]["bad_ms"] = bad
        with pytest.raises(RecordError, match="bad_ms"):
            validate_record(raw)

    def test_rejects_missing_machine_key(self):
        raw = make_record().to_dict()
        del raw["machine"]["cpu_count"]
        with pytest.raises(RecordError, match="cpu_count"):
            validate_record(raw)


class TestRecordShapes:
    """Benchmarks registered in RECORD_SHAPES must carry their
    required metrics — a renamed metric would otherwise silently
    drop out of the regression gate, which only compares metrics
    present on both sides."""

    def _shaped_record(self) -> BenchRecord:
        benchmark, names = next(iter(RECORD_SHAPES.items()))
        return BenchRecord.capture(
            benchmark,
            scale="tiny",
            metrics={name: 1.0 for name in names},
        )

    def test_registry_is_non_empty_and_well_formed(self):
        assert RECORD_SHAPES
        for benchmark, names in RECORD_SHAPES.items():
            assert names, benchmark
            assert len(set(names)) == len(names), benchmark

    def test_full_shape_validates(self):
        record = self._shaped_record()
        assert validate_record(record.to_dict()) == record

    def test_extra_metrics_are_allowed(self):
        raw = self._shaped_record().to_dict()
        raw["metrics"]["extra_ms"] = 5.0
        assert validate_record(raw).metrics["extra_ms"] == 5.0

    def test_rejects_missing_required_metric(self):
        raw = self._shaped_record().to_dict()
        dropped = next(iter(RECORD_SHAPES[raw["benchmark"]]))
        del raw["metrics"][dropped]
        with pytest.raises(RecordError, match=dropped):
            validate_record(raw)

    def test_unregistered_benchmarks_are_shape_free(self):
        assert "demo_bench" not in RECORD_SHAPES
        assert validate_record(make_record().to_dict())


class TestEmit:
    def test_emit_writes_validatable_json(self, tmp_path):
        import json

        record = make_record()
        path = emit_record(record, tmp_path)
        assert path.parent == tmp_path
        assert validate_record(json.loads(path.read_text())) == record

    def test_emit_never_overwrites(self, tmp_path):
        record = make_record()
        first = emit_record(record, tmp_path)
        second = emit_record(record, tmp_path)
        assert first != second
        assert first.exists() and second.exists()
