"""The coordinated-swap satellite: delay posts against the gateway are
applied fleet-wide via two-phase prepare/commit.  Under interleaved
query traffic, every client answer must match either the pre-swap or
the post-swap oracle — never a mixture — and after the commit every
worker process must agree with the post-swap oracle, including a worker
that crashes and rejoins via delay-log catch-up."""

from __future__ import annotations

import json
import threading
import time

from repro.client import LocalBackend, connect
from repro.timetable.delays import Delay

from tests.client.test_transport_parity import scrubbed
from tests.fleet.harness import http_json

#: Station pairs probed before/during/after the swap.
PAIRS = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)]
DELAYS = [Delay(train=0, minutes=10), Delay(train=1, minutes=7)]
DELAY_BODY = {
    "delays": [
        {"train": 0, "minutes": 10},
        {"train": 1, "minutes": 7},
    ]
}


def canon(answer):
    """A comparable rendering of a client answer: wall clock zeroed
    (``scrubbed``) and per-call ``stats`` dropped entirely (cache hits
    differ between a warm oracle and a cold worker)."""

    def strip(obj):
        if isinstance(obj, dict):
            return {
                key: strip(value)
                for key, value in obj.items()
                if key != "stats"
            }
        if isinstance(obj, list):
            return [strip(item) for item in obj]
        return obj

    return strip(scrubbed(answer))


def _profiles(backend) -> dict:
    return {
        (s, t): canon(backend.profile(s, targets=[t])) for s, t in PAIRS
    }


class TestCoordinatedSwap:
    def test_fleet_swap_is_atomic_for_clients(
        self, make_fleet, twin_service
    ):
        fleet = make_fleet(3)

        # Oracles: the same store, before and after the delays.
        pre_backend = LocalBackend(twin_service, name="oahu")
        post_service = twin_service.apply_delays(DELAYS)
        post_backend = LocalBackend(post_service, name="oahu")
        pre = _profiles(pre_backend)
        post = _profiles(post_backend)
        # The delays must actually move at least one probed answer,
        # or "pre or post" would be vacuous.
        assert any(pre[p] != post[p] for p in PAIRS)

        # Closed-loop query traffic across the swap window: every
        # answer must be *exactly* pre or *exactly* post.
        mixed: list = []
        lock = threading.Lock()
        stop = threading.Event()

        def _client(slot: int) -> None:
            backend = connect(f"http://127.0.0.1:{fleet.port}")
            try:
                i = 0
                while not stop.is_set():
                    pair = PAIRS[(slot + i) % len(PAIRS)]
                    got = canon(backend.profile(pair[0], targets=[pair[1]]))
                    if got != pre[pair] and got != post[pair]:
                        with lock:
                            mixed.append((pair, got))
                    i += 1
            finally:
                backend.close()

        threads = [
            threading.Thread(target=_client, args=(slot,), daemon=True)
            for slot in range(4)
        ]
        for t in threads:
            t.start()
        try:
            time.sleep(0.3)
            status, update = fleet.request(
                "POST", "/v1/datasets/oahu/delays", DELAY_BODY,
                timeout=180,
            )
            assert status == 200, update
            assert update["generation"] == 1
            assert sorted(update["fleet"]["workers_committed"]) == [
                "w0", "w1", "w2",
            ]
            assert update["fleet"]["workers_failed"] == []
            time.sleep(0.3)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
        assert not mixed, f"answers matching neither oracle: {mixed[:3]}"

        # Post-commit: the gateway answers from the delayed timetable...
        gateway_backend = connect(f"http://127.0.0.1:{fleet.port}")
        try:
            assert _profiles(gateway_backend) == post
        finally:
            gateway_backend.close()

        # ...and all three workers agree with the post oracle — and
        # with each other byte-for-byte once per-call stats are
        # stripped (the payloads are otherwise deterministic).
        raw_by_worker: dict[str, list] = {}
        for name, port in sorted(fleet.worker_ports().items()):
            worker_backend = connect(f"http://127.0.0.1:{port}")
            try:
                assert _profiles(worker_backend) == post, name
            finally:
                worker_backend.close()
            payloads = []
            for s, t in PAIRS:
                _, raw = http_json(
                    port, "POST", "/v1/oahu/profile",
                    {"source": s, "targets": [t]},
                )
                payload = json.loads(raw)
                payload.pop("stats")
                payloads.append(payload)
            raw_by_worker[name] = payloads
        first = next(iter(raw_by_worker.values()))
        assert all(p == first for p in raw_by_worker.values())

        # Swap bookkeeping is visible fleet-wide.
        _, health = fleet.request("GET", "/healthz")
        assert health["generations"] == {"oahu": 1}
        _, metrics = fleet.request("GET", "/metrics")
        assert metrics["gateway"]["swaps_total"] == {"oahu": 1}

    def test_crashed_worker_catches_up_to_fleet_generation(
        self, make_fleet, twin_service
    ):
        """A worker that dies after a commit rejoins at the fleet's
        generation: the gateway replays the committed delay log before
        routing to it again."""
        fleet = make_fleet(2)
        post_service = twin_service.apply_delays(DELAYS)
        post_backend = LocalBackend(post_service, name="oahu")
        post = _profiles(post_backend)

        status, update = fleet.request(
            "POST", "/v1/datasets/oahu/delays", DELAY_BODY, timeout=180
        )
        assert status == 200 and update["generation"] == 1

        fleet.supervisor.kill("w1")
        fleet.wait_worker_down("w1", timeout=30)
        fleet.wait_worker_healthy("w1", timeout=120)

        # The respawned process warm-started from the *undelayed*
        # store; only the gateway's catch-up replay can explain it
        # answering from the delayed timetable.
        port = fleet.worker_ports()["w1"]
        worker_backend = connect(f"http://127.0.0.1:{port}")
        try:
            assert _profiles(worker_backend) == post
        finally:
            worker_backend.close()

        _, metrics = fleet.request("GET", "/metrics")
        assert metrics["gateway"]["catch_up_batches_total"] >= 1
        _, health = fleet.request("GET", "/healthz")
        assert health["generations"] == {"oahu": 1}
        assert all(
            w["generations"] == {"oahu": 1}
            for w in health["workers"].values()
        )

        # A second swap through the SDK advances the whole fleet.
        gateway_backend = connect(f"http://127.0.0.1:{fleet.port}")
        try:
            second = gateway_backend.apply_delays(
                [Delay(train=2, minutes=5)]
            )
        finally:
            gateway_backend.close()
        assert second.generation == 2
        _, health = fleet.request("GET", "/healthz")
        assert health["generations"] == {"oahu": 2}
