"""Catch-up coalescing: the per-dataset delay log collapses into a
bounded replay plan (``repro.fleet.catchup``), and a worker rejoining
after a long stream catches up in O(slack barriers + 1) posts with
generation accounting unchanged."""

from __future__ import annotations

import json

import pytest

from repro.client import connect
from repro.fleet.catchup import coalesce_delay_log
from repro.timetable.delays import Delay, apply_delays

from tests.fleet.test_swap_fleet import PAIRS, _profiles
from tests.helpers import toy_timetable


def _entry(delays, *, slack=0, replan=None) -> bytes:
    body: dict = {"delays": delays}
    if slack:
        body["slack_per_leg"] = slack
    if replan:
        body["replan"] = replan
    return json.dumps(body).encode()


class TestCoalescePlan:
    def test_slack_free_run_merges_into_one_post(self):
        entries = [
            _entry([{"train": 0, "minutes": 4}]),
            _entry([{"train": 0, "minutes": 6}, {"train": 1, "minutes": 2}]),
            _entry([{"train": 1, "minutes": 3, "from_stop": 1}]),
        ]
        plan = coalesce_delay_log(entries)
        assert len(plan) == 1
        body, represented = plan[0]
        assert represented == 3
        assert body["generations"] == 3
        assert body["delays"] == [
            {"train": 0, "minutes": 10},
            {"train": 1, "minutes": 2},
            {"train": 1, "minutes": 3, "from_stop": 1},
        ]

    def test_slack_entry_is_a_barrier(self):
        entries = [
            _entry([{"train": 0, "minutes": 1}]),
            _entry([{"train": 0, "minutes": 2}]),
            _entry([{"train": 1, "minutes": 9}], slack=3),
            _entry([{"train": 0, "minutes": 4}]),
            _entry([{"train": 1, "minutes": 5}]),
        ]
        plan = coalesce_delay_log(entries)
        assert [represented for _, represented in plan] == [2, 1, 2]
        assert plan[1][0]["slack_per_leg"] == 3
        assert sum(r for _, r in plan) == len(entries)

    def test_singleton_runs_pass_through_unchanged(self):
        entries = [_entry([{"train": 2, "minutes": 7}], replan="incremental")]
        plan = coalesce_delay_log(entries)
        assert plan == [({"delays": [{"train": 2, "minutes": 7}],
                          "replan": "incremental"}, 1)]
        assert "generations" not in plan[0][0]

    def test_replan_mode_is_conservative(self):
        incremental = [
            _entry([{"train": 0, "minutes": 1}], replan="incremental"),
            _entry([{"train": 1, "minutes": 1}], replan="incremental"),
        ]
        assert coalesce_delay_log(incremental)[0][0]["replan"] == "incremental"
        mixed = [
            _entry([{"train": 0, "minutes": 1}], replan="incremental"),
            _entry([{"train": 1, "minutes": 1}]),
        ]
        assert "replan" not in coalesce_delay_log(mixed)[0][0]

    def test_empty_log_empty_plan(self):
        assert coalesce_delay_log([]) == []

    def test_plan_replay_is_bitwise_equal_to_sequential(self):
        """The soundness claim itself: replaying the plan against a
        timetable yields the identical connections as replaying every
        logged batch one by one — including across a slack barrier."""
        entries = [
            _entry([{"train": 0, "minutes": 4}]),
            _entry([{"train": 0, "minutes": 6, "from_stop": 1}]),
            _entry([{"train": 0, "minutes": 5}], slack=3),
            _entry([{"train": 1, "minutes": 2}]),
            _entry([{"train": 1, "minutes": 8}]),
        ]

        def replay(tt, bodies):
            for body in bodies:
                tt = apply_delays(
                    tt,
                    [
                        Delay(
                            train=item["train"],
                            minutes=item["minutes"],
                            from_stop=item.get("from_stop", 0),
                        )
                        for item in body["delays"]
                    ],
                    slack_per_leg=body.get("slack_per_leg", 0),
                )
            return [
                (c.train, c.dep_time, c.arr_time) for c in tt.connections
            ]

        tt = toy_timetable()
        sequential = replay(tt, [json.loads(e) for e in entries])
        coalesced = replay(tt, [body for body, _ in coalesce_delay_log(entries)])
        assert coalesced == sequential


class TestLongStreamRejoin:
    #: ~25 committed batches with one slack barrier in the middle ⇒
    #: the missed log must coalesce to exactly 3 catch-up posts.
    NUM_BATCHES = 25
    BARRIER_AT = 12

    def _batch(self, i: int) -> dict:
        if i == self.BARRIER_AT:
            return {
                "delays": [{"train": 30, "minutes": 9}],
                "slack_per_leg": 2,
                "replan": "incremental",
            }
        return {
            "delays": [{"train": i % 20, "minutes": 1 + i % 4}],
            "replan": "incremental",
        }

    @pytest.mark.slow
    def test_worker_rejoins_long_stream_in_bounded_posts(
        self, make_fleet, twin_service
    ):
        fleet = make_fleet(2)

        oracle = twin_service
        for i in range(self.NUM_BATCHES):
            body = self._batch(i)
            status, update = fleet.request(
                "POST", "/v1/datasets/oahu/delays", body, timeout=180
            )
            assert status == 200, update
            assert update["generation"] == i + 1
            oracle = oracle.apply_delays(
                [
                    Delay(
                        train=item["train"],
                        minutes=item["minutes"],
                        from_stop=item.get("from_stop", 0),
                    )
                    for item in body["delays"]
                ],
                slack_per_leg=body.get("slack_per_leg", 0),
                mode="incremental",
            )

        _, metrics = fleet.request("GET", "/metrics")
        assert metrics["gateway"]["incremental_swaps_total"] == {
            "oahu": self.NUM_BATCHES
        }
        baseline_posts = metrics["gateway"]["catch_up_batches_total"]

        # Kill a worker: the respawn warm-starts from the pristine
        # store (generation 0) and must catch up through the whole
        # 25-batch stream before the gateway routes to it again.
        fleet.supervisor.kill("w1")
        fleet.wait_worker_down("w1", timeout=30)
        fleet.wait_worker_healthy("w1", timeout=120)

        from repro.client import LocalBackend

        post = _profiles(LocalBackend(oracle, name="oahu"))
        port = fleet.worker_ports()["w1"]
        worker_backend = connect(f"http://127.0.0.1:{port}")
        try:
            assert _profiles(worker_backend) == post
        finally:
            worker_backend.close()

        # Bounded replay: 12 slack-free + barrier + 12 slack-free ⇒ 3
        # posts standing for all 25 batches, generation unchanged.
        _, metrics = fleet.request("GET", "/metrics")
        assert (
            metrics["gateway"]["catch_up_batches_total"] - baseline_posts == 3
        )
        assert metrics["gateway"]["catch_up_coalesced_total"] >= self.NUM_BATCHES
        _, health = fleet.request("GET", "/healthz")
        assert health["generations"] == {"oahu": self.NUM_BATCHES}
        assert all(
            w["generations"] == {"oahu": self.NUM_BATCHES}
            for w in health["workers"].values()
        )
