"""Gateway end-to-end: routing, passthrough identity, load spreading,
fleet metrics, and protocol-error parity — against real worker
processes."""

from __future__ import annotations

import json

import pytest

from repro.client import LocalBackend, connect
from tests.client.test_transport_parity import scrubbed
from tests.fleet.harness import FleetHarness, http_json


@pytest.fixture(scope="module")
def fleet(fleet_store, tmp_path_factory):
    f = FleetHarness(
        [fleet_store], 2, runtime_dir=tmp_path_factory.mktemp("gw-e2e")
    )
    yield f
    f.close()


class TestGatewayBasics:
    def test_healthz(self, fleet):
        status, health = fleet.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok" and health["ready"] is True
        assert health["role"] == "gateway"
        assert health["datasets"] == ["oahu"]
        workers = health["workers"]
        assert sorted(workers) == ["w0", "w1"]
        assert all(w["state"] == "healthy" for w in workers.values())

    def test_all_three_query_shapes(self, fleet):
        status, journey = fleet.request(
            "POST", "/v1/oahu/journey",
            {"source": 0, "target": 5, "departure": 480},
        )
        assert status == 200 and journey["kind"] == "journey"
        status, profile = fleet.request(
            "POST", "/v1/oahu/profile", {"source": 1}
        )
        assert status == 200 and profile["kind"] == "profile"
        status, batch = fleet.request(
            "POST", "/v1/oahu/batch",
            {"journeys": [{"source": 2, "target": 7}]},
        )
        assert status == 200 and len(batch["journeys"]) == 1

    def test_datasets_listing_proxied(self, fleet):
        status, listing = fleet.request("GET", "/v1/datasets")
        assert status == 200
        assert [d["name"] for d in listing["datasets"]] == ["oahu"]

    def test_round_robin_spreads_load(self, fleet):
        for i in range(8):
            status, _ = fleet.request(
                "POST", "/v1/oahu/journey",
                {"source": i, "target": (i + 5) % 12},
            )
            assert status == 200
        _, metrics = fleet.request("GET", "/metrics")
        forwards = metrics["gateway"]["forwards_total"]
        assert forwards.get("w0", 0) > 0 and forwards.get("w1", 0) > 0

    def test_metrics_sections_and_fleet_aggregate(self, fleet):
        status, metrics = fleet.request("GET", "/metrics")
        assert status == 200
        assert set(metrics) >= {"v", "gateway", "workers", "fleet"}
        fleet_section = metrics["fleet"]
        assert fleet_section["workers_reporting"] == 2
        workers = metrics["workers"]
        total = sum(
            (snap or {}).get("requests_total", {}).get(
                "POST /v1/{name}/journey", 0
            )
            for snap in workers.values()
        )
        assert (
            fleet_section["requests_total"]["POST /v1/{name}/journey"]
            == total
        )


class TestProtocolParity:
    def test_unknown_dataset_is_the_workers_404(self, fleet):
        status, payload = fleet.request(
            "POST", "/v1/nope/journey", {"source": 0, "target": 1}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_dataset"

    def test_validation_errors_pass_through(self, fleet):
        status, payload = fleet.request(
            "POST", "/v1/oahu/journey", {"source": 10**9, "target": 1}
        )
        assert status == 400
        assert payload["error"]["code"] == "out_of_range"

    def test_gateway_owns_unknown_routes_and_methods(self, fleet):
        status, payload = fleet.request("GET", "/v1/oahu/journey")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, payload = fleet.request("POST", "/nope", {})
        assert status == 404
        assert payload["error"]["code"] == "unknown_route"

    def test_delay_body_validation_at_gateway(self, fleet):
        status, payload = fleet.request(
            "POST", "/v1/datasets/oahu/delays", None
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        # Two-phase modes are the gateway's own protocol with its
        # workers; clients must send plain applies.
        status, payload = fleet.request(
            "POST", "/v1/datasets/oahu/delays",
            {"mode": "commit", "token": 1},
        )
        assert status == 400
        assert "coordinates" in payload["error"]["message"]

    def test_sdk_answers_match_local_backend(self, fleet, twin_service):
        """The client SDK over the gateway behaves exactly like an
        in-process service from the same store (wall-clock scrubbed;
        fresh station pairs so every cache involved is cold)."""
        remote = connect(f"http://127.0.0.1:{fleet.port}")
        local = LocalBackend(twin_service, name="oahu")
        try:
            for call in (
                lambda b: b.journey(6, 1, departure=300),
                lambda b: b.profile(7, targets=[2, 3]),
                lambda b: b.batch([(8, 0), (9, 2)]),
            ):
                assert scrubbed(call(remote)) == scrubbed(call(local))
            # info(): identical modulo provenance — workers report the
            # store path, the in-process twin reports "memory".
            remote_info = scrubbed(remote.info())
            local_info = scrubbed(local.info())
            remote_info.pop("source"), local_info.pop("source")
            assert remote_info == local_info
        finally:
            remote.close()
            local.close()


class TestBitwisePassthrough:
    def test_gateway_bytes_equal_worker_bytes(
        self, fleet_store, tmp_path_factory
    ):
        """The acceptance bar: the gateway answer *is* the worker's
        answer — provable to the byte with a single worker once its
        result cache is warm (a cached journey/profile re-encodes
        identically, timings included).  Batch answers carry per-run
        wall clock at the top level, so the batch shape is compared
        with clock fields scrubbed — same passthrough code path."""
        fleet = FleetHarness(
            [fleet_store],
            1,
            runtime_dir=tmp_path_factory.mktemp("gw-bitwise"),
        )

        def _scrub_clock(obj):
            if isinstance(obj, dict):
                return {
                    key: 0.0
                    if key.endswith("_seconds")
                    else _scrub_clock(value)
                    for key, value in obj.items()
                }
            if isinstance(obj, list):
                return [_scrub_clock(item) for item in obj]
            return obj

        try:
            worker_port = fleet.worker_ports()["w0"]
            for path, body in (
                ("/v1/oahu/journey", {"source": 3, "target": 9}),
                ("/v1/oahu/profile", {"source": 4, "targets": [8, 9]}),
            ):
                # Warm the worker's result cache so re-answers are
                # deterministic to the byte.
                status, _ = http_json(worker_port, "POST", path, body)
                assert status == 200
                _, direct = http_json(worker_port, "POST", path, body)
                _, via_gateway = http_json(fleet.port, "POST", path, body)
                assert via_gateway == direct, path
                assert json.loads(via_gateway)["stats"]["cache_hit"] is True
            batch = {"journeys": [{"source": 5, "target": 11}]}
            status, _ = http_json(
                worker_port, "POST", "/v1/oahu/batch", batch
            )
            assert status == 200
            _, direct = http_json(worker_port, "POST", "/v1/oahu/batch", batch)
            _, via_gateway = http_json(fleet.port, "POST", "/v1/oahu/batch", batch)
            assert _scrub_clock(json.loads(via_gateway)) == _scrub_clock(
                json.loads(direct)
            )
        finally:
            fleet.close()
