"""WorkerSupervisor unit/integration tests: spawn, port discovery,
crash restart, fail-fast, teardown — no gateway involved."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.fleet import WorkerSupervisor


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _wait(predicate, timeout: float, message: str):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


@pytest.fixture()
def supervisor(fleet_store, tmp_path):
    sup = WorkerSupervisor(
        [fleet_store],
        2,
        runtime_dir=tmp_path / "rt",
        drain_grace=0.0,
        restart_backoff=0.1,
        stable_after=1.0,
        poll_interval=0.05,
    )
    sup.start()
    yield sup
    sup.stop()


class TestSpawn:
    def test_endpoints_and_port_files(self, supervisor):
        endpoints = supervisor.endpoints()
        assert sorted(endpoints) == ["w0", "w1"]
        ports = set()
        for name, url in endpoints.items():
            port = int(url.rsplit(":", 1)[1])
            ports.add(port)
            # The port file is the source of truth and must agree.
            on_disk = int(
                (supervisor.runtime_dir / f"{name}.port").read_text()
            )
            assert on_disk == port
        # Ephemeral binding: two workers can never collide.
        assert len(ports) == 2

    def test_fail_fast_on_bad_store(self, tmp_path):
        sup = WorkerSupervisor(
            [tmp_path / "no-such-store"], 1, runtime_dir=tmp_path / "rt"
        )
        with pytest.raises(RuntimeError, match="exited with code"):
            sup.start()
        sup.stop()  # idempotent even after a failed start


class TestRestart:
    def test_sigkill_respawns_under_same_name(self, supervisor):
        before = supervisor.endpoints()
        pid = supervisor.worker_pids()["w0"]
        supervisor.kill("w0", signal.SIGKILL)
        _wait(lambda: not _alive(pid), 10, "w0 to die")
        # The crashed worker drops out of endpoints() (its port file
        # is removed before respawn: the gateway must never route to
        # a stale address)...
        _wait(
            lambda: "w0" in supervisor.endpoints()
            and supervisor.worker_pids().get("w0") not in (None, pid),
            30,
            "w0 to respawn",
        )
        after = supervisor.endpoints()
        # ...and comes back under the same stable name.
        assert sorted(after) == sorted(before)
        assert supervisor.restarts_total == 1

    def test_repeated_crashes_keep_recovering(self, supervisor):
        for _ in range(2):
            pid = supervisor.worker_pids()["w1"]
            supervisor.kill("w1", signal.SIGKILL)
            _wait(
                lambda: supervisor.worker_pids().get("w1")
                not in (None, pid),
                30,
                "w1 to respawn",
            )
        assert supervisor.restarts_total >= 2


class TestStop:
    def test_stop_terminates_all_workers(self, fleet_store, tmp_path):
        sup = WorkerSupervisor(
            [fleet_store], 2, runtime_dir=tmp_path / "rt", drain_grace=0.0
        )
        sup.start()
        pids = list(sup.worker_pids().values())
        assert len(pids) == 2
        sup.stop()
        _wait(
            lambda: not any(_alive(pid) for pid in pids),
            15,
            "workers to exit",
        )
        sup.stop()  # idempotent
