"""The ``--port 0`` + ``--port-file`` satellite: ephemeral ports end
the port-collision race, and the atomically-written port file makes
the bound port machine-discoverable (the supervisor's mechanism),
tested here at the CLI boundary the supervisor actually uses."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _serve(store, port_file, *extra) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(store),
            "--port", "0",
            "--port-file", str(port_file),
            "--workers", "2",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )


def _await_port(port_file: Path, process, timeout: float = 90.0) -> int:
    deadline = time.monotonic() + timeout
    while True:
        if process.poll() is not None:
            out = process.stdout.read()
            raise AssertionError(
                f"serve exited early ({process.returncode}): {out[-800:]}"
            )
        try:
            # Atomic write: the file either does not exist or holds a
            # complete port — a partial read must be impossible.
            return int(port_file.read_text().strip())
        except (OSError, ValueError):
            pass
        if time.monotonic() > deadline:
            raise AssertionError("port file never appeared")
        time.sleep(0.05)


def _healthz(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


@pytest.fixture()
def serve_proc(fleet_store, tmp_path):
    procs = []

    def _spawn(*extra) -> tuple[subprocess.Popen, Path]:
        port_file = tmp_path / f"serve-{len(procs)}.port"
        proc = _serve(fleet_store, port_file, *extra)
        procs.append(proc)
        return proc, port_file

    yield _spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


class TestPortFile:
    def test_port_file_matches_bound_port(self, serve_proc):
        proc, port_file = serve_proc()
        port = _await_port(port_file, proc)
        assert port > 0
        health = _healthz(port)
        assert health["status"] == "ok" and health["datasets"] == ["oahu"]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        out = proc.stdout.read()
        # The human-readable log line and the machine-readable file
        # must name the same port.
        assert f"listening on http://127.0.0.1:{port}" in out

    def test_two_ephemeral_servers_never_collide(self, serve_proc):
        proc_a, file_a = serve_proc()
        proc_b, file_b = serve_proc()
        port_a = _await_port(file_a, proc_a)
        port_b = _await_port(file_b, proc_b)
        assert port_a != port_b
        assert _healthz(port_a)["status"] == "ok"
        assert _healthz(port_b)["status"] == "ok"
        for proc in (proc_a, proc_b):
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
