"""The failover satellite: SIGKILL a worker under closed-loop client
traffic and demand *zero* failed requests — the gateway must absorb
the crash (eject + retry-on-peer), report it in ``/metrics``, and
readmit the worker once the supervisor has respawned it."""

from __future__ import annotations

import threading

from tests.fleet.harness import http_json


class TestFailover:
    def test_sigkill_under_load_loses_no_requests(self, make_fleet):
        fleet = make_fleet(2)
        failures: list[tuple[int, bytes]] = []
        lock = threading.Lock()
        stop = threading.Event()
        counts = [0] * 8

        def _client(slot: int) -> None:
            i = 0
            while not stop.is_set():
                body = {
                    "source": (slot + i) % 12,
                    "target": (slot + i + 5) % 12,
                    "departure": 60 * (i % 18),
                }
                status, raw = http_json(
                    fleet.port, "POST", "/v1/oahu/journey", body
                )
                if status != 200:
                    with lock:
                        failures.append((status, raw[:400]))
                counts[slot] += 1
                i += 1

        threads = [
            threading.Thread(target=_client, args=(slot,), daemon=True)
            for slot in range(len(counts))
        ]
        for t in threads:
            t.start()
        try:
            # Let traffic establish on both workers, then pull the rug.
            deadline_wait = threading.Event()
            deadline_wait.wait(0.5)
            fleet.supervisor.kill("w0")
            # Keep the closed loop running across the crash window —
            # ejection, respawn, catch-up, readmission all happen
            # underneath live traffic.
            fleet.wait_worker_down("w0", timeout=30)
            fleet.wait_worker_healthy("w0", timeout=90)
            deadline_wait.wait(0.5)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)

        assert not failures, f"client-visible failures: {failures[:5]}"
        assert sum(counts) > 50, "closed loop barely ran"

        _, metrics = fleet.request("GET", "/metrics")
        gw = metrics["gateway"]
        # The crash was observed: w0 was ejected and later readmitted;
        # at least one in-flight request was retried on the peer.
        assert gw["ejections_total"].get("w0", 0) >= 1
        assert gw["readmissions_total"].get("w0", 0) >= 1
        assert gw["failovers_total"] >= 1
        assert fleet.supervisor.restarts_total >= 1

        # And the healed fleet serves from both workers again.
        before = dict(gw["forwards_total"])
        for i in range(8):
            status, _ = fleet.request(
                "POST", "/v1/oahu/journey",
                {"source": i, "target": (i + 3) % 12},
            )
            assert status == 200
        _, metrics = fleet.request("GET", "/metrics")
        after = metrics["gateway"]["forwards_total"]
        assert after.get("w0", 0) > before.get("w0", 0)
        assert after.get("w1", 0) > before.get("w1", 0)
