"""Fleet-test fixtures: one prepared store on disk (worker processes
warm-start from it) and harness factories."""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig, TransitService

from tests.fleet.harness import FleetHarness

#: Same recipe as the server suite: flat kernel + distance table, so
#: fleet answers exercise the pruned query paths — and so a direct
#: in-process twin service is bitwise-comparable to fleet answers.
FLEET_CONFIG = ServiceConfig(
    num_threads=2,
    use_distance_table=True,
    transfer_fraction=0.25,
)


@pytest.fixture(scope="session")
def fleet_store(tmp_path_factory, oahu_tiny):
    """One prepared ``oahu`` artifact store shared by every fleet (the
    whole point: N worker processes over the same store directory)."""
    store = tmp_path_factory.mktemp("fleet-stores") / "oahu"
    TransitService(oahu_tiny, FLEET_CONFIG).save(store)
    return store


@pytest.fixture(scope="session")
def twin_service(fleet_store):
    """An in-process service loaded from the same store the workers
    serve — the oracle for bitwise-identity assertions."""
    return TransitService.load(fleet_store)


@pytest.fixture()
def make_fleet(fleet_store, tmp_path):
    """Factory for fleets torn down at test end."""
    fleets: list[FleetHarness] = []

    def _make(num_workers: int = 2, **kwargs) -> FleetHarness:
        fleet = FleetHarness(
            [fleet_store],
            num_workers,
            runtime_dir=tmp_path / f"fleet-{len(fleets)}",
            **kwargs,
        )
        fleets.append(fleet)
        return fleet

    yield _make
    for fleet in fleets:
        fleet.close()
