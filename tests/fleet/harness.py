"""A real fleet — worker *processes* under a supervisor, gateway on a
background event-loop thread — driven synchronously over actual TCP.
The multi-process sibling of :class:`tests.server.harness.ServerHarness`."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.fleet import FleetGateway, WorkerSupervisor


def http_json(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    *,
    timeout: float = 30.0,
) -> tuple[int, bytes]:
    """One request on a fresh connection; raw response bytes (so tests
    can assert *bitwise* identity between gateway and worker)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = None if body is None else json.dumps(body)
        conn.request(method, path, body=data)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class FleetHarness:
    """Spawn workers + gateway; synchronous test access to both."""

    def __init__(
        self,
        stores,
        num_workers: int = 2,
        *,
        runtime_dir,
        supervisor_kwargs: dict | None = None,
        gateway_kwargs: dict | None = None,
    ) -> None:
        sup_kwargs = {
            "drain_grace": 0.0,
            "restart_backoff": 0.1,
            "stable_after": 2.0,
            "poll_interval": 0.05,
            **(supervisor_kwargs or {}),
        }
        self.supervisor = WorkerSupervisor(
            stores, num_workers, runtime_dir=runtime_dir, **sup_kwargs
        )
        self.supervisor.start()
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        gw_kwargs = {"health_interval": 0.1, **(gateway_kwargs or {})}
        try:
            self.gateway = FleetGateway(
                self.supervisor.endpoints, port=0, **gw_kwargs
            )
            self.submit(self.gateway.start()).result(timeout=30)
            self.submit(
                self.gateway.wait_ready(workers=num_workers)
            ).result(timeout=120)
        except BaseException:
            self.close()
            raise

    # -- access ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self.gateway.port

    def submit(self, coro):
        """Run a coroutine on the gateway's loop; returns the future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        timeout: float = 30.0,
    ) -> tuple[int, dict]:
        status, raw = http_json(
            self.port, method, path, body, timeout=timeout
        )
        return status, json.loads(raw)

    def worker_ports(self) -> dict[str, int]:
        return {
            name: int(url.rsplit(":", 1)[1])
            for name, url in self.supervisor.endpoints().items()
        }

    def wait_worker_down(self, name: str, *, timeout: float = 60.0) -> None:
        """Block until the gateway has taken ``name`` out of rotation
        (ejected, or dropped from the worker map after its port file
        vanished).  Call this after failure injection, *before*
        :meth:`wait_worker_healthy` — otherwise the health wait can
        race the ejection and observe the stale pre-crash state."""

        async def _wait() -> None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + timeout
            while True:
                st = self.gateway._workers.get(name)
                if st is None or st.state != "healthy":
                    return
                if loop.time() > deadline:
                    raise TimeoutError(
                        f"worker {name} still healthy after {timeout:g}s"
                    )
                await asyncio.sleep(0.02)

        self.submit(_wait()).result(timeout=timeout + 10)

    def wait_worker_healthy(
        self, name: str, *, timeout: float = 60.0
    ) -> None:
        """Block until the gateway routes to ``name`` again (used
        after failure injection to observe readmission)."""

        async def _wait() -> None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + timeout
            while True:
                st = self.gateway._workers.get(name)
                if st is not None and st.state == "healthy":
                    return
                if loop.time() > deadline:
                    state = st.state if st is not None else "absent"
                    raise TimeoutError(
                        f"worker {name} not healthy after {timeout:g}s "
                        f"(state: {state}, last_error: "
                        f"{getattr(st, 'last_error', None)})"
                    )
                await asyncio.sleep(0.02)

        self.submit(_wait()).result(timeout=timeout + 10)

    def close(self) -> None:
        try:
            if getattr(self, "gateway", None) is not None:
                self.submit(self.gateway.shutdown()).result(timeout=30)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10)
            self.loop.close()
            self.supervisor.stop()
