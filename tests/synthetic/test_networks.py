"""Unit tests for the bus/rail generators and named instances."""

import networkx as nx
import pytest

from repro.graph.station_graph import build_station_graph
from repro.synthetic.bus import BusNetworkConfig, generate_bus_network
from repro.synthetic.instances import (
    INSTANCE_NAMES,
    instance_config,
    is_rail,
    make_instance,
)
from repro.synthetic.rail import RailNetworkConfig, generate_rail_network
from repro.timetable.validation import validate_timetable


def _strongly_connected(timetable) -> bool:
    sg = build_station_graph(timetable)
    g = nx.DiGraph()
    g.add_nodes_from(range(timetable.num_stations))
    for s in range(timetable.num_stations):
        for t in sg.successors(s).tolist():
            g.add_edge(s, t)
    return nx.is_strongly_connected(g)


class TestBusGenerator:
    def test_valid_and_fifo(self):
        tt = generate_bus_network(BusNetworkConfig(seed=3))
        validate_timetable(tt, require_fifo=True)

    def test_every_station_served(self):
        tt = generate_bus_network(BusNetworkConfig(seed=1))
        served = set()
        for c in tt.connections:
            served.add(c.dep_station)
            served.add(c.arr_station)
        assert served == set(range(tt.num_stations))

    def test_strongly_connected(self):
        tt = generate_bus_network(BusNetworkConfig(seed=2))
        assert _strongly_connected(tt)

    def test_deterministic(self):
        a = generate_bus_network(BusNetworkConfig(seed=9))
        b = generate_bus_network(BusNetworkConfig(seed=9))
        assert a.connections == b.connections

    def test_seed_changes_network(self):
        a = generate_bus_network(BusNetworkConfig(seed=0))
        b = generate_bus_network(BusNetworkConfig(seed=1))
        assert a.connections != b.connections

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError, match="grid"):
            BusNetworkConfig(width=1, height=5)

    def test_rejects_bad_route_lengths(self):
        with pytest.raises(ValueError, match="route"):
            BusNetworkConfig(min_route_length=1)
        with pytest.raises(ValueError, match="route_length"):
            BusNetworkConfig(min_route_length=5, max_route_length=3)


class TestRailGenerator:
    def test_valid_and_fifo(self):
        tt = generate_rail_network(RailNetworkConfig(seed=3))
        validate_timetable(tt, require_fifo=True)

    def test_strongly_connected(self):
        tt = generate_rail_network(RailNetworkConfig(seed=5))
        assert _strongly_connected(tt)

    def test_station_count(self):
        config = RailNetworkConfig(num_hubs=5, satellites_per_hub=3, seed=0)
        tt = generate_rail_network(config)
        assert tt.num_stations == 5 * (1 + 3)

    def test_hub_degree_dominates(self):
        tt = generate_rail_network(RailNetworkConfig(seed=0))
        sg = build_station_graph(tt)
        hub_degrees = [
            sg.degree(s.id) for s in tt.stations if "hub-" in s.name
        ]
        sat_degrees = [
            sg.degree(s.id) for s in tt.stations if "sat-" in s.name
        ]
        assert max(sat_degrees) <= 2
        assert max(hub_degrees) > 2

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError, match="hubs"):
            RailNetworkConfig(num_hubs=1)
        with pytest.raises(ValueError, match="satellites"):
            RailNetworkConfig(satellites_per_hub=-1)
        with pytest.raises(ValueError, match="stops"):
            RailNetworkConfig(intercity_stops=(1, 3))


class TestInstances:
    @pytest.mark.parametrize("name", INSTANCE_NAMES)
    def test_all_instances_generate_valid(self, name):
        tt = make_instance(name, scale="tiny")
        validate_timetable(tt)
        assert _strongly_connected(tt)

    def test_density_contrast_bus_vs_rail(self):
        """The paper's defining shape: city feeds are far denser per
        station than railway feeds."""
        bus = make_instance("losangeles", scale="tiny")
        rail = make_instance("europe", scale="tiny")
        assert bus.connections_per_station() > 2 * rail.connections_per_station()

    def test_is_rail(self):
        assert is_rail("germany") and is_rail("europe")
        assert not is_rail("oahu")

    def test_unknown_instance(self):
        with pytest.raises(ValueError, match="unknown instance"):
            make_instance("atlantis")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            instance_config("oahu", scale="galactic")

    def test_scales_grow(self):
        tiny = make_instance("washington", scale="tiny")
        small = make_instance("washington", scale="small")
        assert small.num_stations > tiny.num_stations
        assert small.num_connections > tiny.num_connections

    def test_deterministic_in_seed(self):
        a = make_instance("germany", scale="tiny", seed=4)
        b = make_instance("germany", scale="tiny", seed=4)
        assert a.connections == b.connections
