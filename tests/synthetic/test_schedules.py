"""Unit tests for daily departure patterns."""

import random

import pytest

from repro.synthetic.schedules import (
    SchedulePattern,
    daily_departures,
    density_histogram,
)


class TestSchedulePattern:
    def test_headway_at_rush_hour(self):
        pattern = SchedulePattern(base_headway=20, rush_factor=4)
        assert pattern.headway_at(8 * 60) == 5  # inside 07:00–09:00
        assert pattern.headway_at(12 * 60) == 20

    def test_headway_never_below_one(self):
        pattern = SchedulePattern(base_headway=2, rush_factor=10)
        assert pattern.headway_at(8 * 60) == 1

    def test_rejects_bad_headway(self):
        with pytest.raises(ValueError, match="headway"):
            SchedulePattern(base_headway=0)

    def test_rejects_bad_rush_factor(self):
        with pytest.raises(ValueError, match="rush"):
            SchedulePattern(rush_factor=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            SchedulePattern(service_start=100, service_end=50)


class TestDailyDepartures:
    def test_deterministic_per_rng_state(self):
        pattern = SchedulePattern()
        a = daily_departures(pattern, random.Random(3))
        b = daily_departures(pattern, random.Random(3))
        assert a == b

    def test_sorted_unique_in_period(self):
        deps = daily_departures(SchedulePattern(), random.Random(1))
        assert deps == sorted(set(deps))
        assert all(0 <= d < 1440 for d in deps)

    def test_rush_hours_denser(self):
        pattern = SchedulePattern(base_headway=20, rush_factor=4, jitter=0)
        deps = daily_departures(pattern, random.Random(0))
        hist = density_histogram(deps)
        rush = hist[7] + hist[8]  # 07:00–09:00
        midday = hist[11] + hist[12]
        assert rush > 1.5 * midday

    def test_night_break_empty(self):
        pattern = SchedulePattern(jitter=0)
        deps = daily_departures(pattern, random.Random(0))
        hist = density_histogram(deps)
        # Service 05:00–25:00: buckets 2..4 (02:00–05:00) must be empty.
        assert hist[2] == hist[3] == hist[4] == 0

    def test_wraps_past_midnight(self):
        pattern = SchedulePattern(
            service_start=23 * 60, service_end=25 * 60, jitter=0
        )
        deps = daily_departures(pattern, random.Random(0))
        assert any(d < 60 for d in deps)  # 00:00–01:00 service present
        assert any(d >= 23 * 60 for d in deps)

    def test_offset_shifts_phase(self):
        pattern = SchedulePattern(jitter=0)
        a = daily_departures(pattern, random.Random(0), offset=0)
        b = daily_departures(pattern, random.Random(0), offset=7)
        assert a != b


def test_density_histogram_buckets():
    hist = density_histogram([0, 30, 60, 720], buckets=24)
    assert hist[0] == 2
    assert hist[1] == 1
    assert hist[12] == 1
    assert sum(hist) == 4
