"""Unit tests for query workload generation."""

import pytest

from repro.synthetic.workloads import random_sources, random_station_pairs
from repro.timetable.types import Timetable


class TestRandomSources:
    def test_count_and_range(self, toy):
        sources = random_sources(toy, 20, seed=1)
        assert len(sources) == 20
        assert all(0 <= s < toy.num_stations for s in sources)

    def test_deterministic(self, toy):
        assert random_sources(toy, 10, seed=2) == random_sources(toy, 10, seed=2)

    def test_seed_matters(self, toy):
        assert random_sources(toy, 10, seed=1) != random_sources(toy, 10, seed=99)

    def test_empty_timetable_rejected(self):
        empty = Timetable(stations=[], trains=[], connections=[])
        with pytest.raises(ValueError, match="station"):
            random_sources(empty, 1)


class TestRandomStationPairs:
    def test_distinct_endpoints(self, toy):
        pairs = random_station_pairs(toy, 30, seed=0)
        assert len(pairs) == 30
        assert all(s != t for s, t in pairs)

    def test_deterministic(self, toy):
        assert random_station_pairs(toy, 5, seed=3) == random_station_pairs(
            toy, 5, seed=3
        )

    def test_needs_two_stations(self):
        single = Timetable(
            stations=[__import__("repro.timetable.types", fromlist=["Station"]).Station(0, "x")],
            trains=[],
            connections=[],
        )
        with pytest.raises(ValueError, match="two stations"):
            random_station_pairs(single, 1)
