"""Artifact-store guarantees: save→load answers bitwise-identically to
an in-memory prepare, loads never build, and incompatible stores are
rejected loudly.

Three contracts:

1. **Round-trip equivalence** — for both kernels, with and without a
   distance table, on multiple seeded instances: a service loaded from
   a store answers all three query shapes (profile / journey / batch)
   bitwise-identically to the service that was saved.
2. **Warm means warm** — loading and querying runs *no* builder
   (graph build, packing, station graph, transfer selection, table
   build), asserted by monkeypatching every builder to raise.
3. **Versioning** — format-version and config-hash mismatches raise
   :class:`StoreError` instead of producing wrong answers, as do
   truncated or tampered files.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.service.prepare as prepare_mod
from repro.service import (
    BatchRequest,
    JourneyRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.store import (
    FORMAT_VERSION,
    CodecError,
    StoreError,
    config_hash,
    describe_store,
    load_dataset,
    read_record,
    save_dataset,
    write_record,
)
from repro.synthetic.workloads import random_station_pairs

from tests.helpers import random_line_timetable

KERNELS = ("python", "flat")


def assert_profiles_bitwise_equal(expected, got, context=""):
    assert got.period == expected.period, context
    assert np.array_equal(got.deps, expected.deps), context
    assert np.array_equal(got.arrs, expected.arrs), context


def _assert_same_answers(cold: TransitService, warm: TransitService, seed=13):
    """All three query shapes agree bitwise between two services."""
    timetable = cold.timetable
    pairs = random_station_pairs(timetable, 6, seed=seed) + [(0, 0)]
    for s, t in pairs:
        a, b = cold.journey(s, t), warm.journey(s, t)
        assert b.stats.classification == a.stats.classification, (s, t)
        assert_profiles_bitwise_equal(a.profile, b.profile, f"journey {s}->{t}")
    for source in sorted({s for s, _ in pairs})[:3]:
        a, b = cold.profile(source), warm.profile(source)
        assert (
            b.stats.settled_connections == a.stats.settled_connections
        ), source
        for target in range(timetable.num_stations):
            assert_profiles_bitwise_equal(
                a.profile(target), b.profile(target), f"profile {source}->{target}"
            )
    batch_request = BatchRequest(
        journeys=tuple(JourneyRequest(s, t) for s, t in pairs[:4]),
        profiles=(ProfileRequest(pairs[0][0]),),
    )
    a, b = cold.batch(batch_request), warm.batch(batch_request)
    for exp, got in zip(a.journeys, b.journeys):
        assert_profiles_bitwise_equal(exp.profile, got.profile, "batch journey")
    for exp, got in zip(a.profiles, b.profiles):
        assert np.array_equal(got.raw.merged.labels, exp.raw.merged.labels)


# ---------------------------------------------------------------------------
# Round-trip equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("with_table", (False, True), ids=["plain", "table"])
def test_roundtrip_bitwise_identical(tmp_path, oahu_tiny, kernel, with_table):
    config = ServiceConfig(
        kernel=kernel,
        num_threads=2,
        use_distance_table=with_table,
        transfer_fraction=0.3,
    )
    cold = TransitService(oahu_tiny, config)
    cold.save(tmp_path / "store")
    warm = TransitService.load(tmp_path / "store")
    assert warm.prepare_stats.loaded_from_store
    assert warm.config == config
    assert (warm.table is None) == (cold.table is None)
    _assert_same_answers(cold, warm)


@pytest.mark.parametrize("kernel", KERNELS)
def test_roundtrip_on_rail_and_random_instances(tmp_path, germany_tiny, kernel):
    for name, timetable in (
        ("germany", germany_tiny),
        ("random", random_line_timetable(77, num_stations=8, num_lines=5)),
    ):
        config = ServiceConfig(kernel=kernel, num_threads=2)
        cold = TransitService(timetable, config)
        cold.save(tmp_path / name)
        warm = TransitService.load(tmp_path / name)
        _assert_same_answers(cold, warm, seed=5)


def test_roundtrip_preserves_timetable_exactly(tmp_path, oahu_tiny):
    service = TransitService(oahu_tiny, ServiceConfig())
    service.save(tmp_path / "store")
    loaded = TransitService.load(tmp_path / "store").timetable
    assert loaded.name == oahu_tiny.name
    assert loaded.period == oahu_tiny.period
    assert loaded.stations == oahu_tiny.stations
    assert loaded.trains == oahu_tiny.trains
    assert loaded.connections == oahu_tiny.connections


def test_loaded_service_supports_delay_replanning(tmp_path, oahu_tiny):
    """apply_delays on a warm-started service matches a cold service on
    the delayed timetable (the store carries everything replanning
    shares: station graph and transfer selection)."""
    from repro.timetable.delays import Delay, apply_delays

    config = ServiceConfig(
        kernel="flat", use_distance_table=True, transfer_fraction=0.3
    )
    TransitService(oahu_tiny, config).save(tmp_path / "store")
    warm = TransitService.load(tmp_path / "store")
    delays = [Delay(train=1, minutes=20)]
    replanned = warm.apply_delays(delays)
    assert replanned.prepare_stats.shared_station_graph
    reference = TransitService(apply_delays(oahu_tiny, delays), config)
    for s, t in random_station_pairs(oahu_tiny, 4, seed=3):
        assert_profiles_bitwise_equal(
            reference.journey(s, t).profile,
            replanned.journey(s, t).profile,
            f"delayed {s}->{t}",
        )


# ---------------------------------------------------------------------------
# Warm means warm: no builder runs on load or on loaded-service queries
# ---------------------------------------------------------------------------


def test_load_and_query_run_no_builder(tmp_path, oahu_tiny, monkeypatch):
    config = ServiceConfig(
        kernel="flat",
        num_threads=2,
        use_distance_table=True,
        transfer_fraction=0.3,
    )
    TransitService(oahu_tiny, config).save(tmp_path / "store")

    def forbidden(name):
        def _raise(*args, **kwargs):  # pragma: no cover - exercised on failure
            raise AssertionError(f"warm start must not call {name}")

        return _raise

    # Every builder the prepare pipeline (or an engine fallback) could
    # reach: if the load path or a loaded-service query touches one,
    # the store is not a warm start.
    for target in (
        "repro.service.prepare.build_td_graph",
        "repro.service.prepare.build_station_graph",
        "repro.service.prepare.build_distance_table",
        "repro.service.prepare.select_transfer_stations",
        "repro.service.prepare.packed_arrays",
        "repro.graph.td_arrays.pack_td_graph",
        "repro.store.store.pack_td_graph",
        "repro.query.table_query.build_station_graph",
        "repro.query.table_query.packed_arrays",
        "repro.core.parallel.packed_arrays",
    ):
        monkeypatch.setattr(target, forbidden(target))

    warm = TransitService.load(tmp_path / "store")
    assert warm.prepare_stats.loaded_from_store
    assert warm.prepare_stats.station_graph_seconds == 0.0
    assert warm.prepare_stats.pack_seconds == 0.0
    assert warm.prepare_stats.table_seconds == 0.0
    # All three query shapes work on the warm service.
    warm.profile(0)
    warm.journey(0, 5)
    warm.journey(2, 7, departure=8 * 60)
    warm.batch([(0, 5), (1, 6)])
    warm.batch(BatchRequest.from_sources([0, 3]))


def test_python_kernel_load_keeps_arrays_off(tmp_path, oahu_tiny):
    """A python-kernel store hydrates the object graph from the packed
    buffers but the loaded dataset exposes arrays=None, exactly like a
    cold python-kernel prepare."""
    TransitService(oahu_tiny, ServiceConfig(kernel="python")).save(
        tmp_path / "store"
    )
    warm = TransitService.load(tmp_path / "store")
    assert warm.prepared.arrays is None
    assert warm.prepare_stats.packed_bytes == 0
    warm.journey(0, 5)


# ---------------------------------------------------------------------------
# Versioning and rejection
# ---------------------------------------------------------------------------


@pytest.fixture()
def small_store(tmp_path, oahu_tiny):
    path = tmp_path / "store"
    TransitService(oahu_tiny, ServiceConfig(num_threads=2)).save(path)
    return path


def test_format_version_mismatch_rejected(small_store):
    manifest_path = small_store / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="format version"):
        TransitService.load(small_store)


def test_config_hash_mismatch_rejected(small_store):
    """Editing the manifest's config without its hash is tampering."""
    manifest_path = small_store / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["config"]["num_threads"] = 8
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="hash mismatch"):
        TransitService.load(small_store)


def test_expected_config_mismatch_rejected(small_store):
    # A different preparation recipe (table on) is a mismatch ...
    with pytest.raises(StoreError, match="different config"):
        TransitService.load(
            small_store,
            config=ServiceConfig(
                use_distance_table=True, transfer_fraction=0.3
            ),
        )
    with pytest.raises(StoreError, match="different config"):
        TransitService.load(small_store, config=ServiceConfig(kernel="python"))
    # ... the stored config is accepted, as is one differing only in
    # runtime fields (same artifacts fit both).
    TransitService.load(small_store, config=ServiceConfig(num_threads=2))
    TransitService.load(
        small_store, config=ServiceConfig(num_threads=7, backend="threads")
    )


def test_missing_store_rejected(tmp_path):
    with pytest.raises(StoreError, match="manifest"):
        TransitService.load(tmp_path / "nowhere")


def test_invalid_manifest_config_rejected(small_store):
    manifest_path = small_store / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["config"]["kernel"] = "gpu"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="invalid"):
        TransitService.load(small_store)


def test_truncated_dataset_rejected(small_store):
    dataset = small_store / "dataset.bin"
    dataset.write_bytes(dataset.read_bytes()[:-40])
    with pytest.raises(StoreError, match="truncated"):
        TransitService.load(small_store)


def test_missing_buffer_rejected(small_store):
    (small_store / "arrays" / "edge_target.npy").unlink()
    with pytest.raises(StoreError, match="edge_target"):
        TransitService.load(small_store)


def test_config_hash_is_field_sensitive():
    base = ServiceConfig()
    assert config_hash(base) == config_hash(ServiceConfig(num_threads=1))
    assert config_hash(base) != config_hash(ServiceConfig(num_threads=2))


def test_prepare_config_hash_ignores_runtime_fields():
    from repro.store import prepare_config_hash

    base = ServiceConfig()
    runtime_twin = ServiceConfig(
        num_threads=8, backend="threads", workers=2, result_cache_size=0
    )
    assert prepare_config_hash(base) == prepare_config_hash(runtime_twin)
    assert prepare_config_hash(base) != prepare_config_hash(
        ServiceConfig(use_distance_table=True)
    )
    assert prepare_config_hash(base) != prepare_config_hash(
        ServiceConfig(kernel="python")
    )


def test_describe_store_reports_sizes(small_store):
    info = describe_store(small_store)
    assert info["format_version"] == FORMAT_VERSION
    assert info["counts"]["stations"] > 0
    assert info["total_bytes"] > 0
    assert info["sizes_bytes"]["arrays"] > 0


def test_save_then_save_without_table_drops_stale_table(
    tmp_path, oahu_tiny
):
    path = tmp_path / "store"
    with_table = ServiceConfig(
        use_distance_table=True, transfer_fraction=0.3
    )
    TransitService(oahu_tiny, with_table).save(path)
    assert (path / "table.npz").exists()
    TransitService(oahu_tiny, ServiceConfig()).save(path)
    assert not (path / "table.npz").exists()
    assert TransitService.load(path).table is None


def test_truncated_buffer_rejected(small_store):
    """A corrupt .npy surfaces as StoreError, not a raw numpy error
    (the module's error contract)."""
    buffer = small_store / "arrays" / "edge_weight.npy"
    buffer.write_bytes(buffer.read_bytes()[:-64])
    with pytest.raises(StoreError, match="corrupt buffer"):
        TransitService.load(small_store)


def test_describe_incomplete_store_rejected(small_store):
    (small_store / "dataset.bin").unlink()
    with pytest.raises(StoreError, match="incomplete"):
        describe_store(small_store)


def test_runtime_overridden_service_saves_its_own_config(
    tmp_path, oahu_tiny
):
    """save() records the service's current config, so a service built
    via with_runtime_overrides round-trips against itself — and since
    runtime overrides never change the preparation recipe, the
    pre-override config matches too."""
    base = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
    tuned = base.with_runtime_overrides(num_threads=8, backend="threads")
    tuned.save(tmp_path / "store")
    warm = TransitService.load(tmp_path / "store", config=tuned.config)
    assert warm.config.num_threads == 8
    assert warm.config.backend == "threads"
    TransitService.load(tmp_path / "store", config=base.config)


def test_crashed_resave_never_masquerades_as_complete(
    small_store, oahu_tiny, monkeypatch
):
    """A save crashing over an existing store must leave a directory
    that refuses to load (old manifest removed first, new one written
    last) — not a mixed-generation store serving stale artifacts."""
    import repro.store.store as store_mod

    def crash(*args, **kwargs):
        raise RuntimeError("disk full")

    monkeypatch.setattr(store_mod, "write_record", crash)
    with pytest.raises(RuntimeError, match="disk full"):
        TransitService(oahu_tiny, ServiceConfig()).save(small_store)
    monkeypatch.undo()
    with pytest.raises(StoreError, match="manifest"):
        TransitService.load(small_store)


def test_sigterm_mid_save_leaves_no_partial_manifest(tmp_path):
    """The signal path of the crash-safety contract: SIGTERM landing
    mid-save (here: right before dataset.bin is written) must unwind
    the CLI cleanly — exit 130, an 'interrupted' notice, and a store
    directory with *no* manifest, which therefore refuses to load."""
    import os
    import subprocess
    import sys
    import textwrap
    from pathlib import Path

    store = tmp_path / "store"
    script = textwrap.dedent(
        """
        import os, signal, sys
        import repro.store.store as store_mod

        real = store_mod.write_record

        def signal_then_write(*args, **kwargs):
            os.kill(os.getpid(), signal.SIGTERM)
            # The CLI's handler raises at the next bytecode boundary,
            # i.e. inside the save, exactly mid-way through the store.
            return real(*args, **kwargs)

        store_mod.write_record = signal_then_write
        from repro.cli import main

        sys.exit(
            main(
                [
                    "prepare", "--instance", "oahu", "--scale", "tiny",
                    "--store", sys.argv[1],
                ]
            )
        )
        """
    )
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(store)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 130, proc.stderr
    assert "interrupted" in proc.stderr
    # The save got underway (artifacts exist) but never reached the
    # manifest — and without one, the store refuses to load.
    assert store.exists()
    assert not (store / "manifest.json").exists()
    assert not (store / "manifest.json.tmp").exists()
    with pytest.raises(StoreError, match="manifest"):
        load_dataset(store)


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------


class TestCodec:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "record.bin"
        sections = {
            "numbers": np.arange(10, dtype=np.int64) * -3,
            "empty": np.zeros(0, dtype=np.int64),
            "names": ["alpha", "", "ünïcode ✓", "d"],
            "no_names": [],
        }
        write_record(path, sections)
        loaded = read_record(path)
        assert set(loaded) == set(sections)
        assert np.array_equal(loaded["numbers"], sections["numbers"])
        assert loaded["empty"].size == 0
        assert loaded["names"] == sections["names"]
        assert loaded["no_names"] == []

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTASTORE")
        with pytest.raises(CodecError, match="magic"):
            read_record(path)

    def test_truncation_rejected(self, tmp_path):
        path = tmp_path / "record.bin"
        write_record(path, {"xs": np.arange(100, dtype=np.int64)})
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(CodecError, match="truncated"):
            read_record(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        path = tmp_path / "record.bin"
        write_record(path, {"xs": np.arange(4, dtype=np.int64)})
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(CodecError, match="trailing"):
            read_record(path)

    def test_non_1d_rejected(self, tmp_path):
        with pytest.raises(CodecError, match="1-D"):
            write_record(
                tmp_path / "x.bin", {"m": np.zeros((2, 2), dtype=np.int64)}
            )
