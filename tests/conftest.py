"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.graph.td_model import build_td_graph
from repro.synthetic.instances import make_instance

from tests.helpers import toy_timetable


@pytest.fixture(scope="session")
def toy():
    """The hand-checkable 4-station network (see tests.helpers)."""
    return toy_timetable()


@pytest.fixture(scope="session")
def toy_graph(toy):
    return build_td_graph(toy)


@pytest.fixture(scope="session")
def oahu_tiny():
    """Small dense bus instance shared across integration tests."""
    return make_instance("oahu", scale="tiny")


@pytest.fixture(scope="session")
def oahu_tiny_graph(oahu_tiny):
    return build_td_graph(oahu_tiny)


@pytest.fixture(scope="session")
def germany_tiny():
    """Small sparse rail instance."""
    return make_instance("germany", scale="tiny")


@pytest.fixture(scope="session")
def germany_tiny_graph(germany_tiny):
    return build_td_graph(germany_tiny)
