"""Unit tests for the realistic time-dependent model (paper §2, Fig. 1)."""

import pytest

from repro.functions.piecewise import TravelTimeFunction
from repro.graph.td_model import Edge, build_td_graph
from repro.timetable.builder import TimetableBuilder


@pytest.fixture()
def two_station_graph():
    """Fig. 1's shape: two stations, two routes through them."""
    builder = TimetableBuilder(name="fig1")
    s1 = builder.add_station("S1", transfer_time=3)
    s2 = builder.add_station("S2", transfer_time=4)
    # Route A (two trains, same sequence S1→S2).
    builder.add_trip([(s1, 100), (s2, 130)], name="Z1")
    builder.add_trip([(s1, 200), (s2, 230)], name="Z2")
    # Route B (opposite direction).
    builder.add_trip([(s2, 150), (s1, 180)], name="Z3")
    return build_td_graph(builder.build())


class TestStructure:
    def test_node_counts(self, two_station_graph):
        g = two_station_graph
        # 2 stations + 2 route nodes per route × 2 routes.
        assert g.num_stations == 2
        assert g.num_route_nodes == 4
        assert g.num_nodes == 6
        assert len(g.routes) == 2

    def test_trains_partition_into_routes(self, two_station_graph):
        routes = {r.stations: r.trains for r in two_station_graph.routes}
        assert routes[(0, 1)] == (0, 1)  # Z1, Z2 share the sequence
        assert routes[(1, 0)] == (2,)

    def test_station_nodes_first(self, two_station_graph):
        g = two_station_graph
        assert g.is_station_node(0) and g.is_station_node(1)
        assert not g.is_station_node(2)

    def test_node_station_mapping(self, two_station_graph):
        g = two_station_graph
        for (route_id, pos), node in g.route_node_ids.items():
            assert g.station_of(node) == g.routes[route_id].stations[pos]

    def test_boarding_edge_costs_transfer_time(self, two_station_graph):
        g = two_station_graph
        for edge in g.adjacency[0]:  # S1 station node
            assert edge.ttf is None
            assert edge.weight == 3  # T(S1)

    def test_boarding_only_where_route_departs(self, two_station_graph):
        g = two_station_graph
        # S1 boards route A at pos 0 and route B at pos 1 — but route B's
        # pos 1 is its terminus: no departing leg, so no boarding edge.
        boarding_targets = {e.target for e in g.adjacency[0]}
        route_a_start = g.route_node_ids[(0, 0)]
        assert boarding_targets == {route_a_start}

    def test_alighting_edges_zero_cost(self, two_station_graph):
        g = two_station_graph
        route_a_end = g.route_node_ids[(0, 1)]
        edges = g.adjacency[route_a_end]
        alight = [e for e in edges if e.ttf is None]
        assert len(alight) == 1
        assert alight[0].target == 1 and alight[0].weight == 0

    def test_route_edge_carries_connections(self, two_station_graph):
        g = two_station_graph
        route_a_start = g.route_node_ids[(0, 0)]
        td_edges = [e for e in g.adjacency[route_a_start] if e.ttf is not None]
        assert len(td_edges) == 1
        assert td_edges[0].ttf.connection_points() == [(100, 30), (200, 30)]

    def test_num_edges(self, two_station_graph):
        # Boarding: S1→A0, S2→B0.  Alight: A1→S2, B1→S1.  Route: A0→A1, B0→B1.
        assert two_station_graph.num_edges == 6


class TestSourceRouteNode:
    def test_maps_connections_to_start_nodes(self, two_station_graph):
        g = two_station_graph
        conns = g.timetable.outgoing_connections(0)
        for c in conns:
            node = g.source_route_node(c)
            assert g.station_of(node) == 0
            assert not g.is_station_node(node)

    def test_unknown_connection_rejected(self, two_station_graph):
        from repro.timetable.types import Connection

        foreign = Connection(
            train=0, dep_station=0, arr_station=1, dep_time=999, arr_time=1000
        )
        with pytest.raises(KeyError, match="not part of"):
            two_station_graph.source_route_node(foreign)


class TestEdge:
    def test_constant_edge_arrival(self):
        edge = Edge(target=1, weight=5, ttf=None)
        assert edge.arrival(100) == 105

    def test_td_edge_arrival(self):
        ttf = TravelTimeFunction([100], [30])
        edge = Edge(target=1, weight=0, ttf=ttf)
        assert edge.arrival(90) == 130


class TestDescribeNode:
    def test_station_node(self, two_station_graph):
        assert "S1" in two_station_graph.describe_node(0)

    def test_route_node(self, two_station_graph):
        text = two_station_graph.describe_node(2)
        assert "route node" in text


def test_instance_graph_consistency(oahu_tiny_graph):
    g = oahu_tiny_graph
    # Every adjacency target in range; st() consistent.
    for u, edges in enumerate(g.adjacency):
        for edge in edges:
            assert 0 <= edge.target < g.num_nodes
            if edge.ttf is None and g.is_station_node(u):
                # Boarding edges go to route nodes of the same station.
                assert g.station_of(edge.target) == u
