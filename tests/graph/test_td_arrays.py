"""Unit tests for the packed flat-array graph (td_arrays)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.functions.piecewise import INF_TIME
from repro.graph.td_arrays import pack_td_graph, packed_arrays
from repro.graph.td_model import build_td_graph


@pytest.fixture(scope="module")
def packed(toy_graph):
    return pack_td_graph(toy_graph)


class TestPackTdGraph:
    def test_shapes_match_graph(self, toy_graph, packed):
        assert packed.num_nodes == toy_graph.num_nodes
        assert packed.num_stations == toy_graph.num_stations
        assert packed.period == toy_graph.timetable.period
        assert packed.num_edges == toy_graph.num_edges
        assert packed.edge_indptr.shape == (toy_graph.num_nodes + 1,)
        assert packed.node_station.tolist() == list(toy_graph.node_station)

    def test_edge_order_matches_adjacency(self, toy_graph, packed):
        """The kernel relaxes in graph.adjacency order; packing must
        preserve it (targets, constant weights, ttf point sets)."""
        e = 0
        for u, edges in enumerate(toy_graph.adjacency):
            assert packed.edge_indptr[u] == e
            for edge in edges:
                assert packed.edge_target[e] == edge.target
                if edge.ttf is None:
                    assert packed.edge_ttf[e] == -1
                    assert packed.edge_weight[e] == edge.weight
                else:
                    fid = int(packed.edge_ttf[e])
                    lo, hi = packed.ttf_indptr[fid], packed.ttf_indptr[fid + 1]
                    assert packed.ttf_dep[lo:hi].tolist() == list(edge.ttf.deps)
                    assert packed.ttf_dur[lo:hi].tolist() == list(edge.ttf.durs)
                    assert bool(packed.ttf_fifo[fid]) == edge.ttf.is_fifo()
                e += 1
        assert packed.edge_indptr[-1] == e

    def test_connection_csr_matches_timetable(self, toy, toy_graph, packed):
        assert packed.num_connections == toy.num_connections
        for station in range(toy.num_stations):
            conns = toy.outgoing_connections(station)
            deps, starts = packed.source_connection_arrays(station)
            assert deps.tolist() == [c.dep_time for c in conns]
            assert starts.tolist() == [
                toy_graph.source_route_node(c) for c in conns
            ]
            assert packed.outgoing_connection_count(station) == len(conns)

    def test_transfer_times(self, toy, packed):
        assert packed.transfer_time.tolist() == [
            s.transfer_time for s in toy.stations
        ]

    def test_station_node_predicate(self, toy_graph, packed):
        assert packed.is_station_node(0)
        assert not packed.is_station_node(toy_graph.num_stations)

    def test_nbytes_positive(self, packed):
        assert packed.nbytes() > 0


class TestKernelAdjacency:
    def test_mirrors_are_cached(self, packed):
        assert packed.kernel_adjacency() is packed.kernel_adjacency()

    def test_ttf_tuples_shared_between_edges(self, germany_tiny_graph):
        """Edges referencing the same TravelTimeFunction share one
        mirror tuple (memory and cache locality)."""
        packed = pack_td_graph(germany_tiny_graph)
        adjacency = packed.kernel_adjacency()
        by_id = {}
        for edges in adjacency:
            for _tgt, _w, ttf in edges:
                if ttf is not None:
                    by_id[id(ttf)] = ttf
        assert len(by_id) == packed.ttf_fifo.size

    def test_constant_and_ttf_arithmetic(self, toy_graph, packed):
        """Spot-check one ttf mirror against the object evaluation."""
        adjacency = packed.kernel_adjacency()
        for u, edges in enumerate(toy_graph.adjacency):
            for edge, (tgt, w, ttf) in zip(edges, adjacency[u]):
                assert tgt == edge.target
                if edge.ttf is None:
                    assert edge.arrival(600) == 600 + w
                else:
                    deps, durs, fifo, n = ttf
                    assert n == len(deps) == len(durs)
                    arrival = edge.arrival(600)
                    assert arrival >= 600 or arrival == INF_TIME


class TestPickling:
    def test_roundtrip_drops_cache_and_preserves_arrays(self, packed):
        packed.kernel_adjacency()  # warm the cache
        clone = pickle.loads(pickle.dumps(packed))
        assert clone._adjacency_cache is None
        assert np.array_equal(clone.edge_target, packed.edge_target)
        assert np.array_equal(clone.conn_dep, packed.conn_dep)
        assert clone.kernel_adjacency() == packed.kernel_adjacency()


class TestPackedArraysCache:
    def test_same_graph_hits_cache(self, toy_graph):
        assert packed_arrays(toy_graph) is packed_arrays(toy_graph)

    def test_distinct_graphs_get_distinct_packs(self, toy):
        g1, g2 = build_td_graph(toy), build_td_graph(toy)
        a1, a2 = packed_arrays(g1), packed_arrays(g2)
        assert a1 is not a2
        assert np.array_equal(a1.edge_target, a2.edge_target)
