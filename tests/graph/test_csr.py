"""Unit tests for CSR utilities."""

import numpy as np
import pytest

from repro.graph.csr import (
    build_csr,
    build_weighted_csr,
    neighbors,
    out_degrees,
    reverse_csr,
)


class TestBuildCsr:
    def test_simple(self):
        indptr, targets = build_csr(3, [(0, 1), (0, 2), (2, 0)])
        assert indptr.tolist() == [0, 2, 2, 3]
        assert targets.tolist() == [1, 2, 0]

    def test_empty(self):
        indptr, targets = build_csr(2, [])
        assert indptr.tolist() == [0, 0, 0]
        assert targets.size == 0

    def test_targets_sorted_per_node(self):
        indptr, targets = build_csr(2, [(0, 1), (0, 0), (1, 0)])
        assert neighbors(indptr, targets, 0).tolist() == [0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            build_csr(2, [(0, 5)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_csr(-1, [])

    def test_negative_num_nodes_rejected_before_consuming_edges(self):
        """Validation must precede materializing the edge iterable."""
        consumed = []

        def edge_gen():
            consumed.append(True)
            yield (0, 1)

        with pytest.raises(ValueError, match="non-negative"):
            build_csr(-1, edge_gen())
        assert not consumed

    def test_zero_nodes_empty_graph(self):
        indptr, targets = build_csr(0, [])
        assert indptr.tolist() == [0]
        assert targets.size == 0

    def test_zero_nodes_with_edges_rejected(self):
        with pytest.raises(ValueError, match="range"):
            build_csr(0, [(0, 0)])

    def test_parallel_edges_kept(self):
        _indptr, targets = build_csr(2, [(0, 1), (0, 1)])
        assert targets.tolist() == [1, 1]

    def test_self_loops_kept(self):
        indptr, targets = build_csr(3, [(1, 1), (1, 2), (1, 1)])
        assert neighbors(indptr, targets, 1).tolist() == [1, 1, 2]

    def test_parallel_self_loops_and_edges_mixed(self):
        indptr, targets = build_csr(2, [(0, 0), (0, 1), (0, 0), (1, 1)])
        assert indptr.tolist() == [0, 3, 4]
        assert neighbors(indptr, targets, 0).tolist() == [0, 0, 1]
        assert neighbors(indptr, targets, 1).tolist() == [1]


class TestBuildWeightedCsr:
    def test_collapses_parallel_to_min(self):
        indptr, targets, weights = build_weighted_csr(
            2, [(0, 1, 9), (0, 1, 4), (0, 1, 7)]
        )
        assert targets.tolist() == [1]
        assert weights.tolist() == [4]

    def test_empty(self):
        indptr, targets, weights = build_weighted_csr(1, [])
        assert indptr.tolist() == [0, 0]
        assert targets.size == 0 and weights.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            build_weighted_csr(1, [(0, 1, 1)])


class TestReverseCsr:
    def test_reverses_edges(self):
        indptr, targets = build_csr(3, [(0, 1), (1, 2), (0, 2)])
        rev_indptr, rev_targets = reverse_csr(3, indptr, targets)
        assert neighbors(rev_indptr, rev_targets, 2).tolist() == [0, 1]
        assert neighbors(rev_indptr, rev_targets, 0).size == 0

    def test_double_reverse_is_identity(self):
        indptr, targets = build_csr(4, [(0, 1), (1, 2), (3, 0), (2, 3)])
        r1 = reverse_csr(4, indptr, targets)
        r2 = reverse_csr(4, *r1)
        assert r2[0].tolist() == indptr.tolist()
        assert r2[1].tolist() == targets.tolist()


def test_out_degrees():
    indptr, _ = build_csr(3, [(0, 1), (0, 2), (2, 0)])
    assert out_degrees(indptr).tolist() == [2, 0, 1]
