"""Unit tests for the station graph G_S (paper §4)."""

from repro.graph.station_graph import build_station_graph

from tests.helpers import toy_timetable


class TestBuildStationGraph:
    def test_edges_where_trains_run(self, toy):
        sg = build_station_graph(toy)
        assert sg.successors(0).tolist() == [1, 3]  # A→B (line 1), A→D (line 3)
        assert sg.successors(1).tolist() == [2]
        assert sg.successors(2).tolist() == [3]
        assert sg.successors(3).size == 0

    def test_weights_are_min_travel_time(self, toy):
        sg = build_station_graph(toy)
        weights = dict(
            zip(sg.successors(0).tolist(), sg.successor_weights(0).tolist())
        )
        assert weights[1] == 15  # A→B leg
        assert weights[3] == 70  # direct A→D

    def test_predecessors(self, toy):
        sg = build_station_graph(toy)
        assert sg.predecessors(3).tolist() == [0, 2]
        assert sg.predecessors(0).size == 0

    def test_degrees(self, toy):
        sg = build_station_graph(toy)
        assert sg.out_degree(0) == 2
        assert sg.in_degree(3) == 2
        # Undirected degree of B: neighbors {A, C}.
        assert sg.degree(1) == 2

    def test_undirected_neighbors(self, toy):
        sg = build_station_graph(toy)
        assert sg.undirected_neighbors(2) == [1, 3]

    def test_num_edges(self, toy):
        sg = build_station_graph(toy)
        assert sg.num_edges == 4


def test_instance_station_graph(oahu_tiny):
    sg = build_station_graph(oahu_tiny)
    assert sg.num_stations == oahu_tiny.num_stations
    # Bidirectional lines ⇒ symmetric reachability: every out-neighbor
    # is also an in-neighbor.
    for s in range(sg.num_stations):
        assert set(sg.successors(s).tolist()) == set(sg.predecessors(s).tolist())
