"""Shared test utilities: deterministic random networks and reference
implementations used by property-based tests."""

from __future__ import annotations

import random

from repro.timetable.builder import TimetableBuilder
from repro.timetable.types import Timetable


def toy_timetable() -> Timetable:
    """A 4-station, 3-line network with hand-checkable answers.

    Lines: A→B→C every 30 min (15 min/leg, 08:00–11:30), C→D every
    40 min (20 min, 08:10–11:50), A→D direct hourly (70 min, 08:20–).
    Transfer times: A=2, B=3, C=1, D=2.
    """
    builder = TimetableBuilder(name="toy")
    a = builder.add_station("A", transfer_time=2)
    b = builder.add_station("B", transfer_time=3)
    c = builder.add_station("C", transfer_time=1)
    d = builder.add_station("D", transfer_time=2)
    for t0 in range(480, 720, 30):
        builder.add_trip([(a, t0), (b, t0 + 15), (c, t0 + 30)], name=f"abc-{t0}")
    for t0 in range(490, 720, 40):
        builder.add_trip([(c, t0), (d, t0 + 20)], name=f"cd-{t0}")
    for t0 in range(500, 720, 60):
        builder.add_trip([(a, t0), (d, t0 + 70)], name=f"ad-{t0}")
    return builder.build()


def random_line_timetable(
    seed: int,
    *,
    num_stations: int = 12,
    num_lines: int = 6,
    max_line_length: int = 5,
    min_headway: int = 25,
    max_headway: int = 90,
    service_span: tuple[int, int] = (360, 1380),
    period: int = 1440,
    max_transfer: int = 5,
) -> Timetable:
    """A random but always-valid line network, deterministic in ``seed``.

    Per-station-pair leg times keep merged routes FIFO; lines run in
    both directions so reachability is symmetric.  Used as the input
    distribution for the cross-implementation equivalence properties.

    ``period`` sets the timetable periodicity ``π`` (departures are
    normalized into it); a ``service_span`` that covers the whole
    period yields wrap-heavy *periodic* service, a narrow span an
    *aperiodic* window.  ``max_transfer`` scales the per-station
    minimum transfer times (transfer-cost density).
    """
    rng = random.Random(seed)
    builder = TimetableBuilder(period=period, name=f"random-{seed}")
    stations = [
        builder.add_station(f"s{k}", transfer_time=rng.randint(0, max_transfer))
        for k in range(num_stations)
    ]
    leg_time: dict[tuple[int, int], int] = {}

    def leg(a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        if key not in leg_time:
            leg_time[key] = rng.randint(3, 25)
        return leg_time[key]

    for _ in range(num_lines):
        length = rng.randint(2, max_line_length)
        stops = rng.sample(stations, min(length, num_stations))
        if len(stops) < 2:
            continue
        headway = rng.randint(min_headway, max_headway)
        offset = rng.randint(0, headway)
        for seq in (stops, stops[::-1]):
            legs = [leg(seq[k], seq[k + 1]) for k in range(len(seq) - 1)]
            for dep in range(service_span[0] + offset, service_span[1], headway):
                t = dep % period
                trip = [(seq[0], t)]
                for duration in legs:
                    t += duration
                    trip.append((seq[len(trip)], t))
                builder.add_trip(trip)
    return builder.build()


def brute_force_arrivals(
    graph, source: int, times: list[int]
) -> dict[int, list[int]]:
    """Ground-truth earliest arrivals: one full time-query per departure
    time.  Returns ``{station: [arrival per time]}``.  O(|times|)
    Dijkstra runs — only for small test networks.
    """
    from repro.baselines.time_query import time_query

    arrivals: dict[int, list[int]] = {
        station: [] for station in range(graph.num_stations)
    }
    for tau in times:
        result = time_query(graph, source, tau)
        for station in range(graph.num_stations):
            arrivals[station].append(result.arrival_at_station(station))
    return arrivals
