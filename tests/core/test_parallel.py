"""Unit tests for the parallel SPCS driver (paper §3.2)."""

import pytest

from repro.core.parallel import parallel_profile_search
from repro.core.spcs import spcs_profile_search


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_any_core_count_matches_single_run(self, toy_graph, p):
        single = spcs_profile_search(toy_graph, 0)
        result = parallel_profile_search(toy_graph, 0, p)
        for station in range(toy_graph.num_stations):
            assert result.profile(station) == single.profile(station)

    @pytest.mark.parametrize("strategy", ["equal-connections", "equal-time-slots", "kmeans"])
    def test_all_strategies_agree(self, toy_graph, strategy):
        base = parallel_profile_search(toy_graph, 0, 3)
        other = parallel_profile_search(toy_graph, 0, 3, strategy=strategy)
        for station in range(toy_graph.num_stations):
            assert other.profile(station) == base.profile(station)

    def test_more_threads_than_connections(self, toy_graph):
        conns = toy_graph.timetable.outgoing_connections(0)
        result = parallel_profile_search(toy_graph, 0, len(conns) + 5)
        single = spcs_profile_search(toy_graph, 0)
        for station in range(toy_graph.num_stations):
            assert result.profile(station) == single.profile(station)

    def test_rejects_zero_threads(self, toy_graph):
        with pytest.raises(ValueError, match="thread"):
            parallel_profile_search(toy_graph, 0, 0)

    def test_rejects_unknown_strategy(self, toy_graph):
        with pytest.raises(ValueError, match="strategy"):
            parallel_profile_search(toy_graph, 0, 2, strategy="nope")

    def test_rejects_unknown_backend(self, toy_graph):
        with pytest.raises(ValueError, match="backend"):
            parallel_profile_search(toy_graph, 0, 2, backend="gpu")


class TestBackends:
    def test_threads_backend_matches_serial(self, toy_graph):
        serial = parallel_profile_search(toy_graph, 0, 3, backend="serial")
        threads = parallel_profile_search(toy_graph, 0, 3, backend="threads")
        for station in range(toy_graph.num_stations):
            assert threads.profile(station) == serial.profile(station)

    @pytest.mark.slow
    def test_processes_backend_matches_serial(self, toy_graph):
        serial = parallel_profile_search(toy_graph, 0, 2, backend="serial")
        procs = parallel_profile_search(toy_graph, 0, 2, backend="processes")
        for station in range(toy_graph.num_stations):
            assert procs.profile(station) == serial.profile(station)


class TestAccounting:
    def test_stats_shapes(self, toy_graph):
        result = parallel_profile_search(toy_graph, 0, 4)
        stats = result.stats
        assert stats.num_threads == 4
        assert len(stats.partition_sizes) == 4
        assert len(stats.settled_per_thread) == 4
        assert len(stats.time_per_thread) == 4
        assert stats.settled_connections == sum(stats.settled_per_thread)

    def test_simulated_time_definition(self, toy_graph):
        stats = parallel_profile_search(toy_graph, 0, 4).stats
        assert stats.simulated_time == pytest.approx(
            max(stats.time_per_thread) + stats.merge_time
        )

    def test_partition_sizes_cover_connections(self, toy_graph):
        result = parallel_profile_search(toy_graph, 0, 4)
        conns = toy_graph.timetable.outgoing_connections(0)
        assert sum(result.stats.partition_sizes) == len(conns)

    def test_parallel_work_never_less_due_to_pruning_loss(self, oahu_tiny_graph):
        """More threads ⇒ less cross-connection self-pruning ⇒ the total
        settled count stays within a small factor of — and typically
        above — the single-thread count (paper §3.2)."""
        single = parallel_profile_search(oahu_tiny_graph, 0, 1)
        multi = parallel_profile_search(oahu_tiny_graph, 0, 8)
        # Tie-breaking noise can shave individual settles; the count must
        # never *drop* noticeably.
        assert multi.stats.settled_connections >= 0.95 * single.stats.settled_connections
