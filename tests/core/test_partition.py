"""Unit and property tests for connection partitioning (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import (
    PARTITION_STRATEGIES,
    partition_balance,
    partition_equal_connections,
    partition_equal_time_slots,
    partition_kmeans,
)

sorted_deps = st.lists(
    st.integers(min_value=0, max_value=1439), min_size=0, max_size=200
).map(sorted)


@pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
class TestCommonContract:
    @given(deps=sorted_deps, p=st.integers(min_value=1, max_value=9))
    def test_disjoint_cover(self, strategy, deps, p):
        parts = PARTITION_STRATEGIES[strategy](deps, p, 1440)
        assert len(parts) == p
        flat = [i for part in parts for i in part]
        assert sorted(flat) == list(range(len(deps)))

    @given(deps=sorted_deps, p=st.integers(min_value=1, max_value=9))
    def test_parts_sorted(self, strategy, deps, p):
        parts = PARTITION_STRATEGIES[strategy](deps, p, 1440)
        for part in parts:
            assert part == sorted(part)

    def test_rejects_zero_threads(self, strategy):
        with pytest.raises(ValueError, match="thread"):
            PARTITION_STRATEGIES[strategy]([1, 2, 3], 0, 1440)

    def test_rejects_unsorted_departures(self, strategy):
        with pytest.raises(ValueError, match="non-decreasing"):
            PARTITION_STRATEGIES[strategy]([5, 3], 2, 1440)


class TestEqualConnections:
    def test_sizes_differ_by_at_most_one(self):
        parts = partition_equal_connections(list(range(10)), 3)
        sizes = sorted(len(p) for p in parts)
        assert sizes == [3, 3, 4]

    def test_contiguous_runs(self):
        parts = partition_equal_connections(list(range(8)), 2)
        assert parts == [[0, 1, 2, 3], [4, 5, 6, 7]]

    @given(deps=sorted_deps, p=st.integers(min_value=1, max_value=9))
    def test_always_balanced(self, deps, p):
        parts = partition_equal_connections(deps, p)
        sizes = [len(x) for x in parts]
        assert max(sizes) - min(sizes) <= 1


class TestEqualTimeSlots:
    def test_assignment_by_interval(self):
        # Period 100, 2 threads: slot boundary at 50.
        parts = partition_equal_time_slots([10, 40, 60, 90], 2, period=100)
        assert parts == [[0, 1], [2, 3]]

    def test_rush_hour_imbalance(self):
        """The paper's motivation: clustered departures unbalance the
        time-slot split but not the equal-connections split."""
        deps = sorted([450 + i for i in range(50)] + [1000, 1100])
        slots = partition_equal_time_slots(deps, 4)
        equal = partition_equal_connections(deps, 4)
        assert partition_balance(slots) > partition_balance(equal)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            partition_equal_time_slots([1], 2, period=0)


class TestKMeans:
    def test_deterministic(self):
        deps = sorted([100, 105, 110, 700, 705, 710, 1300])
        assert partition_kmeans(deps, 3) == partition_kmeans(deps, 3)

    def test_separates_clusters(self):
        deps = [100, 101, 102, 800, 801, 802]
        parts = partition_kmeans(deps, 2)
        assert parts == [[0, 1, 2], [3, 4, 5]]

    def test_single_thread(self):
        assert partition_kmeans([1, 2, 3], 1) == [[0, 1, 2]]

    def test_more_threads_than_points(self):
        parts = partition_kmeans([5, 10], 4)
        assert len(parts) == 4
        flat = [i for part in parts for i in part]
        assert sorted(flat) == [0, 1]


class TestPartitionBalance:
    def test_perfect(self):
        assert partition_balance([[0, 1], [2, 3]]) == 1.0

    def test_imbalanced(self):
        assert partition_balance([[0, 1, 2], [3]]) == 1.5

    def test_empty(self):
        assert partition_balance([]) == 1.0
        assert partition_balance([[], []]) == 1.0
