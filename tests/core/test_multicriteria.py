"""Tests for the multi-criteria extension (paper §6 future work):
profile search over (arrival time, number of transfers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mc_time_query import mc_time_query
from repro.core.multicriteria import mc_profile_search
from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import build_td_graph

from tests.helpers import random_line_timetable


class TestToyAnswers:
    """On the toy network (A→B→C line, C→D line, slow A→D direct):
    reaching D either needs one transfer (via C) or zero (direct)."""

    def test_direct_vs_transfer_tradeoff(self, toy_graph):
        result = mc_profile_search(toy_graph, 0, max_transfers=3)
        # Depart 08:00: via C arrives 09:10 with 1 transfer; the direct
        # (0-transfer) train leaves 08:20 and arrives 09:30.
        assert result.arrival(3, 480, 0) == 570
        assert result.arrival(3, 480, 1) == 550
        front = result.pareto_front(3, 480)
        assert front == [(0, 570), (1, 550)]

    def test_zero_budget_forbids_transfers(self, toy_graph):
        result = mc_profile_search(toy_graph, 0, max_transfers=0)
        # B and C are on the direct line (no transfer); fine.
        assert result.arrival(1, 480, 0) == 495
        assert result.arrival(2, 480, 0) == 510

    def test_monotone_in_budget(self, toy_graph):
        result = mc_profile_search(toy_graph, 0, max_transfers=4)
        for station in range(toy_graph.num_stations):
            for tau in (0, 480, 700):
                arrivals = [
                    result.arrival(station, tau, k) for k in range(5)
                ]
                assert all(
                    later <= earlier
                    for earlier, later in zip(arrivals, arrivals[1:])
                )

    def test_large_budget_matches_single_criterion(self, toy_graph):
        """With an ample transfer budget the best arrival equals the
        unconstrained SPCS profile."""
        mc = mc_profile_search(toy_graph, 0, max_transfers=6)
        single = spcs_profile_search(toy_graph, 0)
        for station in range(1, toy_graph.num_stations):
            profile = single.profile(station)
            for tau in range(400, 800, 37):
                assert mc.arrival(station, tau, 6) == profile.earliest_arrival(tau)

    def test_rejects_bad_arguments(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            mc_profile_search(toy_graph, toy_graph.num_nodes - 1)
        with pytest.raises(ValueError, match="max_transfers"):
            mc_profile_search(toy_graph, 0, max_transfers=-1)

    def test_profile_points_reduced(self, toy_graph):
        result = mc_profile_search(toy_graph, 0, max_transfers=3)
        points = result.profile_points(3, 3)
        arrivals = [dep + dur for dep, dur in points]
        assert arrivals == sorted(arrivals)
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))


class TestAgainstLayeredDijkstra:
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=800))
    def test_matches_mc_time_query_at_anchors(self, seed):
        """The MC profile evaluated at any anchor equals the layered
        transfer-bounded Dijkstra for every budget."""
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=8, num_lines=4)
        )
        max_transfers = 3
        mc = mc_profile_search(graph, 0, max_transfers=max_transfers)
        anchors = sorted(
            {c.dep_time for c in graph.timetable.outgoing_connections(0)}
        )
        for tau in anchors[:: max(1, len(anchors) // 6)]:
            truth = mc_time_query(graph, 0, tau, max_transfers=max_transfers)
            for station in range(1, graph.num_stations):
                for k in range(max_transfers + 1):
                    assert mc.arrival(station, tau, k) == truth.arrival_at_station(
                        station, k
                    ), (seed, station, tau, k)

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=800))
    def test_self_pruning_lossless(self, seed):
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=7, num_lines=4)
        )
        pruned = mc_profile_search(graph, 0, max_transfers=3)
        plain = mc_profile_search(graph, 0, max_transfers=3, self_pruning=False)
        for station in range(1, graph.num_stations):
            for tau in range(0, 1440, 177):
                for k in range(4):
                    assert pruned.arrival(station, tau, k) == plain.arrival(
                        station, tau, k
                    ), (seed, station, tau, k)

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=800))
    def test_pareto_fronts_non_dominated(self, seed):
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=7, num_lines=4)
        )
        mc = mc_profile_search(graph, 0, max_transfers=4)
        for station in range(1, graph.num_stations):
            front = mc.pareto_front(station, 480)
            transfers = [k for k, _ in front]
            arrivals = [a for _, a in front]
            assert transfers == sorted(transfers)
            assert all(b < a for a, b in zip(arrivals, arrivals[1:]))


class TestWorkReduction:
    def test_self_pruning_reduces_settles(self, oahu_tiny_graph):
        pruned = mc_profile_search(oahu_tiny_graph, 0, max_transfers=3)
        plain = mc_profile_search(
            oahu_tiny_graph, 0, max_transfers=3, self_pruning=False
        )
        assert pruned.stats.pruned > 0
        assert pruned.stats.settled < plain.stats.settled

    def test_stats_populated(self, toy_graph):
        stats = mc_profile_search(toy_graph, 0, max_transfers=2).stats
        assert stats.settled > 0
        assert stats.queue_pushes > 0


class TestMcTimeQuery:
    def test_transfer_bound_zero(self, toy_graph):
        truth = mc_time_query(toy_graph, 0, 480, max_transfers=2)
        assert truth.arrival_at_station(3, 0) == 570  # direct only
        assert truth.arrival_at_station(3, 1) == 550  # via C
        assert truth.pareto_front(3) == [(0, 570), (1, 550)]

    def test_rejects_bad_arguments(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            mc_time_query(toy_graph, toy_graph.num_nodes - 1, 0)
        with pytest.raises(ValueError, match="max_transfers"):
            mc_time_query(toy_graph, 0, 0, max_transfers=-1)

    def test_unreachable_is_infinite(self, toy_graph):
        # D has no outgoing trains: from D everything else is unreachable.
        truth = mc_time_query(toy_graph, 3, 480, max_transfers=3)
        assert truth.arrival_at_station(0, 3) == INF_TIME
