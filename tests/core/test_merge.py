"""Unit tests for merging per-thread SPCS results (paper §3.2)."""

import numpy as np
import pytest

from repro.core.merge import merge_thread_results
from repro.core.partition import partition_equal_connections
from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME


def _thread_results(graph, source, p):
    conns = graph.timetable.outgoing_connections(source)
    parts = partition_equal_connections([c.dep_time for c in conns], p)
    return [
        spcs_profile_search(graph, source, connection_subset=part)
        for part in parts
    ], len(conns)


class TestMergeThreadResults:
    def test_merged_profiles_match_single_run(self, toy_graph):
        single = spcs_profile_search(toy_graph, 0)
        results, n = _thread_results(toy_graph, 0, 3)
        merged = merge_thread_results(results, n)
        for station in range(toy_graph.num_stations):
            assert merged.profile(station) == single.profile(station)

    def test_column_placement(self, toy_graph):
        results, n = _thread_results(toy_graph, 0, 2)
        merged = merge_thread_results(results, n)
        for r in results:
            for local, global_idx in enumerate(r.conn_indices.tolist()):
                assert (
                    merged.labels[:, global_idx] == r.labels[:, local]
                ).all()

    def test_conn_deps_global_order(self, toy_graph):
        results, n = _thread_results(toy_graph, 0, 4)
        merged = merge_thread_results(results, n)
        conns = toy_graph.timetable.outgoing_connections(0)
        assert merged.conn_deps.tolist() == [c.dep_time for c in conns]

    def test_requires_results(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_thread_results([], 5)

    def test_rejects_overlapping_subsets(self, toy_graph):
        a = spcs_profile_search(toy_graph, 0, connection_subset=[0, 1])
        b = spcs_profile_search(toy_graph, 0, connection_subset=[1, 2])
        with pytest.raises(ValueError, match="overlap"):
            merge_thread_results([a, b], 3)

    def test_rejects_source_mismatch(self, toy_graph):
        a = spcs_profile_search(toy_graph, 0, connection_subset=[0])
        b = spcs_profile_search(toy_graph, 1, connection_subset=[1])
        with pytest.raises(ValueError, match="source"):
            merge_thread_results([a, b], 2)

    def test_uncovered_columns_stay_infinite(self, toy_graph):
        a = spcs_profile_search(toy_graph, 0, connection_subset=[0, 2])
        merged = merge_thread_results([a], 4)
        assert (merged.labels[:, 1] == INF_TIME).all()
        assert (merged.labels[:, 3] == INF_TIME).all()
        # Anchors stay monotone for Profile construction.
        assert (np.diff(merged.conn_deps) >= 0).all()

    def test_merged_nonfifo_reduced_by_profile(self, oahu_tiny_graph):
        """The merged common label need not be FIFO (no cross-thread
        self-pruning); profile() must reduce it (paper §3.2)."""
        results, n = _thread_results(oahu_tiny_graph, 0, 4)
        merged = merge_thread_results(results, n)
        single = spcs_profile_search(oahu_tiny_graph, 0)
        for station in range(oahu_tiny_graph.num_stations):
            profile = merged.profile(station)
            assert profile.is_fifo()
            assert profile == single.profile(station)

    def test_earliest_arrival_convenience(self, toy_graph):
        results, n = _thread_results(toy_graph, 0, 2)
        merged = merge_thread_results(results, n)
        profile = merged.profile(2)
        assert merged.earliest_arrival(2, 480) == profile.earliest_arrival(480)
