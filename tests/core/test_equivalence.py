"""Cross-implementation equivalence — the central correctness property.

On random networks, four independent implementations must agree:

* SPCS (connection-setting, self-pruning)     — paper §3
* parallel SPCS on any thread count           — paper §3.2
* label-correcting profile search             — paper §2
* one time-query per departure anchor         — ground truth

Equality is checked on reduced profiles (exact) and on earliest-arrival
evaluations at probe times spread over two periods (wrap coverage).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.label_correcting import label_correcting_profile
from repro.baselines.time_query import time_query
from repro.core.parallel import parallel_profile_search
from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import build_td_graph

from tests.helpers import brute_force_arrivals, random_line_timetable

PROBE_TIMES = list(range(0, 2 * 1440, 173))


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_spcs_equals_label_correcting(seed):
    graph = build_td_graph(random_line_timetable(seed, num_stations=9, num_lines=5))
    spcs = spcs_profile_search(graph, 0)
    lc = label_correcting_profile(graph, 0)
    for station in range(graph.num_stations):
        assert spcs.profile(station) == lc.profile(
            station, graph.timetable.period
        ), f"station {station} differs (seed {seed})"


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=2_000),
    p=st.integers(min_value=2, max_value=6),
)
def test_parallel_equals_sequential(seed, p):
    graph = build_td_graph(random_line_timetable(seed, num_stations=9, num_lines=5))
    single = spcs_profile_search(graph, 0)
    parallel = parallel_profile_search(graph, 0, p)
    for station in range(graph.num_stations):
        assert parallel.profile(station) == single.profile(station)


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_spcs_equals_brute_force(seed):
    """The SPCS profile *function* must match one-time-query-per-anchor
    ground truth at every departure anchor of conn(S).

    Function equality, not point-set equality: SPCS keeps a raw point
    per outgoing connection, and a pathologically slow same-day point
    may be cyclically dominated by the next day's first train — the
    evaluation handles that, so values are the right comparison.
    """
    graph = build_td_graph(random_line_timetable(seed, num_stations=7, num_lines=4))
    spcs = spcs_profile_search(graph, 0)
    anchors = sorted(
        {c.dep_time for c in graph.timetable.outgoing_connections(0)}
    )
    truth = brute_force_arrivals(graph, 0, anchors)
    for station in range(1, graph.num_stations):
        profile = spcs.profile(station)
        for k, dep in enumerate(anchors):
            assert profile.earliest_arrival(dep) == truth[station][k], (
                f"station {station} anchor {dep} (seed {seed})"
            )


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_profile_evaluation_matches_time_queries(seed):
    """dist(S, T, τ) read from the profile equals a fresh time-query for
    arbitrary τ — including wrap-around past the period."""
    graph = build_td_graph(random_line_timetable(seed, num_stations=7, num_lines=4))
    spcs = spcs_profile_search(graph, 0)
    for station in range(1, graph.num_stations):
        profile = spcs.profile(station)
        for tau in PROBE_TIMES:
            truth = time_query(graph, 0, tau).arrival_at_station(station)
            assert profile.earliest_arrival(tau) == truth, (
                f"station {station} at τ={tau} (seed {seed})"
            )


@settings(deadline=None, max_examples=6)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_self_pruning_is_lossless(seed):
    graph = build_td_graph(random_line_timetable(seed, num_stations=8, num_lines=5))
    pruned = spcs_profile_search(graph, 0, self_pruning=True)
    plain = spcs_profile_search(graph, 0, self_pruning=False)
    for station in range(graph.num_stations):
        assert pruned.profile(station) == plain.profile(station)


@settings(deadline=None, max_examples=6)
@given(
    seed=st.integers(min_value=0, max_value=2_000),
    target=st.integers(min_value=1, max_value=6),
)
def test_stopping_criterion_is_lossless_for_target(seed, target):
    graph = build_td_graph(random_line_timetable(seed, num_stations=7, num_lines=4))
    target = target % graph.num_stations or 1
    full = spcs_profile_search(graph, 0)
    stopped = spcs_profile_search(graph, 0, target=target)
    assert stopped.profile(target) == full.profile(target)


def test_all_sources_agree_on_instances(oahu_tiny_graph, germany_tiny_graph):
    """Deterministic sweep over a handful of sources on both network
    families (dense bus, sparse rail)."""
    for graph in (oahu_tiny_graph, germany_tiny_graph):
        for source in range(0, graph.num_stations, 5):
            spcs = spcs_profile_search(graph, source)
            lc = label_correcting_profile(graph, source)
            parallel = parallel_profile_search(graph, source, 4)
            for station in range(graph.num_stations):
                expected = lc.profile(station, graph.timetable.period)
                assert spcs.profile(station) == expected
                assert parallel.profile(station) == expected
