"""Robustness and failure-injection tests.

The paper assumes FIFO networks (§2).  Our edge evaluation computes the
*lower envelope* over connections ("wait for the better train"), which
is FIFO by construction even when the underlying schedule lets trains
overtake — so the whole algorithm stack must stay correct on non-FIFO
timetables.  These tests lock that in, along with assorted hostile
inputs.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.label_correcting import label_correcting_profile
from repro.baselines.time_query import time_query
from repro.core.parallel import parallel_profile_search
from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import build_td_graph
from repro.timetable.builder import TimetableBuilder


def _non_fifo_timetable(seed: int):
    """Random network whose legs contain overtaking trains (slow local
    and fast express on the same leg)."""
    rng = random.Random(seed)
    builder = TimetableBuilder(name=f"nonfifo-{seed}")
    stations = [builder.add_station(f"s{k}", transfer_time=rng.randint(0, 4)) for k in range(8)]
    for _ in range(5):
        stops = rng.sample(stations, rng.randint(2, 4))
        for direction in (stops, stops[::-1]):
            for dep in range(300 + rng.randint(0, 40), 1300, rng.randint(40, 90)):
                t = dep
                trip = [(direction[0], t)]
                for nxt in direction[1:]:
                    # Per-trip random leg time ⇒ overtaking is possible.
                    t += rng.randint(3, 30)
                    trip.append((nxt, t))
                builder.add_trip(trip)
    return builder.build(require_fifo=False)


class TestNonFifoNetworks:
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_spcs_equals_lc_on_non_fifo(self, seed):
        graph = build_td_graph(_non_fifo_timetable(seed))
        spcs = spcs_profile_search(graph, 0)
        lc = label_correcting_profile(graph, 0)
        for station in range(graph.num_stations):
            assert spcs.profile(station) == lc.profile(
                station, graph.timetable.period
            ), (seed, station)

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_profile_matches_time_query_on_non_fifo(self, seed):
        graph = build_td_graph(_non_fifo_timetable(seed))
        spcs = spcs_profile_search(graph, 0)
        for station in range(1, graph.num_stations):
            profile = spcs.profile(station)
            for tau in (0, 400, 700, 1200, 1439):
                truth = time_query(graph, 0, tau).arrival_at_station(station)
                assert profile.earliest_arrival(tau) == truth, (seed, station, tau)

    @settings(deadline=None, max_examples=5)
    @given(
        seed=st.integers(min_value=0, max_value=300),
        p=st.integers(min_value=2, max_value=5),
    )
    def test_parallel_on_non_fifo(self, seed, p):
        graph = build_td_graph(_non_fifo_timetable(seed))
        single = spcs_profile_search(graph, 0)
        parallel = parallel_profile_search(graph, 0, p)
        for station in range(graph.num_stations):
            assert parallel.profile(station) == single.profile(station)


class TestHostileInputs:
    def test_isolated_station(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_station("island")
        builder.add_trip([(a, 100), (b, 130)])
        graph = build_td_graph(builder.build())
        result = spcs_profile_search(graph, 0)
        assert result.profile(2).is_empty()
        # Searching *from* the island is a no-op, not a crash.
        assert spcs_profile_search(graph, 2).stats.settled_connections == 0

    def test_single_connection_network(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 130)])
        graph = build_td_graph(builder.build())
        profile = spcs_profile_search(graph, 0).profile(1)
        assert profile.connection_points() == [(100, 30)]

    def test_zero_transfer_times(self):
        builder = TimetableBuilder()
        ids = [builder.add_station(f"s{k}", transfer_time=0) for k in range(3)]
        builder.add_trip([(ids[0], 100), (ids[1], 110)])
        builder.add_trip([(ids[1], 110), (ids[2], 125)])  # same-minute transfer
        graph = build_td_graph(builder.build())
        result = time_query(graph, 0, 100)
        assert result.arrival_at_station(2) == 125

    def test_huge_transfer_time_forces_wait(self):
        builder = TimetableBuilder()
        a = builder.add_station("a", transfer_time=0)
        b = builder.add_station("b", transfer_time=600)
        c = builder.add_station("c", transfer_time=0)
        builder.add_trip([(a, 100), (b, 120)])
        builder.add_trip([(b, 130), (c, 150)])  # missed: needs 120+600
        builder.add_trip([(b, 800), (c, 820)])
        graph = build_td_graph(builder.build())
        assert time_query(graph, 0, 100).arrival_at_station(2) == 820

    def test_connections_spanning_midnight_repeatedly(self):
        """A journey that wraps past midnight twice."""
        builder = TimetableBuilder()
        ids = [builder.add_station(f"s{k}", transfer_time=1) for k in range(3)]
        builder.add_trip([(ids[0], 1430), (ids[1], 1470)])  # arrives 00:30+1d
        builder.add_trip([(ids[1], 20), (ids[2], 50)])      # next day 00:20→00:50
        graph = build_td_graph(builder.build())
        result = time_query(graph, 0, 1430)
        # Arrive s1 at 1470 (00:30); next s1→s2 train at 00:20 *the day
        # after* (1440+20=1460 already passed → 2880+20).
        assert result.arrival_at_station(2) == 2880 + 50

    def test_parallel_with_single_connection_many_threads(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 130)])
        graph = build_td_graph(builder.build())
        result = parallel_profile_search(graph, 0, 8)
        assert result.profile(1).connection_points() == [(100, 30)]
        assert sum(result.stats.partition_sizes) == 1


class TestProfileEdgeSemantics:
    def test_unreachable_everywhere_profile(self, toy_graph):
        # Station D (3) has no departures: empty conn set, empty profiles.
        result = spcs_profile_search(toy_graph, 3)
        for station in range(toy_graph.num_stations):
            assert result.profile(station).is_empty()

    def test_inf_never_leaks_into_points(self, oahu_tiny_graph):
        result = spcs_profile_search(oahu_tiny_graph, 0)
        for station in range(oahu_tiny_graph.num_stations):
            for dep, dur in result.profile(station).connection_points():
                assert 0 <= dep < oahu_tiny_graph.timetable.period
                assert 0 < dur < INF_TIME
