"""Oracle-equivalence harness for the flat-array SPCS kernel.

The kernel (:mod:`repro.core.spcs_kernel`) must be indistinguishable —
profile-for-profile — from two independent implementations on a broad
randomized instance distribution:

* the pure-Python SPCS (:mod:`repro.core.spcs`), the reference
  implementation of the paper's §3 algorithm;
* the label-correcting baseline (:mod:`repro.baselines`), an entirely
  different algorithm family (§2) serving as the oracle.

The distribution sweeps instance *shape* (size, line density, headway /
transfer density) and *time structure* (periodic wrap-heavy service,
aperiodic service windows, non-1440 periods): ≥50 seeded instances in
total, each checked on every station's reduced profile and on
earliest-arrival evaluations across two periods.  Raw labels may
legitimately differ between kernels on exact arrival ties (queue
tie-breaking); reduced profiles and arrival times may not.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.baselines.label_correcting import label_correcting_profile
from repro.core.merge import merge_thread_results
from repro.core.spcs import spcs_profile_search
from repro.core.spcs_kernel import spcs_kernel_search
from repro.graph.td_arrays import pack_td_graph
from repro.graph.td_model import build_td_graph

from tests.helpers import random_line_timetable

#: Instance-shape sweep.  Each config is run with several seeds; the
#: cross product gives the ≥50 randomized oracle instances.
CONFIGS: dict[str, dict] = {
    "small-dense": dict(num_stations=6, num_lines=6, max_line_length=4),
    "mid-default": dict(num_stations=12, num_lines=6),
    "sparse-long": dict(num_stations=14, num_lines=4, max_line_length=7),
    "transfer-rich": dict(
        num_stations=8, num_lines=7, min_headway=15, max_headway=35
    ),
    "slow-transfers": dict(num_stations=9, num_lines=5, max_transfer=15),
    "zero-transfers": dict(num_stations=8, num_lines=5, max_transfer=0),
    "aperiodic-morning": dict(
        num_stations=10, num_lines=5, service_span=(360, 720)
    ),
    "periodic-wrap": dict(
        num_stations=9, num_lines=5, service_span=(0, 1440)
    ),
    "short-period": dict(
        num_stations=9, num_lines=5, period=720, service_span=(0, 720)
    ),
    "late-night-wrap": dict(
        num_stations=8, num_lines=5, service_span=(1100, 1440)
    ),
}

SEEDS_PER_CONFIG = 5
CASES = [
    pytest.param(name, seed, id=f"{name}-s{seed}")
    for name in CONFIGS
    for seed in range(SEEDS_PER_CONFIG)
]
assert len(CASES) >= 50

#: Arrival-evaluation probes across two periods (wrap coverage).
PROBE_STEP = 211


@lru_cache(maxsize=None)
def _case(name: str, seed: int):
    """Graph + packed arrays for one oracle instance (cached across the
    test functions so each instance is built and searched once)."""
    config = CONFIGS[name]
    timetable = random_line_timetable(1000 * seed + 17, **config)
    graph = build_td_graph(timetable)
    return graph, pack_td_graph(graph)


@pytest.mark.parametrize("name,seed", CASES)
def test_kernel_matches_python_and_label_correcting(name, seed):
    """The oracle triple: flat kernel ≡ Python SPCS ≡ label-correcting,
    on every station's reduced profile and on arrival evaluations."""
    graph, arrays = _case(name, seed)
    period = graph.timetable.period
    kernel = spcs_kernel_search(arrays, 0)
    python = spcs_profile_search(graph, 0)
    oracle = label_correcting_profile(graph, 0)

    for station in range(graph.num_stations):
        k_prof = kernel.profile(station)
        assert k_prof == python.profile(station), (
            f"kernel vs python SPCS differ at station {station} "
            f"({name}, seed {seed})"
        )
        assert k_prof == oracle.profile(station, period), (
            f"kernel vs label-correcting differ at station {station} "
            f"({name}, seed {seed})"
        )
        for tau in range(0, 2 * period, PROBE_STEP):
            assert k_prof.earliest_arrival(tau) == python.profile(
                station
            ).earliest_arrival(tau)


@pytest.mark.parametrize(
    "name,seed",
    [pytest.param(n, 0, id=n) for n in CONFIGS],
)
def test_kernel_subset_merge_matches_full_run(name, seed):
    """Disjoint connection subsets merged back equal the full kernel run
    (the §3.2 parallel decomposition, exercised at the kernel level)."""
    graph, arrays = _case(name, seed)
    full = spcs_kernel_search(arrays, 0)
    n = int(full.conn_indices.size)
    if n < 2:
        pytest.skip("instance has fewer than 2 outgoing connections")
    parts = [list(range(0, n, 2)), list(range(1, n, 2))]
    merged = merge_thread_results(
        [
            spcs_kernel_search(arrays, 0, connection_subset=part)
            for part in parts
        ],
        n,
    )
    for station in range(graph.num_stations):
        assert merged.profile(station) == full.profile(station)


@pytest.mark.parametrize(
    "name,seed",
    [pytest.param(n, s, id=f"{n}-s{s}") for n in CONFIGS for s in range(2)],
)
def test_kernel_target_stopping_is_lossless(name, seed):
    """Theorem 2 on the kernel: stopping may prune work but not change
    the profile at the target."""
    graph, arrays = _case(name, seed)
    target = graph.num_stations - 1
    full = spcs_kernel_search(arrays, 0)
    stopped = spcs_kernel_search(arrays, 0, target=target)
    assert stopped.profile(target) == full.profile(target)
    assert (
        stopped.stats.settled_connections <= full.stats.settled_connections
    )


@pytest.mark.parametrize(
    "name,seed",
    [pytest.param(n, 1, id=n) for n in CONFIGS],
)
def test_kernel_self_pruning_is_lossless(name, seed):
    """Theorem 1 on the kernel: disabling self-pruning changes work,
    never profiles."""
    graph, arrays = _case(name, seed)
    pruned = spcs_kernel_search(arrays, 0, self_pruning=True)
    plain = spcs_kernel_search(arrays, 0, self_pruning=False)
    for station in range(graph.num_stations):
        assert pruned.profile(station) == plain.profile(station)


def test_kernel_rejects_bad_inputs():
    graph, arrays = _case("small-dense", 0)
    route_node = graph.num_stations  # first non-station node
    with pytest.raises(ValueError, match="station node"):
        spcs_kernel_search(arrays, route_node)
    with pytest.raises(ValueError, match="station node"):
        spcs_kernel_search(arrays, 0, target=route_node)
    with pytest.raises(ValueError, match="ascending"):
        spcs_kernel_search(arrays, 0, connection_subset=[1, 0])
    with pytest.raises(ValueError, match="range"):
        spcs_kernel_search(arrays, 0, connection_subset=[10**9])


def test_kernel_handles_zero_point_ttf_edge():
    """A TravelTimeFunction with no points is legal (arrival() returns
    INF_TIME) and reports is_fifo() == True; the kernel's FIFO fast
    path must yield INF instead of crashing.  Unreachable via
    build_td_graph (empty legs get no edge) — guard the contract for
    hand-built graphs anyway."""
    from repro.functions.piecewise import TravelTimeFunction
    from repro.graph.td_model import Edge

    graph, _ = _case("small-dense", 0)
    target_node = graph.num_stations  # any route node
    graph.adjacency[0].append(Edge(target_node, 0, TravelTimeFunction([], [])))
    try:
        arrays = pack_td_graph(graph)
        kernel = spcs_kernel_search(arrays, 0)
        python = spcs_profile_search(graph, 0)
        for station in range(graph.num_stations):
            assert kernel.profile(station) == python.profile(station)
    finally:
        graph.adjacency[0].pop()


def test_kernel_empty_subset_returns_empty_result():
    graph, arrays = _case("small-dense", 0)
    result = spcs_kernel_search(arrays, 0, connection_subset=[])
    assert result.labels.shape == (graph.num_nodes, 0)
    assert result.stats.settled_connections == 0


@pytest.mark.parametrize(
    "name,seed",
    [pytest.param(n, s, id=f"{n}-s{s}") for n in CONFIGS for s in range(2)],
)
def test_transit_service_matches_oracle_paths(name, seed):
    """The TransitService facade on the same oracle instances: its
    profile answers must equal both direct kernel runs and the Python
    reference, for either configured kernel (the facade adds routing
    and artifact sharing, never semantics)."""
    from repro.service import ServiceConfig, TransitService

    graph, arrays = _case(name, seed)
    python = spcs_profile_search(graph, 0)
    for kernel in ("python", "flat"):
        service = TransitService.from_graph(
            graph, ServiceConfig(kernel=kernel)
        )
        result = service.profile(0)
        for station in range(graph.num_stations):
            assert result.profile(station) == python.profile(station), (
                f"facade[{kernel}] vs python SPCS differ at station "
                f"{station} ({name}, seed {seed})"
            )
