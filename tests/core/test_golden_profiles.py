"""Golden regression fixtures: known-good profiles for 3 canonical
instances (see ``tests/fixtures/regen_fixtures.py``).

Both the reference SPCS and the flat-array kernel must reproduce the
snapshotted reduced profiles exactly.  A failure here after a kernel
edit means the edit changed *answers*, not just performance — either a
bug, or an intentional semantic change that requires regenerating the
fixtures and saying so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.spcs import spcs_profile_search
from repro.core.spcs_kernel import spcs_kernel_search
from repro.graph.td_arrays import packed_arrays
from repro.graph.td_model import build_td_graph
from repro.synthetic.instances import make_instance

from tests.helpers import toy_timetable

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures"

GOLDEN = sorted(FIXTURE_DIR.glob("profiles_*.json"))


def _load_graph(name: str):
    if name == "toy":
        return build_td_graph(toy_timetable())
    instance, scale = name.rsplit("-", 1)
    return build_td_graph(make_instance(instance, scale=scale, seed=0))


def test_fixture_files_exist():
    names = {p.stem.removeprefix("profiles_") for p in GOLDEN}
    assert {"toy", "oahu-tiny", "germany-tiny"} <= names


@pytest.mark.parametrize(
    "path", GOLDEN, ids=[p.stem.removeprefix("profiles_") for p in GOLDEN]
)
@pytest.mark.parametrize("impl", ["python", "flat"])
def test_profiles_match_golden_snapshot(path, impl):
    data = json.loads(path.read_text())
    name = path.stem.removeprefix("profiles_")
    graph = _load_graph(name)
    assert graph.timetable.period == data["period"]
    assert graph.num_stations == data["num_stations"]

    arrays = packed_arrays(graph) if impl == "flat" else None
    for source_key, stations in data["sources"].items():
        source = int(source_key)
        if impl == "flat":
            result = spcs_kernel_search(arrays, source)
        else:
            result = spcs_profile_search(graph, source)
        for station_key, expected in stations.items():
            profile = result.profile(int(station_key))
            got = [
                [int(d), int(a)]
                for d, a in zip(profile.deps, profile.arrs)
            ]
            assert got == expected, (
                f"{name}: profile {source}->{station_key} drifted from "
                f"golden snapshot ({impl} implementation)"
            )
