"""Unit tests for the SPCS algorithm (paper §3.1)."""

import numpy as np
import pytest

from repro.baselines.time_query import time_query
from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME


class TestBasics:
    def test_profile_matches_time_queries(self, toy_graph):
        result = spcs_profile_search(toy_graph, 0)
        for station in (1, 2, 3):
            for dep, dur in result.profile(station).connection_points():
                truth = time_query(toy_graph, 0, dep).arrival_at_station(station)
                assert truth == dep + dur

    def test_rejects_route_node_source(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            spcs_profile_search(toy_graph, toy_graph.num_nodes - 1)

    def test_rejects_route_node_target(self, toy_graph):
        with pytest.raises(ValueError, match="station"):
            spcs_profile_search(toy_graph, 0, target=toy_graph.num_nodes - 1)

    def test_source_without_departures(self, toy_graph):
        result = spcs_profile_search(toy_graph, 3)
        assert result.labels.shape[1] == 0
        assert result.stats.settled_connections == 0

    def test_label_dimensions(self, toy_graph):
        result = spcs_profile_search(toy_graph, 0)
        conns = toy_graph.timetable.outgoing_connections(0)
        assert result.labels.shape == (toy_graph.num_nodes, len(conns))
        assert result.conn_indices.tolist() == list(range(len(conns)))

    def test_stats_populated(self, toy_graph):
        stats = spcs_profile_search(toy_graph, 0).stats
        assert stats.settled_connections > 0
        assert stats.queue_pushes > 0
        assert stats.relaxed_edges > 0


class TestConnectionSubset:
    def test_subset_columns_match_full_run(self, toy_graph):
        full = spcs_profile_search(toy_graph, 0)
        subset = [1, 3, 5]
        partial = spcs_profile_search(toy_graph, 0, connection_subset=subset)
        assert partial.conn_indices.tolist() == subset
        # Without cross-subset pruning, each column's finite entries may
        # only be a superset of the full run's (self-pruning removes
        # fewer connections); where both are finite they must agree.
        for local, global_idx in enumerate(subset):
            partial_col = partial.labels[:, local]
            full_col = full.labels[:, global_idx]
            both = (partial_col < INF_TIME) & (full_col < INF_TIME)
            assert (partial_col[both] == full_col[both]).all()

    def test_rejects_unsorted_subset(self, toy_graph):
        with pytest.raises(ValueError, match="ascending"):
            spcs_profile_search(toy_graph, 0, connection_subset=[3, 1])

    def test_rejects_out_of_range_subset(self, toy_graph):
        with pytest.raises(ValueError, match="range"):
            spcs_profile_search(toy_graph, 0, connection_subset=[999])

    def test_empty_subset(self, toy_graph):
        result = spcs_profile_search(toy_graph, 0, connection_subset=[])
        assert result.labels.shape[1] == 0


class TestSelfPruning:
    def test_profiles_identical_with_and_without(self, toy_graph):
        pruned = spcs_profile_search(toy_graph, 0, self_pruning=True)
        unpruned = spcs_profile_search(toy_graph, 0, self_pruning=False)
        for station in range(toy_graph.num_stations):
            assert pruned.profile(station) == unpruned.profile(station)

    def test_pruning_reduces_work(self, oahu_tiny_graph):
        pruned = spcs_profile_search(oahu_tiny_graph, 0, self_pruning=True)
        unpruned = spcs_profile_search(oahu_tiny_graph, 0, self_pruning=False)
        assert (
            pruned.stats.settled_connections
            < unpruned.stats.settled_connections
        )
        assert pruned.stats.pruned_self > 0
        assert unpruned.stats.pruned_self == 0

    def test_pruned_labels_marked_infinite(self, oahu_tiny_graph):
        """Self-pruned (node, connection) entries carry ∞ (paper §3.1)."""
        result = spcs_profile_search(oahu_tiny_graph, 0)
        assert result.stats.pruned_self > 0
        assert (result.labels == INF_TIME).any()


class TestStoppingCriterion:
    def test_target_profile_preserved(self, toy_graph):
        full = spcs_profile_search(toy_graph, 0)
        stopped = spcs_profile_search(toy_graph, 0, target=3)
        assert stopped.profile(3) == full.profile(3)

    def test_stopping_reduces_work(self, oahu_tiny_graph):
        full = spcs_profile_search(oahu_tiny_graph, 0)
        stopped = spcs_profile_search(oahu_tiny_graph, 0, target=1)
        assert (
            stopped.stats.settled_connections
            <= full.stats.settled_connections
        )
        assert stopped.stats.pruned_stopping > 0

    def test_all_targets_preserved(self, oahu_tiny_graph):
        full = spcs_profile_search(oahu_tiny_graph, 0)
        for target in range(1, min(6, oahu_tiny_graph.num_stations)):
            stopped = spcs_profile_search(oahu_tiny_graph, 0, target=target)
            assert stopped.profile(target) == full.profile(target), target


class TestQueueVariants:
    def test_all_queues_same_profiles(self, toy_graph):
        base = spcs_profile_search(toy_graph, 0, queue="binary")
        for queue in ("4-ary", "lazy"):
            other = spcs_profile_search(toy_graph, 0, queue=queue)
            for station in range(toy_graph.num_stations):
                assert other.profile(station) == base.profile(station)
