"""Unit tests for transfer-station selection (paper §4)."""

import numpy as np
import pytest

from repro.graph.station_graph import build_station_graph
from repro.query.transfer_selection import (
    select_by_contraction,
    select_by_degree,
    select_transfer_stations,
)


class TestSelectByContraction:
    def test_fraction_respected(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        selected = select_by_contraction(sg, 0.25)
        assert len(selected) == round(sg.num_stations * 0.25)

    def test_zero_fraction(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        assert select_by_contraction(sg, 0.0) == []

    def test_full_fraction(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        assert select_by_contraction(sg, 1.0) == list(range(sg.num_stations))

    def test_rejects_out_of_range(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        with pytest.raises(ValueError, match="fraction"):
            select_by_contraction(sg, 1.5)

    def test_deterministic(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        assert select_by_contraction(sg, 0.3) == select_by_contraction(sg, 0.3)

    def test_hubs_survive_on_rail(self, germany_tiny):
        """Hub-and-spoke rail: contraction must keep hubs (named
        ``*-hub-*``) longer than chain-end satellites."""
        sg = build_station_graph(germany_tiny)
        keep = max(2, round(sg.num_stations * 0.15))
        selected = select_by_contraction(sg, keep / sg.num_stations)
        names = [germany_tiny.stations[s].name for s in selected]
        hub_share = sum("hub-" in n for n in names) / len(names)
        assert hub_share >= 0.5, names


class TestSelectByDegree:
    def test_threshold(self, germany_tiny):
        sg = build_station_graph(germany_tiny)
        selected = select_by_degree(sg, 2)
        for s in selected:
            assert sg.degree(s) > 2
        for s in set(range(sg.num_stations)) - set(selected):
            assert sg.degree(s) <= 2

    def test_rail_degree_rule_selects_hubs(self, germany_tiny):
        sg = build_station_graph(germany_tiny)
        selected = select_by_degree(sg, 2)
        names = {germany_tiny.stations[s].name for s in selected}
        assert names, "expected some high-degree stations"
        assert all("hub-" in n for n in names)


class TestUnifiedEntry:
    def test_contraction_method(self, oahu_tiny):
        out = select_transfer_stations(oahu_tiny, method="contraction", fraction=0.2)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int64
        assert (np.diff(out) > 0).all()

    def test_degree_method(self, germany_tiny):
        out = select_transfer_stations(germany_tiny, method="degree", min_degree=2)
        assert set(out.tolist()) == set(
            select_by_degree(build_station_graph(germany_tiny), 2)
        )

    def test_unknown_method(self, oahu_tiny):
        with pytest.raises(ValueError, match="method"):
            select_transfer_stations(oahu_tiny, method="magic")

    def test_station_graph_reuse(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        a = select_transfer_stations(oahu_tiny, fraction=0.2, station_graph=sg)
        b = select_transfer_stations(oahu_tiny, fraction=0.2)
        assert a.tolist() == b.tolist()
