"""Unit tests for station-graph contraction (paper §4)."""

import numpy as np
import pytest

from repro.graph.station_graph import build_station_graph
from repro.query.contraction import ContractionResult, _DynamicGraph, contract_stations
from repro.timetable.builder import TimetableBuilder


def _line_station_graph(n=6):
    builder = TimetableBuilder(name="line")
    ids = [builder.add_station(f"s{k}") for k in range(n)]
    t = 100
    for u, v in zip(ids, ids[1:]):
        builder.add_trip([(u, t), (v, t + 10)])
        builder.add_trip([(v, t + 1), (u, t + 11)])
        t += 15
    return build_station_graph(builder.build())


def _dijkstra(succ, source):
    import heapq

    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, -1):
            continue
        for v, w in succ[u].items():
            nd = d + w
            if nd < dist.get(v, nd + 1):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class TestContractStations:
    def test_removes_requested_count(self):
        sg = _line_station_graph(6)
        result = contract_stations(sg, 4)
        assert len(result.removal_order) == 4
        assert len(result.survivors) == 2
        assert set(result.removal_order) | set(result.survivors) == set(range(6))

    def test_zero_removals(self):
        sg = _line_station_graph(4)
        result = contract_stations(sg, 0)
        assert result.removal_order == []
        assert result.survivors == list(range(4))

    def test_rejects_out_of_range(self):
        sg = _line_station_graph(4)
        with pytest.raises(ValueError, match="within"):
            contract_stations(sg, 5)

    def test_line_interior_removed_first(self):
        """Degree-1 endpoints are cheapest; interior hubs survive last.
        On a path graph the survivors of heavy contraction are interior
        or endpoint — the key property is determinism, checked here."""
        sg = _line_station_graph(7)
        first = contract_stations(sg, 5)
        second = contract_stations(sg, 5)
        assert first.removal_order == second.removal_order

    def test_distances_preserved_by_shortcuts(self):
        """Core CH invariant: after removing any prefix of the order,
        distances between surviving stations are unchanged."""
        sg = _line_station_graph(6)
        original = _DynamicGraph(sg)
        truth = {s: _dijkstra(original.succ, s) for s in range(6)}

        # Replay the removal order on a fresh dynamic graph, inserting
        # the same shortcuts the routine would.
        from repro.query.contraction import _required_shortcuts

        contracted = _DynamicGraph(sg)
        result = contract_stations(sg, 3)
        for u in result.removal_order:
            shortcuts = _required_shortcuts(contracted, u)
            contracted.remove_node(u)
            for a, b, w in shortcuts:
                contracted.add_edge(a, b, w)

        for s in result.survivors:
            dist = _dijkstra(contracted.succ, s)
            for t in result.survivors:
                if t == s:
                    continue
                assert dist.get(t) == truth[s].get(t), (s, t)

    def test_shortcut_count_reported(self, oahu_tiny):
        sg = build_station_graph(oahu_tiny)
        result = contract_stations(sg, sg.num_stations // 2)
        assert isinstance(result, ContractionResult)
        assert result.shortcuts_added >= 0


class TestDynamicGraph:
    def test_add_edge_keeps_min(self):
        sg = _line_station_graph(3)
        g = _DynamicGraph(sg)
        g.add_edge(0, 2, 50)
        g.add_edge(0, 2, 30)
        g.add_edge(0, 2, 80)
        assert g.succ[0][2] == 30
        assert g.pred[2][0] == 30

    def test_remove_node_cleans_both_directions(self):
        sg = _line_station_graph(3)
        g = _DynamicGraph(sg)
        g.remove_node(1)
        assert 1 not in g.succ[0]
        assert 1 not in g.pred[2]
        assert not g.alive[1]

    def test_witness_search_finds_alternative(self):
        sg = _line_station_graph(3)
        g = _DynamicGraph(sg)
        g.add_edge(0, 2, 15)  # direct alternative to 0→1→2 (10+10)
        assert g.witness_exists(0, 2, via=1, limit_weight=20)
        assert not g.witness_exists(0, 2, via=1, limit_weight=10)
