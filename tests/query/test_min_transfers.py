"""Unit tests for the transfer-minimizing read-off helpers (§6).

``repro.query.min_transfers`` turns :func:`mc_profile_search` labels
into fewest-transfers options, trade-off fronts and per-budget
connection counts; every helper is pinned here against the search's
own ``pareto_front`` / ``profile_points`` read API so the module can
never drift from the underlying labels.
"""

from __future__ import annotations

import pytest

from repro.core.multicriteria import mc_profile_search
from repro.functions.piecewise import INF_TIME
from repro.graph import build_td_graph
from repro.query.min_transfers import (
    DEFAULT_DEPARTURES,
    TradeoffFront,
    min_transfer_option,
    scan_tradeoffs,
    tradeoff_fronts,
    transfer_bounded_counts,
)


@pytest.fixture(scope="module")
def mc_result(oahu_tiny_graph):
    return mc_profile_search(oahu_tiny_graph, 2, max_transfers=4)


class TestMinTransferOption:
    def test_matches_front_head(self, mc_result):
        for station in range(12):
            if station == mc_result.source:
                continue
            for tau in (300, 480, 1020):
                front = mc_result.pareto_front(station, tau)
                option = min_transfer_option(mc_result, station, tau)
                if front:
                    assert option == front[0]
                else:
                    assert option is None

    def test_fewest_transfers_never_beaten_on_count(self, mc_result):
        """The head of the front is the *minimum* transfer count of
        any non-dominated option."""
        for station in (0, 5, 9):
            front = mc_result.pareto_front(station, 480)
            if not front:
                continue
            option = min_transfer_option(mc_result, station, 480)
            assert option[0] == min(k for k, _ in front)


class TestTradeoffFronts:
    def test_source_excluded(self, mc_result):
        fronts = tradeoff_fronts(
            mc_result, range(12), min_options=1
        )
        assert all(f.station != mc_result.source for f in fronts)

    def test_every_front_meets_min_options(self, mc_result):
        fronts = tradeoff_fronts(mc_result, range(12), min_options=2)
        for front in fronts:
            assert len(front.options) >= 2
            assert front.options == tuple(
                mc_result.pareto_front(front.station, front.departure)
            )

    def test_one_front_per_station_first_departure_wins(self, mc_result):
        fronts = tradeoff_fronts(mc_result, range(12), min_options=1)
        stations = [f.station for f in fronts]
        assert len(stations) == len(set(stations))
        for front in fronts:
            # No earlier anchor in DEFAULT_DEPARTURES also qualified.
            earlier = DEFAULT_DEPARTURES[
                : DEFAULT_DEPARTURES.index(front.departure)
            ]
            for tau in earlier:
                assert len(mc_result.pareto_front(front.station, tau)) < 1

    def test_fronts_are_monotone_tradeoffs(self, mc_result):
        """Within a front, more transfers strictly buys an earlier
        arrival (the invariant that makes it a trade-off at all)."""
        for front in tradeoff_fronts(mc_result, range(12), min_options=2):
            ks = [k for k, _ in front.options]
            arrs = [arr for _, arr in front.options]
            assert ks == sorted(ks)
            assert arrs == sorted(arrs, reverse=True)


class TestScanTradeoffs:
    def test_deterministic_and_consistent(self, oahu_tiny_graph):
        first = scan_tradeoffs(oahu_tiny_graph)
        second = scan_tradeoffs(oahu_tiny_graph)
        assert first.source == second.source
        assert first.fronts == second.fronts
        assert first.result.source == first.source
        assert all(isinstance(f, TradeoffFront) for f in first.fronts)

    def test_explicit_sources_restrict_the_scan(self, oahu_tiny_graph):
        scan = scan_tradeoffs(oahu_tiny_graph, sources=[3], stop_after=10**9)
        assert scan.source == 3

    def test_empty_sources_raise(self, oahu_tiny_graph):
        with pytest.raises(ValueError):
            scan_tradeoffs(oahu_tiny_graph, sources=[])

    def test_fronts_match_a_fresh_search(self, oahu_tiny_graph):
        scan = scan_tradeoffs(oahu_tiny_graph)
        fresh = mc_profile_search(
            oahu_tiny_graph, scan.source, max_transfers=4
        )
        assert scan.fronts == tuple(
            tradeoff_fronts(fresh, range(12), min_options=2)
        )


class TestTransferBoundedCounts:
    def test_counts_match_profile_points(self, mc_result):
        counts = transfer_bounded_counts(mc_result, 5, (0, 1, 2, 4))
        for budget, count in counts.items():
            points = mc_result.profile_points(5, budget)
            assert count == sum(1 for p in points if p[1] < INF_TIME)

    def test_counts_monotone_in_budget(self, mc_result):
        """A larger transfer budget can only open connections up."""
        for station in (0, 5, 9):
            counts = transfer_bounded_counts(
                mc_result, station, (0, 1, 2, 3, 4)
            )
            values = [counts[b] for b in (0, 1, 2, 3, 4)]
            assert values == sorted(values)
