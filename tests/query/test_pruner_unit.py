"""Unit tests for DistanceTablePruner internals (paper §4, Theorems
3/4) — in particular the source-station exclusion that guards against
the midnight-wrap unsoundness (see table_query.py comments)."""

import numpy as np
import pytest

from repro.core.spcs import PRUNE_CONNECTION, PRUNE_NODE, PRUNE_NONE
from repro.query.distance_table import build_distance_table
from repro.query.table_query import DistanceTablePruner
from repro.query.transfer_selection import select_transfer_stations


@pytest.fixture(scope="module")
def setup(request):
    graph = request.getfixturevalue("oahu_tiny_graph")
    stations = select_transfer_stations(
        graph.timetable, method="contraction", fraction=0.3
    )
    table = build_distance_table(graph, stations, num_threads=2)
    return graph, table, stations


def _route_node_at(graph, station):
    for node in range(graph.num_stations, graph.num_nodes):
        if graph.node_station[node] == station:
            return node
    raise AssertionError(f"no route node at station {station}")


class TestSourceExclusion:
    def test_source_settles_never_contribute(self, setup):
        graph, table, stations = setup
        source = int(stations[0])  # transfer-station source: the risky case
        target = int(stations[1])
        pruner = DistanceTablePruner(
            graph, table, source, target, (target,), target_pruning=True
        )
        node = _route_node_at(graph, source)
        verdict = pruner.on_settle(node, 0, 480, True)
        assert verdict == PRUNE_NONE
        assert pruner.mu_updates == 0
        assert pruner.final_arrivals == {}

    def test_non_source_transfer_contributes(self, setup):
        graph, table, stations = setup
        source = int(stations[0])
        via = int(stations[1])
        other = int(stations[2])
        pruner = DistanceTablePruner(
            graph, table, source, via, (via,), target_pruning=False
        )
        node = _route_node_at(graph, other)
        pruner.on_settle(node, 0, 480, False)
        assert pruner.mu_updates > 0


class TestPruneDecisions:
    def test_non_transfer_station_ignored(self, setup):
        graph, table, stations = setup
        non_transfer = next(
            s for s in range(graph.num_stations) if not table.contains(s)
        )
        pruner = DistanceTablePruner(
            graph, table, 0, int(stations[0]), (int(stations[0]),)
        )
        node = _route_node_at(graph, non_transfer)
        assert pruner.on_settle(node, 0, 480, True) == PRUNE_NONE
        assert pruner.mu_updates == 0

    def test_via_station_itself_not_pruned(self, setup):
        graph, table, stations = setup
        via = int(stations[1])
        pruner = DistanceTablePruner(
            graph, table, 0, via, (via,), target_pruning=False
        )
        node = _route_node_at(graph, via)
        # At the via station the lower bound is the arrival itself and µ
        # is at least arrival + transfer — never prunable.
        assert pruner.on_settle(node, 0, 480, False) == PRUNE_NONE

    def test_hopeless_node_pruned(self, setup):
        graph, table, stations = setup
        via = int(stations[1])
        other = int(stations[2])
        pruner = DistanceTablePruner(
            graph, table, 0, via, (via,), target_pruning=False
        )
        # Establish a tight µ from the via station itself ...
        pruner.on_settle(_route_node_at(graph, via), 0, 480, False)
        # ... then a much later settle elsewhere must be pruned.
        verdict = pruner.on_settle(_route_node_at(graph, other), 0, 1400, False)
        assert verdict == PRUNE_NODE
        assert pruner.prunes == 1

    def test_target_pruning_needs_valid_gamma(self, setup):
        graph, table, stations = setup
        source = next(
            s for s in range(graph.num_stations) if not table.contains(s)
        )
        target = int(stations[1])
        other = int(stations[2])
        pruner = DistanceTablePruner(
            graph, table, source, target, (target,), target_pruning=True
        )
        node = _route_node_at(graph, other)
        # Without ancestry completeness, never PRUNE_CONNECTION.
        verdict = pruner.on_settle(node, 0, 480, False)
        assert verdict != PRUNE_CONNECTION
        # Settling *at the target* with complete ancestry stops the
        # connection with the recorded arrival.
        target_node = _route_node_at(graph, target)
        verdict = pruner.on_settle(target_node, 0, 490, True)
        assert verdict == PRUNE_CONNECTION
        assert pruner.final_arrivals[0] == 490
