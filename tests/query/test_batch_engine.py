"""Batch engine ≡ one-at-a-time queries, bitwise, on every backend.

The batched engine's whole contract is amortization without semantic
drift: for any workload, kernel and backend, ``query_many`` must return
exactly what a fresh :class:`StationToStationEngine` would answer query
by query — including the target-stopping path (no table), the
distance-table pruning paths (local/global classification, Theorems
3/4) and the trivial/table shortcuts.  "Bitwise" means the profile
arrays compare equal element for element, not merely as functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import parallel_profile_search
from repro.query import (
    BatchQueryEngine,
    StationToStationEngine,
    build_distance_table,
    select_transfer_stations,
)
from repro.synthetic.workloads import random_station_pairs

BACKENDS = ("serial", "threads", "processes")
KERNELS = ("python", "flat")


@pytest.fixture(scope="module")
def table(oahu_tiny, oahu_tiny_graph):
    stations = select_transfer_stations(
        oahu_tiny, method="contraction", fraction=0.3
    )
    return build_distance_table(oahu_tiny_graph, stations, num_threads=2)


@pytest.fixture(scope="module")
def workload(oahu_tiny, table):
    """Random pairs plus hand-picked ones hitting every classification:
    trivial (s == t), table (both transfer stations), and the pruned
    local/global paths."""
    pairs = random_station_pairs(oahu_tiny, 10, seed=7)
    transfer = [int(s) for s in table.transfer_stations]
    pairs.append((3, 3))  # trivial
    if len(transfer) >= 2:
        pairs.append((transfer[0], transfer[1]))  # table shortcut
    if transfer:
        non_transfer = next(
            s
            for s in range(oahu_tiny.num_stations)
            if s not in set(transfer)
        )
        pairs.append((non_transfer, transfer[0]))  # target pruning path
    return pairs


def assert_bitwise_equal(expected, got, context):
    assert got.classification == expected.classification, context
    assert got.profile.period == expected.profile.period, context
    assert np.array_equal(got.profile.deps, expected.profile.deps), context
    assert np.array_equal(got.profile.arrs, expected.profile.arrs), context


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_query_many_with_table_matches_one_at_a_time(
    oahu_tiny_graph, table, workload, backend, kernel
):
    reference = StationToStationEngine(
        oahu_tiny_graph, table, num_threads=2, kernel=kernel
    )
    expected = [reference.query(s, t) for s, t in workload]
    classes = {r.classification for r in expected}
    assert {"trivial", "table"} <= classes, (
        f"workload misses shortcut paths: {classes}"
    )

    engine = BatchQueryEngine(
        oahu_tiny_graph,
        table,
        kernel=kernel,
        backend=backend,
        workers=2,
        num_threads=2,
    )
    batch = engine.query_many(workload)
    assert len(batch) == len(workload)
    for (s, t), exp, got in zip(workload, expected, batch):
        assert_bitwise_equal(
            exp, got, f"{s}->{t} on {backend}/{kernel}"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_query_many_without_table_matches_one_at_a_time(
    oahu_tiny_graph, workload, backend, kernel
):
    """Pure stopping-criterion path (no distance table at all)."""
    reference = StationToStationEngine(
        oahu_tiny_graph, None, num_threads=2, kernel=kernel
    )
    expected = [reference.query(s, t) for s, t in workload]
    engine = BatchQueryEngine(
        oahu_tiny_graph,
        None,
        kernel=kernel,
        backend=backend,
        workers=2,
        num_threads=2,
    )
    for (s, t), exp, got in zip(
        workload, expected, engine.query_many(workload)
    ):
        assert_bitwise_equal(exp, got, f"{s}->{t} on {backend}/{kernel}")


@pytest.mark.parametrize("backend", BACKENDS)
def test_profile_many_matches_parallel_search(
    oahu_tiny_graph, backend
):
    sources = [0, 4, 9]
    expected = [
        parallel_profile_search(oahu_tiny_graph, s, 2, kernel="flat")
        for s in sources
    ]
    engine = BatchQueryEngine(
        oahu_tiny_graph,
        kernel="flat",
        backend=backend,
        workers=2,
        num_threads=2,
    )
    batch = engine.profile_many(sources)
    for s, exp, got in zip(sources, expected, batch):
        assert np.array_equal(got.merged.labels, exp.merged.labels), (
            f"source {s} on {backend}"
        )
        assert np.array_equal(got.merged.conn_deps, exp.merged.conn_deps)


def test_results_come_back_in_submission_order(oahu_tiny_graph, table):
    pairs = [(9, 2), (0, 5), (7, 1), (2, 9)]
    engine = BatchQueryEngine(
        oahu_tiny_graph, table, backend="processes", workers=2, num_threads=1
    )
    batch = engine.query_many(pairs)
    for (s, t), result in zip(pairs, batch):
        assert (result.source, result.target) == (s, t)


def test_batch_stats_accounting(oahu_tiny_graph):
    engine = BatchQueryEngine(oahu_tiny_graph, backend="serial", num_threads=1)
    batch = engine.query_many([(0, 1), (1, 2)])
    stats = batch.stats
    assert stats.num_queries == 2
    assert stats.backend == "serial"
    assert stats.kernel == "flat"
    assert stats.num_workers == 1
    assert stats.total_seconds > 0
    assert stats.queries_per_second > 0
    assert stats.setup_seconds >= 0


def test_single_query_shortcut_reports_effective_backend(oahu_tiny_graph):
    """A ≤1-query batch runs serially whatever was configured; the
    stats must say what actually ran."""
    engine = BatchQueryEngine(
        oahu_tiny_graph, backend="processes", workers=4, num_threads=1
    )
    stats = engine.query_many([(0, 1)]).stats
    assert stats.backend == "serial"
    assert stats.num_workers == 1


def test_invalid_configuration_rejected(oahu_tiny_graph):
    with pytest.raises(ValueError, match="backend"):
        BatchQueryEngine(oahu_tiny_graph, backend="gpu")
    with pytest.raises(ValueError, match="worker"):
        BatchQueryEngine(oahu_tiny_graph, workers=0)
    with pytest.raises(ValueError, match="kernel"):
        BatchQueryEngine(oahu_tiny_graph, kernel="rust")


@pytest.mark.parametrize("backend", BACKENDS)
def test_transit_service_batch_matches_engine(
    oahu_tiny, oahu_tiny_graph, table, workload, backend
):
    """The TransitService facade's batch path must answer exactly what
    a directly constructed BatchQueryEngine answers (same workload,
    same backend, distance table on)."""
    from repro.service import BatchRequest, ServiceConfig, TransitService

    reference = BatchQueryEngine(
        oahu_tiny_graph,
        table,
        kernel="flat",
        backend=backend,
        workers=2,
        num_threads=2,
    )
    expected = reference.query_many(workload)

    service = TransitService(
        oahu_tiny,
        ServiceConfig(
            kernel="flat",
            backend=backend,
            workers=2,
            num_threads=2,
            use_distance_table=True,
            transfer_fraction=0.3,
        ),
    )
    got = service.batch(BatchRequest.from_pairs(workload))
    assert len(got.journeys) == len(workload)
    for (s, t), exp, res in zip(workload, expected, got.journeys):
        assert res.stats.classification == exp.classification, (
            f"{s}->{t} on {backend}"
        )
        assert_bitwise_equal(
            exp,
            type(exp)(
                source=s,
                target=t,
                profile=res.profile,
                classification=res.stats.classification,
                settled_connections=res.stats.settled_connections,
                time_per_thread=[],
                merge_time=0.0,
                total_time=0.0,
            ),
            f"{s}->{t} on {backend}",
        )


def test_batch_engine_reuses_injected_pack(oahu_tiny_graph, monkeypatch):
    """With prepared artifacts injected, constructing batch engines
    over the same dataset packs nothing (satellite: duplicate-packing
    fix)."""
    from repro.graph.td_arrays import packed_arrays
    from repro.graph.station_graph import build_station_graph

    arrays = packed_arrays(oahu_tiny_graph)
    arrays.kernel_adjacency()
    station_graph = build_station_graph(oahu_tiny_graph.timetable)

    def failing_pack(graph):  # pragma: no cover - exercised on failure
        raise AssertionError("injected pack must be reused, not rebuilt")

    # Patch the engines' own fallback lookups (not just pack_td_graph,
    # whose memoized per-graph cache is already warm for this fixture):
    # any code path that ignores the injected arrays trips immediately.
    monkeypatch.setattr(
        "repro.query.table_query.packed_arrays", failing_pack
    )
    monkeypatch.setattr(
        "repro.core.parallel.packed_arrays", failing_pack
    )
    for _ in range(3):
        engine = BatchQueryEngine(
            oahu_tiny_graph,
            kernel="flat",
            backend="serial",
            num_threads=1,
            arrays=arrays,
            station_graph=station_graph,
        )
        batch = engine.query_many([(0, 5)])
        assert len(batch) == 1
        assert engine._engine._arrays is arrays
        assert engine._engine.station_graph is station_graph
        profiles = engine.profile_many([0])
        assert len(profiles) == 1


def test_two_engines_fork_concurrently_without_clobbering(
    oahu_tiny_graph, table
):
    """Regression: fork-worker state used to live under one shared
    module-global key, so two engines fanning out at the same time
    clobbered each other's engine reference (one batch silently ran on
    the other's distance table).  State is now keyed per fan-out and
    each work item carries its own token."""
    from concurrent.futures import ThreadPoolExecutor

    engine_plain = BatchQueryEngine(
        oahu_tiny_graph, None, kernel="flat", backend="processes", workers=2
    )
    engine_table = BatchQueryEngine(
        oahu_tiny_graph, table, kernel="flat", backend="processes", workers=2
    )
    pairs = random_station_pairs(oahu_tiny_graph.timetable, 6, seed=21)

    reference_plain = [
        engine_plain._engine.query(s, t) for s, t in pairs
    ]
    reference_table = [
        engine_table._engine.query(s, t) for s, t in pairs
    ]

    with ThreadPoolExecutor(max_workers=2) as pool:
        fut_plain = pool.submit(engine_plain.query_many, pairs)
        fut_table = pool.submit(engine_table.query_many, pairs)
        got_plain, got_table = fut_plain.result(), fut_table.result()

    for (s, t), exp, got in zip(pairs, reference_plain, got_plain):
        assert_bitwise_equal(exp, got, f"plain engine {s}->{t}")
    for (s, t), exp, got in zip(pairs, reference_table, got_table):
        assert_bitwise_equal(exp, got, f"table engine {s}->{t}")
