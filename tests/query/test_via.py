"""Unit tests for local/via stations (paper §4, Fig. 3)."""

import numpy as np
import pytest

from repro.graph.station_graph import build_station_graph
from repro.query.via import compute_via_stations
from repro.timetable.builder import TimetableBuilder


@pytest.fixture()
def chain_graph():
    """Line network a—b—c—d—e (bidirectional), one train per leg/dir."""
    builder = TimetableBuilder(name="chain")
    ids = [builder.add_station(n) for n in "abcde"]
    t = 100
    for u, v in zip(ids, ids[1:]):
        builder.add_trip([(u, t), (v, t + 10)])
        builder.add_trip([(v, t + 1), (u, t + 11)])
        t += 20
    return build_station_graph(builder.build())


class TestComputeViaStations:
    def test_transfer_target_special_case(self, chain_graph):
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        info = compute_via_stations(chain_graph, 2, mask)
        assert info.local_stations == frozenset()
        assert info.via_stations == frozenset({2})

    def test_separator_found(self, chain_graph):
        # Transfer station c separates {a, b} from {d, e}.
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        info = compute_via_stations(chain_graph, 4, mask)  # target e
        assert info.local_stations == frozenset({3})  # d
        assert info.via_stations == frozenset({2})  # c

    def test_no_transfer_stations_all_local(self, chain_graph):
        mask = np.zeros(5, dtype=bool)
        info = compute_via_stations(chain_graph, 4, mask)
        assert info.via_stations == frozenset()
        assert info.local_stations == frozenset({0, 1, 2, 3})

    def test_multiple_via(self, chain_graph):
        mask = np.zeros(5, dtype=bool)
        mask[1] = mask[3] = True
        info = compute_via_stations(chain_graph, 2, mask)  # target c
        assert info.via_stations == frozenset({1, 3})
        assert info.local_stations == frozenset()

    def test_rejects_bad_mask_shape(self, chain_graph):
        with pytest.raises(ValueError, match="mask"):
            compute_via_stations(chain_graph, 0, np.zeros(3, dtype=bool))

    def test_rejects_unknown_target(self, chain_graph):
        with pytest.raises(ValueError, match="target"):
            compute_via_stations(chain_graph, 99, np.zeros(5, dtype=bool))


class TestClassify:
    def test_local_when_reachable_without_transfer_station(self, chain_graph):
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        info = compute_via_stations(chain_graph, 4, mask)
        assert info.classify(3) == "local"
        assert info.classify(4) == "local"  # target itself

    def test_global_behind_separator(self, chain_graph):
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        info = compute_via_stations(chain_graph, 4, mask)
        assert info.classify(0) == "global"
        assert info.classify(2) == "global"  # the via station itself


def test_via_separates_on_instance(oahu_tiny, oahu_tiny_graph):
    """Every global path must cross a via station: removing via(T) from
    the station graph disconnects all non-local stations from T."""
    from repro.query.transfer_selection import select_transfer_stations

    sg = build_station_graph(oahu_tiny)
    stations = select_transfer_stations(oahu_tiny, method="contraction", fraction=0.25)
    mask = np.zeros(oahu_tiny.num_stations, dtype=bool)
    mask[stations] = True
    target = int(np.nonzero(~mask)[0][0])
    info = compute_via_stations(sg, target, mask)
    blocked = set(info.via_stations)
    # BFS to target on the reverse graph avoiding via stations must stay
    # within local(T) ∪ {T}.
    seen = {target}
    stack = [target]
    while stack:
        s = stack.pop()
        for pred in sg.predecessors(s):
            pred = int(pred)
            if pred not in seen and pred not in blocked:
                seen.add(pred)
                stack.append(pred)
    assert seen - {target} == set(info.local_stations)
