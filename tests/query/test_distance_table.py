"""Unit tests for the profile distance table D (paper §4)."""

import numpy as np
import pytest

from repro.core.spcs import spcs_profile_search
from repro.functions.piecewise import INF_TIME
from repro.query.distance_table import build_distance_table
from repro.query.transfer_selection import select_transfer_stations


@pytest.fixture(scope="module")
def table_setup(request):
    oahu_graph = request.getfixturevalue("oahu_tiny_graph")
    stations = select_transfer_stations(
        oahu_graph.timetable, method="contraction", fraction=0.3
    )
    table = build_distance_table(oahu_graph, stations, num_threads=4)
    return oahu_graph, stations, table


class TestBuildDistanceTable:
    def test_contains(self, table_setup):
        graph, stations, table = table_setup
        for s in stations:
            assert table.contains(int(s))
        non_transfer = set(range(graph.num_stations)) - set(stations.tolist())
        assert all(not table.contains(s) for s in non_transfer)

    def test_entries_match_direct_profile_search(self, table_setup):
        graph, stations, table = table_setup
        for origin in stations.tolist():
            truth = spcs_profile_search(graph, origin)
            for dest in stations.tolist():
                if origin == dest:
                    continue
                assert table.profile_between(origin, dest) == truth.profile(dest)

    def test_self_distance_is_identity(self, table_setup):
        _graph, stations, table = table_setup
        origin = int(stations[0])
        assert table.earliest_arrival(origin, origin, 333) == 333

    def test_evaluation_consistency(self, table_setup):
        graph, stations, table = table_setup
        a, b = int(stations[0]), int(stations[1])
        profile = table.profile_between(a, b)
        for tau in (0, 480, 720, 1300):
            assert table.earliest_arrival(a, b, tau) == profile.earliest_arrival(tau)

    def test_unknown_station_rejected(self, table_setup):
        graph, stations, table = table_setup
        outsider = next(
            s for s in range(graph.num_stations) if not table.contains(s)
        )
        with pytest.raises(KeyError):
            table.earliest_arrival(outsider, int(stations[0]), 0)

    def test_size_accounting(self, table_setup):
        _graph, _stations, table = table_setup
        points = sum(
            len(profile) for row in table.profiles for profile in row
        )
        assert table.size_bytes() == 16 * points
        assert table.size_mib() == pytest.approx(table.size_bytes() / 2**20)

    def test_build_metadata(self, table_setup):
        _graph, stations, table = table_setup
        assert table.num_transfer_stations == stations.size
        assert table.build_seconds > 0
        assert table.build_settled > 0

    def test_rejects_route_node(self, oahu_tiny_graph):
        with pytest.raises(ValueError, match="station"):
            build_distance_table(
                oahu_tiny_graph, [oahu_tiny_graph.num_nodes - 1]
            )

    def test_duplicate_stations_deduplicated(self, oahu_tiny_graph):
        table = build_distance_table(oahu_tiny_graph, [0, 0, 1], num_threads=2)
        assert table.num_transfer_stations == 2
