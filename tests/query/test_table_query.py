"""Unit and property tests for the station-to-station engine (paper §4).

The decisive property: whatever combination of stopping criterion,
distance-table pruning and target pruning is enabled, the answer must
equal the unaccelerated one-to-all profile.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import parallel_profile_search
from repro.graph.td_model import build_td_graph
from repro.query.distance_table import build_distance_table
from repro.query.table_query import StationToStationEngine
from repro.query.transfer_selection import select_transfer_stations

from tests.helpers import random_line_timetable


@pytest.fixture(scope="module")
def oahu_engines(request):
    graph = request.getfixturevalue("oahu_tiny_graph")
    stations = select_transfer_stations(
        graph.timetable, method="contraction", fraction=0.3
    )
    table = build_distance_table(graph, stations, num_threads=4)
    return {
        "graph": graph,
        "table": table,
        "full": StationToStationEngine(graph, table, num_threads=4),
        "plain": StationToStationEngine(graph, None, num_threads=4),
        "no_stop": StationToStationEngine(graph, table, num_threads=4, stopping=False),
    }


class TestCorrectnessOnInstance:
    def test_matches_ground_truth(self, oahu_engines):
        graph = oahu_engines["graph"]
        rng = np.random.default_rng(11)
        for _ in range(25):
            s, t = rng.integers(0, graph.num_stations, 2)
            if s == t:
                continue
            truth = parallel_profile_search(graph, int(s), 4).profile(int(t))
            for engine_name in ("full", "plain", "no_stop"):
                result = oahu_engines[engine_name].query(int(s), int(t))
                assert result.profile == truth, (engine_name, s, t)

    def test_table_shortcut_used_for_transfer_pairs(self, oahu_engines):
        table = oahu_engines["table"]
        a, b = table.transfer_stations[:2].tolist()
        result = oahu_engines["full"].query(a, b)
        assert result.classification == "table"
        assert result.settled_connections == 0

    def test_trivial_query(self, oahu_engines):
        result = oahu_engines["full"].query(3, 3)
        assert result.classification == "trivial"
        assert result.profile.is_empty()

    def test_rejects_route_nodes(self, oahu_engines):
        graph = oahu_engines["graph"]
        with pytest.raises(ValueError, match="station"):
            oahu_engines["full"].query(0, graph.num_nodes - 1)

    def test_pruning_reduces_work_for_global_queries(self, oahu_engines):
        graph = oahu_engines["graph"]
        rng = np.random.default_rng(5)
        with_table = 0
        without = 0
        globals_seen = 0
        for _ in range(30):
            s, t = rng.integers(0, graph.num_stations, 2)
            if s == t:
                continue
            full = oahu_engines["full"].query(int(s), int(t))
            plain = oahu_engines["plain"].query(int(s), int(t))
            if full.classification in ("global", "table"):
                globals_seen += 1
                with_table += full.settled_connections
                without += plain.settled_connections
        assert globals_seen > 0
        assert with_table < without

    def test_stopping_reduces_work(self, oahu_engines):
        graph = oahu_engines["graph"]
        no_stop = oahu_engines["no_stop"]
        full = oahu_engines["full"]
        rng = np.random.default_rng(7)
        stopped_total, unstopped_total = 0, 0
        for _ in range(15):
            s, t = rng.integers(0, graph.num_stations, 2)
            if s == t:
                continue
            stopped_total += full.query(int(s), int(t)).settled_connections
            unstopped_total += no_stop.query(int(s), int(t)).settled_connections
        assert stopped_total <= unstopped_total

    def test_classification_reported(self, oahu_engines):
        graph = oahu_engines["graph"]
        table = oahu_engines["table"]
        non_transfer = [
            s for s in range(graph.num_stations) if not table.contains(s)
        ]
        result = oahu_engines["full"].query(non_transfer[0], non_transfer[-1])
        assert result.classification in ("local", "global")

    def test_simulated_time_accounting(self, oahu_engines):
        result = oahu_engines["full"].query(0, 5)
        if result.time_per_thread:
            assert result.simulated_time == pytest.approx(
                max(result.time_per_thread) + result.merge_time
            )

    def test_earliest_arrival_convenience(self, oahu_engines):
        result = oahu_engines["full"].query(0, 5)
        assert result.earliest_arrival(480) == result.profile.earliest_arrival(480)


class TestPropertyRandomNetworks:
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=400))
    def test_engine_matches_truth_on_random_networks(self, seed):
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=10, num_lines=5)
        )
        stations = select_transfer_stations(
            graph.timetable, method="contraction", fraction=0.3
        )
        table = (
            build_distance_table(graph, stations, num_threads=2)
            if stations.size
            else None
        )
        engine = StationToStationEngine(graph, table, num_threads=2)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            s, t = rng.integers(0, graph.num_stations, 2)
            if s == t:
                continue
            truth = parallel_profile_search(graph, int(s), 2).profile(int(t))
            answer = engine.query(int(s), int(t))
            assert answer.profile == truth, (seed, s, t, answer.classification)

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=400))
    def test_target_pruning_correct_for_transfer_targets(self, seed):
        """Queries *to* a transfer station exercise Theorem 4."""
        graph = build_td_graph(
            random_line_timetable(seed, num_stations=9, num_lines=5)
        )
        stations = select_transfer_stations(
            graph.timetable, method="contraction", fraction=0.35
        )
        if stations.size == 0:
            return
        table = build_distance_table(graph, stations, num_threads=2)
        engine = StationToStationEngine(graph, table, num_threads=2)
        non_transfer = [
            s for s in range(graph.num_stations) if not table.contains(s)
        ]
        for s in non_transfer[:4]:
            for t in stations.tolist()[:4]:
                truth = parallel_profile_search(graph, s, 2).profile(t)
                answer = engine.query(s, t)
                assert answer.profile == truth, (seed, s, t)


class TestEngineConfiguration:
    def test_table_pruning_flag(self, oahu_tiny_graph):
        engine = StationToStationEngine(oahu_tiny_graph, None)
        assert not engine.table_pruning
        assert not engine.target_pruning

    def test_classify_trivial(self, oahu_tiny_graph):
        engine = StationToStationEngine(oahu_tiny_graph, None)
        assert engine.classify(2, 2)[0] == "trivial"
