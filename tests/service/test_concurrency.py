"""Concurrent mixed-shape traffic against ONE service instance.

The server (``repro.server``) answers all traffic for a dataset
through a single shared :class:`TransitService` on a worker-thread
pool — so the facade's result cache, the shared
:class:`StationToStationEngine`, the lazily-built batch engine, and
the per-target via cache must all tolerate concurrent callers without
changing a single answer.  This suite pins exactly that: N threads
issuing interleaved profile / journey / batch requests must produce
answers bitwise-identical to serial execution of the same workload.
"""

from __future__ import annotations

import random
import threading

import numpy as np

from repro.query.batch import BatchQueryEngine
from repro.service import (
    BatchRequest,
    BatchResponse,
    JourneyResult,
    ProfileResult,
    ServiceConfig,
    TransitService,
)

#: Distance table on: concurrent queries exercise classification, the
#: via cache and both pruning theorems, not just plain searches.
CONFIG = ServiceConfig(
    num_threads=2,
    use_distance_table=True,
    transfer_fraction=0.25,
    result_cache_size=32,
)

NUM_THREADS = 8
OPS_PER_THREAD = 18


def _workload(num_stations: int, seed: int):
    """A deterministic mixed op stream; repeated ops (same request
    twice) are included on purpose so cache hits happen concurrently."""
    rng = random.Random(seed)
    ops = []
    for _ in range(NUM_THREADS * OPS_PER_THREAD // 2):
        kind = rng.choice(("profile", "journey", "journey", "batch"))
        if kind == "profile":
            ops.append(("profile", rng.randrange(num_stations)))
        elif kind == "journey":
            source = rng.randrange(num_stations)
            target = rng.randrange(num_stations)
            departure = rng.choice((None, 480, 600))
            ops.append(("journey", (source, target, departure)))
        else:
            pairs = tuple(
                (rng.randrange(num_stations), rng.randrange(num_stations))
                for _ in range(3)
            )
            ops.append(("batch", pairs))
    ops = ops * 2  # every op appears twice → concurrent cache hits
    rng.shuffle(ops)
    return ops


def _run_op(service: TransitService, op):
    kind, arg = op
    if kind == "profile":
        return service.profile(arg)
    if kind == "journey":
        source, target, departure = arg
        return service.journey(source, target, departure=departure)
    return service.batch(BatchRequest.from_pairs(list(arg)))


def _assert_profiles_equal(got, expected, context):
    assert np.array_equal(got.deps, expected.deps), context
    assert np.array_equal(got.arrs, expected.arrs), context


def _assert_answers_equal(got, expected, op):
    if isinstance(expected, ProfileResult):
        assert isinstance(got, ProfileResult)
        for station in range(12):
            if station == expected.source:
                continue
            _assert_profiles_equal(
                got.profile(station), expected.profile(station), (op, station)
            )
    elif isinstance(expected, JourneyResult):
        assert isinstance(got, JourneyResult)
        _assert_profiles_equal(got.profile, expected.profile, op)
        assert got.arrival == expected.arrival, op
        assert got.legs == expected.legs, op
        assert got.stats.classification == expected.stats.classification, op
    else:
        assert isinstance(expected, BatchResponse)
        for got_j, exp_j in zip(got.journeys, expected.journeys):
            _assert_profiles_equal(got_j.profile, exp_j.profile, op)


def test_concurrent_mixed_traffic_matches_serial(oahu_tiny):
    shared = TransitService(oahu_tiny, CONFIG)
    serial = TransitService(oahu_tiny, CONFIG)
    ops = _workload(oahu_tiny.num_stations, seed=7)

    # Serial oracle first (separate service; equal config + timetable
    # ⇒ identical answers, pinned by the facade suite).
    expected = [_run_op(serial, op) for op in ops]

    # The same ops, interleaved across N threads against ONE service.
    slices = [ops[i::NUM_THREADS] for i in range(NUM_THREADS)]
    indices = [list(range(i, len(ops), NUM_THREADS)) for i in range(NUM_THREADS)]
    results: dict[int, object] = {}
    errors: list[BaseException] = []
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_slice, thread_indices):
        try:
            barrier.wait()
            for op, index in zip(thread_slice, thread_indices):
                results[index] = _run_op(shared, op)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(s, ix))
        for s, ix in zip(slices, indices)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, f"concurrent query raised: {errors[0]!r}"
    assert len(results) == len(ops)

    for index, op in enumerate(ops):
        _assert_answers_equal(results[index], expected[index], op)

    # The duplicated workload must have produced concurrent cache hits
    # (otherwise this test exercised less than the server does).
    assert shared.cache_stats.hits > 0


def test_concurrent_first_batches_share_one_engine(oahu_tiny):
    """The lazily-built batch engine must be constructed exactly once
    even when the first batch calls race (the server's executor can
    issue them from several worker threads at once)."""
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
    built = []
    original_init = BatchQueryEngine.__post_init__

    def counting_init(self):
        built.append(object())
        return original_init(self)

    BatchQueryEngine.__post_init__ = counting_init
    try:
        barrier = threading.Barrier(4)

        def first_batch(offset):
            barrier.wait()
            service.batch([(offset, offset + 5)])

        threads = [
            threading.Thread(target=first_batch, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        BatchQueryEngine.__post_init__ = original_init
    assert len(built) == 1, f"{len(built)} batch engines built, want 1"
