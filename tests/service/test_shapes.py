"""Oracle equivalence for the served request shapes (the query zoo).

The tentpole contract of ``repro.shapes``: promoting multicriteria,
via and min-transfers queries to served shapes must not fork any query
logic.  Every facade answer is therefore pinned against the standalone
implementations it wraps:

* ``multicriteria`` fronts against the layered transfer-bounded
  Dijkstra oracle (:func:`repro.baselines.mc_time_query`), over a
  seeded grid of 20+ (instance, source, departure) cells — including
  tie and domination edge cases the Pareto merge must get right;
* ``via`` against two chained earliest-arrival journeys through the
  facade's own ``journey`` path;
* ``min_transfers`` against the head of the §6 search's Pareto front.

Plus the dynamic half: after a hot ``apply_delays`` swap, every shape
must answer exactly like a *cold* service built over the delayed
timetable — under concurrent query traffic.
"""

from __future__ import annotations

import threading

import pytest

from repro.baselines.mc_time_query import mc_time_query
from repro.core.multicriteria import mc_profile_search
from repro.functions.piecewise import INF_TIME
from repro.service import (
    JourneyRequest,
    MinTransfersRequest,
    MulticriteriaRequest,
    ServiceConfig,
    TransitService,
    ViaRequest,
)
from repro.timetable.delays import Delay, apply_delays

CONFIG = ServiceConfig(
    num_threads=2, use_distance_table=True, transfer_fraction=0.25
)

#: The seeded equivalence grid: (source, departure) cells per
#: instance.  Together with the two instances below this is a 24-cell
#: oracle sweep (the acceptance bar asks for 20+), mixing peak/
#: off-peak anchors, late-evening wrap-around and the source==target
#: degenerate cell.
GRID = [
    (0, 300),
    (0, 480),
    (2, 480),
    (2, 1020),
    (3, 0),
    (5, 700),
    (7, 480),
    (7, 1380),
    (9, 60),
    (1, 900),
    (4, 480),
    (6, 1140),
]


@pytest.fixture(scope="module")
def oahu_service(oahu_tiny):
    return TransitService(oahu_tiny, CONFIG)


@pytest.fixture(scope="module")
def germany_service(germany_tiny):
    return TransitService(germany_tiny, CONFIG)


def services(request):
    """Both seeded instances, resolved lazily per test."""
    return (
        request.getfixturevalue("oahu_service"),
        request.getfixturevalue("germany_service"),
    )


# ---------------------------------------------------------------------------
# Multicriteria fronts vs the layered Dijkstra oracle
# ---------------------------------------------------------------------------


class TestMulticriteriaOracle:
    @pytest.mark.parametrize("source,departure", GRID)
    def test_front_matches_mc_time_query(
        self, request, source, departure
    ):
        for service in services(request):
            n = service.timetable.num_stations
            src = source % n
            oracle = mc_time_query(
                service.prepared.graph, src, departure, max_transfers=5
            )
            for target in range(n):
                if target == src:
                    continue
                result = service.multicriteria(
                    MulticriteriaRequest(src, target, departure)
                )
                expected = oracle.pareto_front(target)
                got = [(o.transfers, o.arrival) for o in result.options]
                assert got == expected, (
                    service.timetable.name, src, target, departure
                )

    def test_front_is_strictly_dominating(self, oahu_service):
        """Domination edge case: no front entry may be weakly beaten
        by another (equal arrival at higher transfer count, or equal
        transfers at later arrival, must have been merged away)."""
        for source, departure in GRID:
            for target in range(12):
                if target == source:
                    continue
                result = oahu_service.multicriteria(
                    MulticriteriaRequest(source, target, departure)
                )
                opts = [(o.transfers, o.arrival) for o in result.options]
                ks = [k for k, _ in opts]
                arrs = [a for _, a in opts]
                assert ks == sorted(set(ks)), opts
                assert arrs == sorted(set(arrs), reverse=True), opts

    def test_source_equals_target(self, oahu_service):
        result = oahu_service.multicriteria(
            MulticriteriaRequest(4, 4, 480)
        )
        assert [(o.transfers, o.arrival) for o in result.options] == [
            (0, 480)
        ]
        assert result.legs == ()

    def test_legs_realize_the_fastest_option(self, oahu_service):
        result = oahu_service.multicriteria(
            MulticriteriaRequest(2, 5, 480)
        )
        assert result.reachable
        if result.legs:
            assert result.legs[0].from_station == 2
            assert result.legs[-1].to_station == 5
            assert result.legs[-1].arrival == result.best_arrival
            assert len(result.legs) - 1 <= result.max_transfers
            for prev, nxt in zip(result.legs, result.legs[1:]):
                assert prev.to_station == nxt.from_station
                assert prev.arrival <= nxt.departure

    def test_tight_budget_shrinks_or_empties_the_front(
        self, oahu_service
    ):
        wide = oahu_service.multicriteria(
            MulticriteriaRequest(2, 5, 480, max_transfers=5)
        )
        tight = oahu_service.multicriteria(
            MulticriteriaRequest(2, 5, 480, max_transfers=0)
        )
        assert len(tight.options) <= len(wide.options)
        oracle = mc_time_query(
            oahu_service.prepared.graph, 2, 480, max_transfers=0
        )
        assert [
            (o.transfers, o.arrival) for o in tight.options
        ] == oracle.pareto_front(5)


# ---------------------------------------------------------------------------
# Via vs two chained earliest-arrival journeys
# ---------------------------------------------------------------------------


class TestViaOracle:
    @pytest.mark.parametrize("source,departure", GRID)
    def test_matches_chained_journeys(self, request, source, departure):
        for service in services(request):
            n = service.timetable.num_stations
            src = source % n
            via = (src + 3) % n
            target = (src + 7) % n
            result = service.via(ViaRequest(src, via, target, departure))
            first = service.journey(JourneyRequest(src, via, departure))
            expected_via = (
                departure if via == src
                else first.profile.earliest_arrival(departure)
            )
            assert result.via_arrival == expected_via
            if expected_via >= INF_TIME or via == target:
                assert result.arrival == (
                    INF_TIME if expected_via >= INF_TIME else expected_via
                )
            else:
                second = service.journey(
                    JourneyRequest(via, target, expected_via)
                )
                assert result.arrival == second.profile.earliest_arrival(
                    expected_via
                )

    def test_legs_pass_through_the_via(self, oahu_service):
        result = oahu_service.via(ViaRequest(2, 5, 7, 480))
        assert result.reachable
        assert result.legs is not None
        stations = [result.legs[0].from_station] + [
            leg.to_station for leg in result.legs
        ]
        assert stations[0] == 2
        assert stations[-1] == 7
        assert 5 in stations
        boundary = next(
            i for i, leg in enumerate(result.legs)
            if leg.arrival == result.via_arrival
            and leg.to_station == 5
        )
        assert result.legs[boundary].arrival == result.via_arrival

    def test_degenerate_hops(self, oahu_service):
        same_via = oahu_service.via(ViaRequest(2, 2, 5, 480))
        direct = oahu_service.journey(JourneyRequest(2, 5, 480))
        assert same_via.via_arrival == 480
        assert same_via.arrival == direct.profile.earliest_arrival(480)
        via_is_target = oahu_service.via(ViaRequest(2, 5, 5, 480))
        assert via_is_target.arrival == via_is_target.via_arrival


# ---------------------------------------------------------------------------
# Min-transfers vs the front head
# ---------------------------------------------------------------------------


class TestMinTransfersOracle:
    @pytest.mark.parametrize("source,departure", GRID)
    def test_matches_front_head(self, request, source, departure):
        for service in services(request):
            n = service.timetable.num_stations
            src = source % n
            raw = mc_profile_search(
                service.prepared.graph,
                src,
                max_transfers=5,
                self_pruning=service.config.self_pruning,
                queue=service.config.queue,
            )
            for target in range(n):
                if target == src:
                    continue
                result = service.min_transfers(
                    MinTransfersRequest(src, target, departure)
                )
                front = raw.pareto_front(target, departure)
                if front:
                    assert (result.transfers, result.arrival) == front[0]
                else:
                    assert result.transfers is None
                    assert result.arrival == INF_TIME

    def test_legs_realize_the_transfer_count(self, oahu_service):
        result = oahu_service.min_transfers(
            MinTransfersRequest(2, 5, 480)
        )
        assert result.reachable
        if result.legs is not None:
            assert len(result.legs) - 1 == result.transfers
            assert result.legs[-1].arrival == result.arrival

    def test_shares_the_search_with_multicriteria(self, oahu_tiny):
        """One (source, budget) search serves both shapes: the second
        call must not re-run the §6 search."""
        service = TransitService(oahu_tiny, CONFIG)
        service.multicriteria(MulticriteriaRequest(2, 5, 480))
        before = service.cache_stats.misses
        service.min_transfers(MinTransfersRequest(2, 9, 480))
        after = service.cache_stats.misses
        # The raw-search entry is already cached; only the new typed
        # request itself misses.
        assert after - before == 1


# ---------------------------------------------------------------------------
# Hot swap: post-swap answers equal a cold delayed rebuild
# ---------------------------------------------------------------------------


DELAYS = [Delay(train=0, minutes=45), Delay(train=3, minutes=20)]


def _answers(service):
    mc = service.multicriteria(MulticriteriaRequest(2, 5, 480))
    via = service.via(ViaRequest(2, 5, 7, 480))
    mt = service.min_transfers(MinTransfersRequest(2, 9, 480))
    return (
        tuple((o.transfers, o.arrival) for o in mc.options),
        mc.legs,
        (via.via_arrival, via.arrival, via.legs),
        (mt.transfers, mt.arrival, mt.legs),
    )


class TestHotSwapEquivalence:
    def test_swap_equals_cold_delayed_oracle(self, oahu_tiny):
        hot = TransitService(oahu_tiny, CONFIG)
        _answers(hot)  # warm the caches pre-swap
        swapped = hot.apply_delays(DELAYS)
        cold = TransitService(apply_delays(oahu_tiny, DELAYS), CONFIG)
        assert _answers(swapped) == _answers(cold)

    def test_swap_under_concurrent_traffic(self, oahu_tiny):
        """Queries racing the swap see either generation's answers,
        never a torn mix; post-swap answers equal the cold oracle."""
        service = TransitService(oahu_tiny, CONFIG)
        before = _answers(service)
        cold = TransitService(apply_delays(oahu_tiny, DELAYS), CONFIG)
        after = _answers(cold)
        holder = {"service": service}
        stop = threading.Event()
        failures: list = []

        def traffic():
            while not stop.is_set():
                got = _answers(holder["service"])
                if got not in (before, after):
                    failures.append(got)
                    return

        threads = [threading.Thread(target=traffic) for _ in range(3)]
        for t in threads:
            t.start()
        holder["service"] = holder["service"].apply_delays(DELAYS)
        stop.set()
        for t in threads:
            t.join()
        assert not failures
        assert _answers(holder["service"]) == after
