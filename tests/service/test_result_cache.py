"""Per-service LRU result cache: hits are the same answers, eviction
is bounded, and delay replanning starts cold (the invalidation the
dynamic scenario needs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import (
    BatchRequest,
    JourneyRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.service.cache import LRUResultCache
from repro.timetable.delays import Delay, apply_delays


class TestLRUResultCache:
    def test_get_put_and_stats(self):
        cache = LRUResultCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_zero_size_disables(self):
        cache = LRUResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LRUResultCache(-1)

    def test_clear(self):
        cache = LRUResultCache(4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None

    def test_concurrent_len_contains_under_eviction_churn(self):
        """Hammer ``len(cache)`` / ``in`` from reader threads while
        writers continually put-and-evict: every read must observe a
        consistent dict (no internal errors) and a size within bounds.

        Before `__len__`/`__contains__` took the lock, readers could
        catch the OrderedDict mid-mutation between ``put``'s insert and
        its eviction pop."""
        import threading

        cache = LRUResultCache(8)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer(offset: int) -> None:
            i = 0
            while not stop.is_set():
                cache.put((offset, i % 64), i)
                i += 1

        def reader() -> None:
            try:
                while not stop.is_set():
                    # put() inserts and evicts under one lock hold, so
                    # a locked len() can never see the overfull dict.
                    size = len(cache)
                    assert 0 <= size <= 8, size
                    (0, 3) in cache  # noqa: B015 — exercised for safety
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
                stop.set()

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(2)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop.wait(timeout=1.0)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not errors, errors
        assert len(cache) <= 8


class TestServiceResultCache:
    def test_repeated_requests_hit_every_shape(self, oahu_tiny):
        """A hit shares the heavy payload with the stored entry (no
        recomputation) and is marked ``cache_hit=True``; the stored
        entry itself stays unmarked."""
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        assert service.cache_stats.maxsize == 128

        p1, p2 = service.profile(0), service.profile(0)
        assert p2.raw is p1.raw
        assert p2.stats.cache_hit and not p1.stats.cache_hit
        j1 = service.journey(0, 5)
        j2 = service.journey(JourneyRequest(0, 5))
        assert j2.profile is j1.profile
        assert j2.stats.cache_hit and not j1.stats.cache_hit
        b1 = service.batch([(0, 5), (1, 6)])
        b2 = service.batch(BatchRequest.from_pairs([(0, 5), (1, 6)]))
        assert b2.stats is b1.stats
        assert [h.profile for h in b2.journeys] == [
            j.profile for j in b1.journeys
        ]
        assert all(h.stats.cache_hit for h in b2.journeys)
        assert not any(j.stats.cache_hit for j in b1.journeys)

        stats = service.cache_stats
        assert stats.hits == 3
        assert stats.misses == 3

    def test_journey_many_shares_the_per_request_cache(self, oahu_tiny):
        """The micro-batched serving path: grouped journeys consult and
        populate the same per-request entries single journeys use, and
        answers match one-at-a-time execution exactly."""
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        single = service.journey(0, 5)

        group = service.journey_many(
            [JourneyRequest(0, 5), JourneyRequest(1, 6, 480)]
        )
        # (0, 5) was cached by the single call; (1, 6) is fresh.
        assert group[0].stats.cache_hit
        assert group[0].profile is single.profile
        assert not group[1].stats.cache_hit

        # The fresh answer was cached under its own key...
        again = service.journey(JourneyRequest(1, 6, 480))
        assert again.stats.cache_hit
        assert again.profile is group[1].profile
        # ...and matches one-at-a-time execution bitwise.
        direct = TransitService(
            oahu_tiny, ServiceConfig(num_threads=2)
        ).journey(1, 6, departure=480)
        assert np.array_equal(group[1].profile.deps, direct.profile.deps)
        assert np.array_equal(group[1].profile.arrs, direct.profile.arrs)
        assert group[1].arrival == direct.arrival
        assert group[1].legs == direct.legs

    def test_hits_never_mutate_the_stored_entry(self, oahu_tiny):
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        service.journey(0, 5)
        service.journey(0, 5)
        third = service.journey(0, 5)
        # Were the stored entry marked in place, its timings/flags
        # would drift; every hit must look the same.
        assert third.stats.cache_hit
        assert service.cache_stats.hits == 2

    def test_distinct_requests_miss(self, oahu_tiny):
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        service.journey(0, 5)
        service.journey(0, 6)
        service.journey(0, 5, departure=480)  # departure is part of the key
        assert service.cache_stats.hits == 0
        assert service.cache_stats.misses == 3

    def test_profile_thread_override_is_part_of_the_key(self, oahu_tiny):
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=1))
        a = service.profile(ProfileRequest(0, num_threads=1))
        b = service.profile(ProfileRequest(0, num_threads=3))
        assert b is not a
        assert b.stats.num_threads == 3

    def test_cache_size_zero_disables(self, oahu_tiny):
        service = TransitService(
            oahu_tiny, ServiceConfig(result_cache_size=0)
        )
        assert service.journey(0, 5) is not service.journey(0, 5)
        assert service.cache_stats.size == 0

    def test_eviction_respects_configured_size(self, oahu_tiny):
        service = TransitService(
            oahu_tiny, ServiceConfig(result_cache_size=2)
        )
        first = service.journey(0, 5)
        service.journey(0, 6)
        service.journey(0, 7)  # evicts (0, 5)
        again = service.journey(0, 5)
        assert again is not first
        assert service.cache_stats.size == 2

    def test_apply_delays_invalidates(self, oahu_tiny):
        """Answers cached on the original service never leak into the
        delayed one; the delayed answer matches a cold service on the
        delayed timetable."""
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        delays = [Delay(train=0, minutes=45)]
        # Warm the original cache on a pair the delay affects.
        pairs = [(s, t) for s in range(4) for t in range(4, 8)]
        for s, t in pairs:
            service.journey(s, t)
        delayed = service.apply_delays(delays)
        assert delayed.cache_stats.size == 0

        cold = TransitService(
            apply_delays(oahu_tiny, delays), ServiceConfig(num_threads=2)
        )
        changed = 0
        for s, t in pairs:
            original = service.journey(s, t).profile
            got = delayed.journey(s, t).profile
            expected = cold.journey(s, t).profile
            assert np.array_equal(got.deps, expected.deps), (s, t)
            assert np.array_equal(got.arrs, expected.arrs), (s, t)
            if not (
                np.array_equal(got.deps, original.deps)
                and np.array_equal(got.arrs, original.arrs)
            ):
                changed += 1
        assert changed > 0, "delay workload did not change any answer"
        # The original service still serves its own (cached) answers.
        assert service.cache_stats.hits >= len(pairs)

    def test_cached_results_equal_fresh_computation(self, oahu_tiny):
        cached_service = TransitService(oahu_tiny, ServiceConfig())
        uncached_service = TransitService(
            oahu_tiny, ServiceConfig(result_cache_size=0)
        )
        for _ in range(2):
            got = cached_service.journey(2, 7)
            fresh = uncached_service.journey(2, 7)
            assert np.array_equal(got.profile.deps, fresh.profile.deps)
            assert np.array_equal(got.profile.arrs, fresh.profile.arrs)

    def test_runtime_overrides_share_prepared_but_not_cache(self, oahu_tiny):
        service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
        service.journey(0, 5)
        sibling = service.with_runtime_overrides(workers=2, backend="threads")
        assert sibling.prepared is service.prepared
        assert sibling.config.workers == 2
        assert sibling.cache_stats.size == 0
        with pytest.raises(ValueError, match="not runtime-overridable"):
            service.with_runtime_overrides(kernel="python")
        with pytest.raises(ValueError, match="not runtime-overridable"):
            service.with_runtime_overrides(use_distance_table=True)
