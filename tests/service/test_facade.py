"""Equivalence + prepare-once guarantees of the TransitService facade.

Two contracts:

1. **Answer equivalence** — for any dataset and config, the facade's
   profile / journey / batch answers are bitwise-identical to the
   pre-facade entry points (``parallel_profile_search``,
   ``StationToStationEngine``, ``BatchQueryEngine``) it wraps.
2. **Prepare-once** — the expensive artifacts (graph pack, station
   graph, distance table) are built at most once per service instance,
   asserted via call counters on the underlying constructors.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.service.prepare as prepare_mod
from repro.core.parallel import parallel_profile_search
from repro.graph.station_graph import build_station_graph
from repro.graph.td_arrays import pack_td_graph
from repro.graph.td_model import build_td_graph
from repro.query.batch import BatchQueryEngine
from repro.query.distance_table import build_distance_table
from repro.query.table_query import StationToStationEngine
from repro.query.transfer_selection import select_transfer_stations
from repro.service import (
    BatchRequest,
    JourneyRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.synthetic.workloads import random_station_pairs

from tests.helpers import random_line_timetable

KERNELS = ("python", "flat")


def assert_profiles_bitwise_equal(expected, got, context=""):
    assert got.period == expected.period, context
    assert np.array_equal(got.deps, expected.deps), context
    assert np.array_equal(got.arrs, expected.arrs), context


# ---------------------------------------------------------------------------
# Answer equivalence vs the pre-facade paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
def test_profile_matches_parallel_profile_search(oahu_tiny, kernel):
    service = TransitService(
        oahu_tiny, ServiceConfig(kernel=kernel, num_threads=2)
    )
    graph = build_td_graph(oahu_tiny)
    for source in (0, 4, 9):
        expected = parallel_profile_search(
            graph, source, 2, kernel=kernel
        )
        got = service.profile(source)
        assert (
            got.stats.settled_connections
            == expected.stats.settled_connections
        )
        for target in range(oahu_tiny.num_stations):
            assert_profiles_bitwise_equal(
                expected.profile(target),
                got.profile(target),
                f"{source}->{target} [{kernel}]",
            )


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("with_table", (False, True), ids=["plain", "table"])
def test_journey_matches_station_to_station_engine(
    oahu_tiny, oahu_tiny_graph, kernel, with_table
):
    config = ServiceConfig(
        kernel=kernel,
        num_threads=2,
        use_distance_table=with_table,
        transfer_fraction=0.3,
    )
    service = TransitService.from_graph(oahu_tiny_graph, config)
    table = None
    if with_table:
        stations = select_transfer_stations(
            oahu_tiny, method="contraction", fraction=0.3
        )
        table = build_distance_table(
            oahu_tiny_graph, stations, num_threads=2
        )
    reference = StationToStationEngine(
        oahu_tiny_graph, table, num_threads=2, kernel=kernel
    )
    pairs = random_station_pairs(oahu_tiny, 8, seed=11) + [(3, 3)]
    for s, t in pairs:
        expected = reference.query(s, t)
        got = service.journey(s, t)
        assert got.stats.classification == expected.classification
        assert (
            got.stats.settled_connections == expected.settled_connections
        )
        assert_profiles_bitwise_equal(
            expected.profile, got.profile, f"{s}->{t}"
        )


@pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
def test_batch_matches_batch_query_engine(oahu_tiny_graph, backend):
    config = ServiceConfig(
        kernel="flat", num_threads=2, backend=backend, workers=2
    )
    service = TransitService.from_graph(oahu_tiny_graph, config)
    reference = BatchQueryEngine(
        oahu_tiny_graph,
        None,
        kernel="flat",
        backend=backend,
        workers=2,
        num_threads=2,
    )
    pairs = random_station_pairs(oahu_tiny_graph.timetable, 6, seed=3)
    sources = [0, 5]
    expected_j = reference.query_many(pairs)
    expected_p = reference.profile_many(sources)
    got = service.batch(
        BatchRequest(
            journeys=tuple(JourneyRequest(s, t) for s, t in pairs),
            profiles=tuple(ProfileRequest(s) for s in sources),
        )
    )
    assert len(got.journeys) == len(pairs)
    assert len(got.profiles) == len(sources)
    assert got.stats.num_queries == len(pairs) + len(sources)
    for (s, t), exp, res in zip(pairs, expected_j, got.journeys):
        assert res.stats.classification == exp.classification
        assert_profiles_bitwise_equal(
            exp.profile, res.profile, f"{s}->{t} on {backend}"
        )
    for s, exp, res in zip(sources, expected_p, got.profiles):
        assert np.array_equal(res.raw.merged.labels, exp.merged.labels), (
            f"source {s} on {backend}"
        )


def test_batch_accepts_raw_pairs(oahu_tiny):
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=1))
    result = service.batch([(0, 5), (2, 7)])
    assert len(result.journeys) == 2
    assert result.journeys[0].source == 0
    assert result.journeys[0].target == 5


def test_facade_equivalence_on_random_instances():
    """Seeded random instances (different shape than the fixtures):
    facade == pre-facade paths, both kernels."""
    for seed in (1, 2):
        timetable = random_line_timetable(
            1000 * seed + 17, num_stations=8, num_lines=5
        )
        graph = build_td_graph(timetable)
        engine = StationToStationEngine(graph, None, num_threads=2)
        service = TransitService.from_graph(
            graph, ServiceConfig(kernel="flat", num_threads=2)
        )
        for s, t in random_station_pairs(timetable, 5, seed=seed):
            assert_profiles_bitwise_equal(
                engine.query(s, t).profile,
                service.journey(s, t).profile,
                f"seed {seed}: {s}->{t}",
            )


# ---------------------------------------------------------------------------
# Journey legs
# ---------------------------------------------------------------------------


def test_journey_legs_chain_and_match_profile(oahu_tiny):
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
    departure = 7 * 60
    checked = 0
    for s, t in random_station_pairs(oahu_tiny, 6, seed=5):
        res = service.journey(s, t, departure=departure)
        assert res.departure == departure
        expected_arrival = res.profile.earliest_arrival(departure)
        assert res.arrival == expected_arrival
        if res.legs:
            assert res.legs[0].from_station == s
            assert res.legs[-1].to_station == t
            assert res.legs[0].departure == departure
            assert res.legs[-1].arrival == expected_arrival
            for a, b in zip(res.legs, res.legs[1:]):
                assert a.arrival == b.departure
                assert a.to_station == b.from_station
            checked += 1
    assert checked > 0, "workload produced no multi-leg journeys to check"


def test_trivial_journey_has_empty_legs(oahu_tiny):
    service = TransitService(oahu_tiny)
    res = service.journey(3, 3, departure=100)
    assert res.legs == ()
    assert res.arrival == 100
    assert res.stats.classification == "trivial"


# ---------------------------------------------------------------------------
# Prepare-once guarantees
# ---------------------------------------------------------------------------


def test_artifacts_built_at_most_once(oahu_tiny, monkeypatch):
    counters = {"pack": 0, "station_graph": 0, "table": 0}

    def counting_pack(graph):
        counters["pack"] += 1
        return pack_td_graph(graph)

    def counting_station_graph(timetable):
        counters["station_graph"] += 1
        return build_station_graph(timetable)

    def counting_table(graph, stations, **kwargs):
        counters["table"] += 1
        return build_distance_table(graph, stations, **kwargs)

    # Patch what prepare_dataset actually calls: packed_arrays'
    # memoized cache consults pack_td_graph on miss.
    monkeypatch.setattr(
        "repro.graph.td_arrays.pack_td_graph", counting_pack
    )
    monkeypatch.setattr(
        prepare_mod, "build_station_graph", counting_station_graph
    )
    monkeypatch.setattr(
        prepare_mod, "build_distance_table", counting_table
    )

    service = TransitService(
        oahu_tiny,
        ServiceConfig(
            kernel="flat",
            num_threads=2,
            use_distance_table=True,
            transfer_fraction=0.3,
        ),
    )
    # Exercise every query path several times.
    service.profile(0)
    service.profile(1)
    service.journey(0, 5)
    service.journey(2, 7)
    service.batch([(0, 5), (1, 6)])
    service.batch(BatchRequest.from_sources([0, 3]))

    assert counters["pack"] == 1, "graph packed more than once"
    assert counters["station_graph"] == 1, "station graph rebuilt"
    assert counters["table"] == 1, "distance table rebuilt"


def test_engines_share_the_prepared_pack(oahu_tiny):
    service = TransitService(
        oahu_tiny, ServiceConfig(kernel="flat", num_threads=1)
    )
    prepared = service.prepared
    assert service._engine._arrays is prepared.arrays
    batch_engine = service._batch()
    assert batch_engine._engine._arrays is prepared.arrays
    assert batch_engine._engine.station_graph is prepared.station_graph


def test_python_kernel_never_packs(oahu_tiny, monkeypatch):
    def failing_pack(graph):  # pragma: no cover - exercised on failure
        raise AssertionError("python kernel must not pack")

    monkeypatch.setattr(
        "repro.graph.td_arrays.pack_td_graph", failing_pack
    )
    service = TransitService(
        oahu_tiny, ServiceConfig(kernel="python", num_threads=1)
    )
    assert service.prepared.arrays is None
    service.profile(0)
    service.journey(0, 5)


# ---------------------------------------------------------------------------
# Config validation and stats plumbing
# ---------------------------------------------------------------------------


def test_invalid_configs_rejected_eagerly():
    with pytest.raises(ValueError, match="kernel"):
        ServiceConfig(kernel="gpu")
    with pytest.raises(ValueError, match="backend"):
        ServiceConfig(backend="mpi")
    with pytest.raises(ValueError, match="strategy"):
        ServiceConfig(strategy="round-robin")
    with pytest.raises(ValueError, match="queue"):
        ServiceConfig(queue="fib")
    with pytest.raises(ValueError, match="selection"):
        ServiceConfig(transfer_selection="random")
    with pytest.raises(ValueError, match="thread"):
        ServiceConfig(num_threads=0)
    with pytest.raises(ValueError, match="worker"):
        ServiceConfig(workers=0)
    with pytest.raises(ValueError, match="fraction"):
        ServiceConfig(transfer_fraction=1.5)


def test_with_overrides_revalidates():
    config = ServiceConfig()
    assert config.with_overrides(num_threads=4).num_threads == 4
    with pytest.raises(ValueError, match="kernel"):
        config.with_overrides(kernel="gpu")


def test_prepare_stats_accounting(oahu_tiny):
    service = TransitService(
        oahu_tiny,
        ServiceConfig(
            kernel="flat", use_distance_table=True, transfer_fraction=0.3
        ),
    )
    stats = service.prepare_stats
    assert stats.num_stations == oahu_tiny.num_stations
    assert stats.num_nodes > stats.num_stations
    assert stats.num_connections == len(oahu_tiny.connections)
    assert stats.packed_bytes > 0
    assert stats.num_transfer_stations > 0
    assert stats.table_mib > 0
    assert stats.total_seconds >= (
        stats.graph_seconds + stats.pack_seconds
    )
    assert not stats.shared_station_graph


def test_query_stats_shapes(oahu_tiny):
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=2))
    p = service.profile(0)
    assert p.stats.kind == "profile"
    assert p.stats.num_threads == 2
    assert p.stats.settled_connections > 0
    assert p.stats.total_seconds > 0
    j = service.journey(0, 5)
    assert j.stats.kind == "journey"
    assert j.stats.classification in ("local", "global", "table", "trivial")


def test_profile_request_thread_override(oahu_tiny):
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=1))
    res = service.profile(ProfileRequest(0, num_threads=3))
    assert res.stats.num_threads == 3
    assert len(res.raw.stats.settled_per_thread) == 3


def test_batch_profile_requests_honor_thread_override(oahu_tiny):
    """ProfileRequest.num_threads must bind on the batch path exactly
    as on the single path (regression: batch silently used the config
    thread count)."""
    service = TransitService(oahu_tiny, ServiceConfig(num_threads=1))
    single = service.profile(ProfileRequest(0, num_threads=4))
    batched = service.batch(
        BatchRequest(profiles=(ProfileRequest(0, num_threads=4),))
    ).profiles[0]
    assert batched.stats.num_threads == 4
    assert len(batched.raw.stats.settled_per_thread) == 4
    assert (
        batched.stats.settled_connections
        == single.stats.settled_connections
    )
    np.testing.assert_array_equal(
        batched.raw.merged.labels, single.raw.merged.labels
    )
