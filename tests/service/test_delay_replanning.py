"""Delay replanning parity: ``service.apply_delays(...)`` ≡ a cold
service built from the delayed timetable.

``apply_delays`` shares the station graph and transfer-station
selection with the original service (delays never change route
topology) and rebuilds only the travel-time-dependent artifacts.  The
contract: answers after replanning are *bitwise identical* to a
``TransitService`` constructed from scratch on the delayed timetable —
on profile, journey and batch paths, with and without a distance
table, on at least two synthetic instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import BatchRequest, ServiceConfig, TransitService
from repro.synthetic.instances import make_instance
from repro.synthetic.workloads import random_station_pairs
from repro.timetable.delays import Delay, apply_delays

from tests.helpers import random_line_timetable


def assert_profiles_bitwise_equal(expected, got, context=""):
    assert got.period == expected.period, context
    assert np.array_equal(got.deps, expected.deps), context
    assert np.array_equal(got.arrs, expected.arrs), context


def _instances():
    return [
        ("oahu-tiny", make_instance("oahu", scale="tiny")),
        ("germany-tiny", make_instance("germany", scale="tiny")),
        ("random-line", random_line_timetable(42, num_stations=8, num_lines=5)),
    ]


def _delays_for(timetable):
    """Delays valid for any instance: ``from_stop`` must name an actual
    departure of its train (apply_delays validates this), so pick the
    mid-run victim among trains with at least two legs."""
    legs_per_train: dict[int, int] = {}
    for c in timetable.connections:
        legs_per_train[c.train] = legs_per_train.get(c.train, 0) + 1
    mid_run_victim = next(
        t for t in sorted(legs_per_train) if t > 0 and legs_per_train[t] >= 2
    )
    return [
        Delay(train=0, minutes=25),
        Delay(train=mid_run_victim, minutes=40, from_stop=1),
    ]


@pytest.mark.parametrize(
    "name,timetable", _instances(), ids=lambda v: v if isinstance(v, str) else ""
)
@pytest.mark.parametrize("with_table", (False, True), ids=["plain", "table"])
def test_apply_delays_matches_cold_service(name, timetable, with_table):
    config = ServiceConfig(
        kernel="flat",
        num_threads=2,
        use_distance_table=with_table,
        transfer_fraction=0.3,
    )
    delays = _delays_for(timetable)
    warm = TransitService(timetable, config).apply_delays(delays)
    cold = TransitService(
        apply_delays(timetable, delays), config
    )

    # Replanning must not silently change the dataset identity.
    assert warm.timetable.num_stations == cold.timetable.num_stations
    assert [c.dep_time for c in warm.timetable.connections] == [
        c.dep_time for c in cold.timetable.connections
    ]

    pairs = random_station_pairs(timetable, 6, seed=9)
    for s, t in pairs:
        assert_profiles_bitwise_equal(
            cold.journey(s, t).profile,
            warm.journey(s, t).profile,
            f"{name}[{with_table}]: journey {s}->{t}",
        )
    for source in {s for s, _ in pairs}:
        cold_p = cold.profile(source)
        warm_p = warm.profile(source)
        for target in range(timetable.num_stations):
            assert_profiles_bitwise_equal(
                cold_p.profile(target),
                warm_p.profile(target),
                f"{name}[{with_table}]: profile {source}->{target}",
            )


def test_apply_delays_shares_topology_artifacts():
    timetable = make_instance("oahu", scale="tiny")
    config = ServiceConfig(
        kernel="flat", use_distance_table=True, transfer_fraction=0.3
    )
    service = TransitService(timetable, config)
    delayed = service.apply_delays([Delay(train=1, minutes=15)])

    assert delayed.prepare_stats.shared_station_graph
    assert delayed.prepared.station_graph is service.prepared.station_graph
    assert (
        delayed.prepared.transfer_stations
        is service.prepared.transfer_stations
    )
    # Travel-time-dependent artifacts are fresh.
    assert delayed.prepared.graph is not service.prepared.graph
    assert delayed.prepared.arrays is not service.prepared.arrays
    assert delayed.prepared.table is not service.prepared.table
    # And slack-recovery plumbs through.
    recovered = service.apply_delays(
        [Delay(train=1, minutes=15)], slack_per_leg=5
    )
    assert recovered.timetable.name.endswith("+delays")


def test_apply_delays_batch_parity():
    timetable = random_line_timetable(7, num_stations=9, num_lines=5)
    config = ServiceConfig(kernel="flat", num_threads=2)
    delays = _delays_for(timetable)
    warm = TransitService(timetable, config).apply_delays(delays)
    cold = TransitService(apply_delays(timetable, delays), config)
    pairs = random_station_pairs(timetable, 5, seed=1)
    warm_batch = warm.batch(BatchRequest.from_pairs(pairs))
    cold_batch = cold.batch(BatchRequest.from_pairs(pairs))
    for w, c in zip(warm_batch.journeys, cold_batch.journeys):
        assert_profiles_bitwise_equal(c.profile, w.profile)
