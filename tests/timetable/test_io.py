"""Unit tests for JSON timetable serialization."""

import pytest

from repro.timetable.io import (
    load_timetable,
    save_timetable,
    timetable_from_dict,
    timetable_to_dict,
)

from tests.helpers import toy_timetable


class TestDictRoundTrip:
    def test_lossless(self):
        original = toy_timetable()
        restored = timetable_from_dict(timetable_to_dict(original))
        assert restored.name == original.name
        assert restored.period == original.period
        assert restored.stations == original.stations
        assert restored.trains == original.trains
        assert restored.connections == original.connections

    def test_version_check(self):
        data = timetable_to_dict(toy_timetable())
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            timetable_from_dict(data)


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        original = toy_timetable()
        path = tmp_path / "toy.json"
        save_timetable(original, path)
        restored = load_timetable(path)
        assert restored.connections == original.connections

    def test_instance_roundtrip(self, tmp_path, oahu_tiny):
        path = tmp_path / "oahu.json"
        save_timetable(oahu_tiny, path)
        restored = load_timetable(path)
        assert restored.num_connections == oahu_tiny.num_connections
        assert restored.stations == oahu_tiny.stations
