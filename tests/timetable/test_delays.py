"""Tests for the fully dynamic scenario: delay injection (paper §5.1)."""

import pytest

from repro.baselines.label_correcting import label_correcting_profile
from repro.baselines.time_query import time_query
from repro.core.spcs import spcs_profile_search
from repro.graph.td_model import build_td_graph
from repro.timetable.delays import Delay, apply_delays, train_lateness_profile
from repro.timetable.validation import validate_timetable

from tests.helpers import toy_timetable


class TestDelayDataclass:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            Delay(train=0, minutes=-5)

    def test_rejects_negative_stop(self):
        with pytest.raises(ValueError, match="from_stop"):
            Delay(train=0, minutes=5, from_stop=-1)


class TestApplyDelays:
    def test_shifts_whole_run(self):
        tt = toy_timetable()
        delayed = apply_delays(tt, [Delay(train=0, minutes=7)])
        assert train_lateness_profile(tt, delayed, 0) == [7, 7]
        # Other trains untouched.
        assert train_lateness_profile(tt, delayed, 1) == [0, 0]

    def test_mid_run_delay(self):
        tt = toy_timetable()
        delayed = apply_delays(tt, [Delay(train=0, minutes=9, from_stop=1)])
        assert train_lateness_profile(tt, delayed, 0) == [0, 9]

    def test_slack_recovery(self):
        tt = toy_timetable()
        delayed = apply_delays(
            tt, [Delay(train=0, minutes=5)], slack_per_leg=3
        )
        # Leg 0 departs 5 late; leg 1 recovered 3 → 2 late.
        assert train_lateness_profile(tt, delayed, 0) == [5, 2]

    def test_slack_never_goes_negative(self):
        tt = toy_timetable()
        delayed = apply_delays(
            tt, [Delay(train=0, minutes=2)], slack_per_leg=10
        )
        assert train_lateness_profile(tt, delayed, 0) == [2, 0]

    def test_multiple_delays_accumulate(self):
        tt = toy_timetable()
        delayed = apply_delays(
            tt,
            [Delay(train=0, minutes=4, from_stop=0), Delay(train=0, minutes=6, from_stop=1)],
        )
        assert train_lateness_profile(tt, delayed, 0) == [4, 10]

    def test_original_untouched(self):
        tt = toy_timetable()
        snapshot = list(tt.connections)
        apply_delays(tt, [Delay(train=0, minutes=30)])
        assert tt.connections == snapshot

    def test_unknown_train_rejected(self):
        with pytest.raises(ValueError, match="unknown train"):
            apply_delays(toy_timetable(), [Delay(train=999, minutes=1)])

    def test_from_stop_at_last_departure_shifts_last_leg(self):
        """Off-by-one boundary: train 0 has 2 legs, so from_stop=1 is
        its *last* valid departure and must still take effect."""
        tt = toy_timetable()
        delayed = apply_delays(tt, [Delay(train=0, minutes=5, from_stop=1)])
        assert train_lateness_profile(tt, delayed, 0) == [0, 5]

    def test_from_stop_past_run_rejected(self):
        """Regression: a from_stop at or past the train's run length
        used to be silently ignored (the delay vanished)."""
        tt = toy_timetable()  # train 0 runs A→B→C: 2 legs, stops 0 and 1
        with pytest.raises(ValueError, match="from_stop 2 out of range"):
            apply_delays(tt, [Delay(train=0, minutes=5, from_stop=2)])
        with pytest.raises(ValueError, match="from_stop 99 out of range"):
            apply_delays(tt, [Delay(train=0, minutes=5, from_stop=99)])

    def test_from_stop_validated_per_train_run_length(self):
        """The bound is each train's own run length: stop 1 exists for
        the 2-leg train 0 but not for a 1-leg train."""
        tt = toy_timetable()
        one_leg_train = next(
            t.id
            for t in tt.trains
            if sum(c.train == t.id for c in tt.connections) == 1
        )
        with pytest.raises(ValueError, match="out of range"):
            apply_delays(tt, [Delay(train=one_leg_train, minutes=5, from_stop=1)])
        # The same from_stop on the longer train is fine.
        apply_delays(tt, [Delay(train=0, minutes=5, from_stop=1)])

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            apply_delays(toy_timetable(), [], slack_per_leg=-1)

    def test_result_is_structurally_valid(self):
        tt = toy_timetable()
        delayed = apply_delays(tt, [Delay(train=0, minutes=45)])
        # Delays can break FIFO between sibling trains — structural
        # validity without the FIFO requirement must hold.
        validate_timetable(delayed, require_fifo=False)

    def test_delay_past_midnight_wraps(self):
        from repro.timetable.builder import TimetableBuilder

        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 1430), (b, 1439)])
        tt = builder.build()
        delayed = apply_delays(tt, [Delay(train=0, minutes=30)])
        assert delayed.connections[0].dep_time == 20  # 00:20 next day
        validate_timetable(delayed, require_fifo=False)


class TestCompositionRule:
    """The batch composition rule the module docstring documents and
    the fleet catch-up coalescer (:mod:`repro.fleet.catchup`) relies
    on: order never matters within a batch; slack-free batches
    coalesce additively across batches; slack makes a batch a
    sequencing barrier."""

    BATCH = [
        Delay(train=0, minutes=4, from_stop=0),
        Delay(train=0, minutes=6, from_stop=1),
        Delay(train=1, minutes=9),
        Delay(train=0, minutes=3, from_stop=1),  # same-stop duplicate
    ]

    def _connections(self, timetable):
        return [
            (c.train, c.dep_station, c.arr_station, c.dep_time, c.arr_time)
            for c in timetable.connections
        ]

    def test_order_independent_within_batch(self):
        """Every permutation of one batch — including same-train and
        same-stop duplicates — yields the identical timetable, with
        and without slack."""
        import itertools

        tt = toy_timetable()
        for slack in (0, 2):
            reference = self._connections(
                apply_delays(tt, self.BATCH, slack_per_leg=slack)
            )
            for perm in itertools.permutations(self.BATCH):
                assert (
                    self._connections(
                        apply_delays(tt, list(perm), slack_per_leg=slack)
                    )
                    == reference
                ), f"permutation changed the result (slack={slack})"

    def test_same_stop_duplicates_are_additive(self):
        tt = toy_timetable()
        doubled = apply_delays(
            tt,
            [Delay(train=0, minutes=5), Delay(train=0, minutes=7)],
        )
        summed = apply_delays(tt, [Delay(train=0, minutes=12)])
        assert self._connections(doubled) == self._connections(summed)

    def test_slack_free_batches_coalesce_exactly(self):
        """Sequential slack-free batches ≡ one merged batch, bitwise —
        the soundness condition of the gateway's catch-up coalescing."""
        tt = toy_timetable()
        batch_a = [Delay(train=0, minutes=4), Delay(train=1, minutes=2)]
        batch_b = [Delay(train=0, minutes=6, from_stop=1), Delay(train=1, minutes=3)]
        sequential = apply_delays(apply_delays(tt, batch_a), batch_b)
        merged = apply_delays(tt, batch_a + batch_b)
        assert self._connections(sequential) == self._connections(merged)

    def test_slack_batches_are_sequencing_barriers(self):
        """With slack the clamp is non-linear: sequential application
        differs from the merged batch, so coalescing across a
        slack-bearing batch would be unsound."""
        tt = toy_timetable()
        batch_a = [Delay(train=0, minutes=5)]
        batch_b = [Delay(train=0, minutes=5)]
        sequential = apply_delays(
            apply_delays(tt, batch_a, slack_per_leg=3),
            batch_b,
            slack_per_leg=3,
        )
        merged = apply_delays(tt, batch_a + batch_b, slack_per_leg=3)
        # Leg 1: sequential recovers slack twice (2 + 2 = 4 late),
        # merged once on the sum (10 - 3 = 7 late).
        assert self._connections(sequential) != self._connections(merged)


class TestQueriesUnderDelays:
    def test_no_preprocessing_needed(self):
        """The paper's dynamic-scenario claim: after a delay, rebuild the
        graph and query — no auxiliary data to repair."""
        tt = toy_timetable()
        graph = build_td_graph(tt)
        before = time_query(graph, 0, 480).arrival_at_station(2)
        assert before == 510  # 08:00 train arrives C 08:30

        # The 08:00 A→B→C train (train 0) is 25 minutes late.
        delayed_graph = build_td_graph(apply_delays(tt, [Delay(train=0, minutes=25)]))
        after = time_query(delayed_graph, 0, 480).arrival_at_station(2)
        # Now: delayed train departs 08:25, arrives C 08:55 — still the
        # best option (next regular train 08:30 arrives 09:00).
        assert after == 535

    def test_spcs_equals_lc_on_delayed_network(self):
        tt = toy_timetable()
        delayed = apply_delays(
            tt,
            [Delay(train=0, minutes=25), Delay(train=9, minutes=13, from_stop=0)],
        )
        graph = build_td_graph(delayed)
        spcs = spcs_profile_search(graph, 0)
        lc = label_correcting_profile(graph, 0)
        for station in range(graph.num_stations):
            assert spcs.profile(station) == lc.profile(station, delayed.period)

    def test_delay_bounded_by_train_removal(self, oahu_tiny):
        """The sound monotonicity statement: journeys avoiding the
        delayed train are untouched, so the delayed network can never be
        *worse* than the network with the train removed outright.  (A
        naive "delays only hurt" claim is false both ways: later
        departures may newly catch the delayed train, and mid-run
        connections shift.)"""
        from repro.timetable.types import Timetable

        victim = 5
        delayed = apply_delays(oahu_tiny, [Delay(train=victim, minutes=40)])
        without = Timetable(
            stations=list(oahu_tiny.stations),
            trains=list(oahu_tiny.trains),
            connections=[
                c for c in oahu_tiny.connections if c.train != victim
            ],
            period=oahu_tiny.period,
            name="without-victim",
        )
        delayed_graph = build_td_graph(delayed)
        removed_graph = build_td_graph(without)
        for departure in (0, 430, 1000):
            with_delay = time_query(delayed_graph, 0, departure)
            with_removal = time_query(removed_graph, 0, departure)
            for station in range(oahu_tiny.num_stations):
                assert with_delay.arrival_at_station(
                    station
                ) <= with_removal.arrival_at_station(station)

    def test_delay_can_help_later_departures(self):
        """The flip side: a big delay turns a missed train into a
        catchable one."""
        tt = toy_timetable()
        graph = build_td_graph(tt)
        # Depart A at 08:05: the 08:00 train is gone; next at 08:30.
        assert time_query(graph, 0, 485).arrival_at_station(1) == 525
        # Delay the 08:00 train (train 0) by 10 minutes → departs 08:10.
        delayed_graph = build_td_graph(apply_delays(tt, [Delay(train=0, minutes=10)]))
        assert time_query(delayed_graph, 0, 485).arrival_at_station(1) == 505
