"""Unit and property tests for periodic time arithmetic (paper §2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timetable.periodic import (
    DAY_MINUTES,
    PeriodicTime,
    delta,
    format_time,
    normalize,
    parse_time,
)


class TestDelta:
    def test_forward(self):
        assert delta(100, 160) == 60

    def test_same_instant_is_zero(self):
        assert delta(700, 700) == 0

    def test_wraps_past_midnight(self):
        assert delta(1400, 20) == 60

    def test_not_symmetric(self):
        assert delta(100, 160) == 60
        assert delta(160, 100) == 1440 - 60

    def test_accepts_absolute_times(self):
        assert delta(1500, 1560) == 60
        assert delta(1500, 60) == 0

    def test_custom_period(self):
        assert delta(9, 1, period=10) == 2

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            delta(0, 1, period=0)

    @given(
        tau1=st.integers(min_value=0, max_value=10 * DAY_MINUTES),
        tau2=st.integers(min_value=0, max_value=10 * DAY_MINUTES),
    )
    def test_result_in_period(self, tau1, tau2):
        assert 0 <= delta(tau1, tau2) < DAY_MINUTES

    @given(
        tau=st.integers(min_value=0, max_value=10 * DAY_MINUTES),
        advance=st.integers(min_value=0, max_value=DAY_MINUTES - 1),
    )
    def test_delta_inverts_shift(self, tau, advance):
        assert delta(tau, tau + advance) == advance


class TestNormalize:
    def test_identity_within_period(self):
        assert normalize(77) == 77

    def test_reduces_absolute(self):
        assert normalize(1500) == 60

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            normalize(5, period=-1)


class TestParseFormat:
    @pytest.mark.parametrize(
        "text,minutes",
        [("00:00", 0), ("08:30", 510), ("23:59", 1439), ("25:15", 1515)],
    )
    def test_parse(self, text, minutes):
        assert parse_time(text) == minutes

    def test_parse_with_seconds(self):
        assert parse_time("08:30:45") == 510

    @pytest.mark.parametrize("text", ["8h30", "08:61", "-1:00", "junk", "08"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_time(text)

    @pytest.mark.parametrize(
        "text", ["08:30:xx", "08:30:99", "08:30:60", "08:30:-5", "08:30:"]
    )
    def test_parse_rejects_bad_seconds(self, text):
        """Regression: the seconds field used to be dropped unread, so
        non-numeric or out-of-range seconds parsed successfully."""
        with pytest.raises(ValueError):
            parse_time(text)

    @pytest.mark.parametrize("text,minutes", [("08:30:00", 510), ("08:30:59", 510)])
    def test_parse_valid_seconds_boundaries(self, text, minutes):
        assert parse_time(text) == minutes

    def test_format(self):
        assert format_time(510) == "08:30"

    def test_format_past_midnight(self):
        assert format_time(1515) == "25:15"

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_time(-1)

    @given(st.integers(min_value=0, max_value=3 * DAY_MINUTES))
    def test_roundtrip(self, minutes):
        assert parse_time(format_time(minutes)) == minutes


class TestPeriodicTime:
    def test_normalizes_on_construction(self):
        assert PeriodicTime(1500).value == 60

    def test_until(self):
        assert PeriodicTime(1400).until(PeriodicTime(20)) == 60

    def test_until_accepts_int(self):
        assert PeriodicTime(100).until(160) == 60

    def test_shifted_wraps(self):
        assert PeriodicTime(1430).shifted(20).value == 10

    def test_str(self):
        assert str(PeriodicTime(510)) == "08:30"

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTime(0, period=0)
