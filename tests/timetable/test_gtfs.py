"""Unit tests for the GTFS-like reader/writer."""

import pytest

from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.routes import train_station_sequences

from tests.helpers import toy_timetable


def _write_minimal_feed(root):
    (root / "stops.txt").write_text(
        "stop_id,stop_name,min_transfer_time\nS0,Alpha,3\nS1,Beta,5\n"
    )
    (root / "trips.txt").write_text("trip_id,trip_name\nT0,morning\n")
    (root / "stop_times.txt").write_text(
        "trip_id,stop_sequence,stop_id,departure_time\n"
        "T0,0,S0,08:00\nT0,1,S1,08:25\n"
    )


class TestLoadGtfs:
    def test_minimal_feed(self, tmp_path):
        _write_minimal_feed(tmp_path)
        tt = load_gtfs(tmp_path)
        assert tt.num_stations == 2
        assert tt.num_connections == 1
        assert tt.connections[0].dep_time == 480
        assert tt.connections[0].duration == 25
        assert tt.stations[0].transfer_time == 3

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not found"):
            load_gtfs(tmp_path / "nope")

    def test_missing_file(self, tmp_path):
        (tmp_path / "stops.txt").write_text("stop_id,stop_name\n")
        with pytest.raises(FileNotFoundError, match="trips.txt"):
            load_gtfs(tmp_path)

    def test_unknown_trip_reference(self, tmp_path):
        _write_minimal_feed(tmp_path)
        (tmp_path / "stop_times.txt").write_text(
            "trip_id,stop_sequence,stop_id,departure_time\nTX,0,S0,08:00\nTX,1,S1,08:10\n"
        )
        with pytest.raises(ValueError, match="unknown trip"):
            load_gtfs(tmp_path)

    def test_unknown_stop_reference(self, tmp_path):
        _write_minimal_feed(tmp_path)
        (tmp_path / "stop_times.txt").write_text(
            "trip_id,stop_sequence,stop_id,departure_time\nT0,0,S0,08:00\nT0,1,SX,08:10\n"
        )
        with pytest.raises(ValueError, match="unknown stop"):
            load_gtfs(tmp_path)

    def test_after_midnight_hours(self, tmp_path):
        _write_minimal_feed(tmp_path)
        (tmp_path / "stop_times.txt").write_text(
            "trip_id,stop_sequence,stop_id,departure_time\n"
            "T0,0,S0,23:50\nT0,1,S1,24:10\n"
        )
        tt = load_gtfs(tmp_path)
        assert tt.connections[0].dep_time == 1430
        assert tt.connections[0].duration == 20

    def test_stop_sequence_ordering(self, tmp_path):
        """Rows may be listed out of order; stop_sequence governs."""
        _write_minimal_feed(tmp_path)
        (tmp_path / "stop_times.txt").write_text(
            "trip_id,stop_sequence,stop_id,departure_time\n"
            "T0,1,S1,08:25\nT0,0,S0,08:00\n"
        )
        tt = load_gtfs(tmp_path)
        assert tt.connections[0].dep_station == 0


class TestRoundTrip:
    def test_toy_roundtrip(self, tmp_path):
        original = toy_timetable()
        save_gtfs(original, tmp_path / "feed")
        loaded = load_gtfs(tmp_path / "feed")
        assert loaded.num_stations == original.num_stations
        assert loaded.num_trains == original.num_trains
        assert loaded.num_connections == original.num_connections
        original_set = {
            (c.dep_station, c.arr_station, c.dep_time, c.duration)
            for c in original.connections
        }
        loaded_set = {
            (c.dep_station, c.arr_station, c.dep_time, c.duration)
            for c in loaded.connections
        }
        assert original_set == loaded_set

    def test_midnight_wrap_roundtrip(self, tmp_path):
        from repro.timetable.builder import TimetableBuilder

        builder = TimetableBuilder(name="wrap")
        a, b, c = (builder.add_station(n) for n in "abc")
        builder.add_trip([(a, 1430), (b, 1445), (c, 1470)])
        original = builder.build()
        save_gtfs(original, tmp_path / "feed")
        loaded = load_gtfs(tmp_path / "feed")
        assert train_station_sequences(loaded)[0] == (0, 1, 2)
        assert loaded.connections[0].dep_time == 1430
        assert loaded.connections[1].dep_time == 5

    def test_instance_roundtrip(self, tmp_path, germany_tiny):
        save_gtfs(germany_tiny, tmp_path / "feed")
        loaded = load_gtfs(tmp_path / "feed")
        assert loaded.num_connections == germany_tiny.num_connections
        assert loaded.num_stations == germany_tiny.num_stations
