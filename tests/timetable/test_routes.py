"""Unit tests for route partitioning (paper §2)."""

import pytest

from repro.timetable.builder import TimetableBuilder
from repro.timetable.routes import (
    connections_by_route_leg,
    partition_routes,
    train_station_sequences,
)
from repro.timetable.types import Connection, Station, Timetable, Train


def _simple_timetable():
    builder = TimetableBuilder(name="routes")
    a, b, c = (builder.add_station(n) for n in "abc")
    builder.add_trip([(a, 100), (b, 110), (c, 125)], name="t0")
    builder.add_trip([(a, 200), (b, 215), (c, 230)], name="t1")  # same sequence
    builder.add_trip([(c, 300), (b, 310), (a, 330)], name="t2")  # reverse
    builder.add_trip([(a, 400), (c, 420)], name="t3")  # express, skips b
    return builder.build()


class TestTrainStationSequences:
    def test_sequences(self):
        tt = _simple_timetable()
        seqs = train_station_sequences(tt)
        assert seqs[0] == (0, 1, 2)
        assert seqs[1] == (0, 1, 2)
        assert seqs[2] == (2, 1, 0)
        assert seqs[3] == (0, 2)

    def test_broken_chain_detected(self):
        tt = Timetable(
            stations=[Station(0, "a"), Station(1, "b"), Station(2, "c")],
            trains=[Train(0)],
            connections=[
                Connection(train=0, dep_station=0, arr_station=1, dep_time=10, arr_time=20),
                Connection(train=0, dep_station=2, arr_station=0, dep_time=30, arr_time=40),
            ],
        )
        with pytest.raises(ValueError, match="previous stop"):
            train_station_sequences(tt)

    def test_midnight_wrap_keeps_travel_order(self):
        """A trip crossing midnight has a *smaller* normalized departure
        on its late legs; travel order must come from list order."""
        builder = TimetableBuilder(name="wrap")
        a, b, c = (builder.add_station(n) for n in "abc")
        builder.add_trip([(a, 1430), (b, 1445), (c, 1460)], name="night")
        tt = builder.build()
        assert train_station_sequences(tt)[0] == (0, 1, 2)
        # The stored departures are normalized into Π (two legs).
        deps = [c_.dep_time for c_ in tt.connections]
        assert deps == [1430, 5]


class TestPartitionRoutes:
    def test_groups_equal_sequences(self):
        routes = partition_routes(_simple_timetable())
        by_trains = {route.trains: route.stations for route in routes}
        assert by_trains[(0, 1)] == (0, 1, 2)
        assert by_trains[(2,)] == (2, 1, 0)
        assert by_trains[(3,)] == (0, 2)

    def test_route_ids_dense(self):
        routes = partition_routes(_simple_timetable())
        assert [r.id for r in routes] == list(range(len(routes)))

    def test_deterministic(self):
        tt = _simple_timetable()
        first = partition_routes(tt)
        second = partition_routes(tt)
        assert [(r.stations, r.trains) for r in first] == [
            (r.stations, r.trains) for r in second
        ]

    def test_reverse_direction_is_distinct_route(self, toy):
        routes = partition_routes(toy)
        sequences = {r.stations for r in routes}
        assert (0, 1, 2) in sequences
        assert (0, 3) in sequences


class TestConnectionsByRouteLeg:
    def test_every_connection_assigned_once(self):
        tt = _simple_timetable()
        routes = partition_routes(tt)
        legs = connections_by_route_leg(tt, routes)
        total = sum(len(v) for v in legs.values())
        assert total == tt.num_connections

    def test_leg_contents_sorted_by_departure(self):
        tt = _simple_timetable()
        legs = connections_by_route_leg(tt, partition_routes(tt))
        for conns in legs.values():
            deps = [c.dep_time for c in conns]
            assert deps == sorted(deps)

    def test_legs_match_route_stations(self):
        tt = _simple_timetable()
        routes = partition_routes(tt)
        legs = connections_by_route_leg(tt, routes)
        for (route_id, leg), conns in legs.items():
            route = routes[route_id]
            for c in conns:
                assert c.dep_station == route.stations[leg]
                assert c.arr_station == route.stations[leg + 1]

    def test_unknown_train_rejected(self):
        tt = _simple_timetable()
        routes = partition_routes(tt)
        tt.connections.append(
            Connection(train=99, dep_station=0, arr_station=1, dep_time=0, arr_time=1)
        )
        with pytest.raises(ValueError, match="unknown train"):
            connections_by_route_leg(tt, routes)
