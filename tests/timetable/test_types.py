"""Unit tests for the timetable data model."""

import pytest

from repro.timetable.types import (
    Connection,
    Route,
    Station,
    Timetable,
    Train,
    stations_of,
)


class TestStation:
    def test_valid(self):
        station = Station(id=3, name="Main St", transfer_time=4)
        assert station.transfer_time == 4

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError, match="id"):
            Station(id=-1, name="x")

    def test_rejects_negative_transfer(self):
        with pytest.raises(ValueError, match="transfer"):
            Station(id=0, name="x", transfer_time=-1)


class TestTrain:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError, match="id"):
            Train(id=-2)


class TestConnection:
    def test_duration(self):
        c = Connection(train=0, dep_station=0, arr_station=1, dep_time=100, arr_time=130)
        assert c.duration == 30

    def test_rejects_arrival_before_departure(self):
        with pytest.raises(ValueError, match="precede"):
            Connection(train=0, dep_station=0, arr_station=1, dep_time=100, arr_time=90)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Connection(train=0, dep_station=2, arr_station=2, dep_time=0, arr_time=5)

    def test_rejects_negative_departure(self):
        with pytest.raises(ValueError, match="departure"):
            Connection(train=0, dep_station=0, arr_station=1, dep_time=-5, arr_time=5)

    def test_describe_mentions_stations_and_times(self):
        c = Connection(train=7, dep_station=0, arr_station=1, dep_time=480, arr_time=495)
        text = c.describe()
        assert "08:00" in text and "08:15" in text and "train 7" in text


class TestRoute:
    def test_num_legs(self):
        route = Route(id=0, stations=(0, 1, 2), trains=(0,))
        assert route.num_legs == 2

    def test_rejects_short_route(self):
        with pytest.raises(ValueError, match="at least 2"):
            Route(id=0, stations=(0,), trains=(0,))

    def test_rejects_trainless_route(self):
        with pytest.raises(ValueError, match="no trains"):
            Route(id=0, stations=(0, 1), trains=())


class TestTimetable:
    def test_summary_counts(self, toy):
        text = toy.summary()
        assert "4 stations" in text
        assert "connections" in text

    def test_transfer_time(self, toy):
        assert toy.transfer_time(0) == 2
        assert toy.transfer_time(1) == 3

    def test_outgoing_connections_sorted(self, toy):
        conns = toy.outgoing_connections(0)
        deps = [c.dep_time for c in conns]
        assert deps == sorted(deps)
        assert all(c.dep_station == 0 for c in conns)

    def test_outgoing_connections_unknown_station_empty(self, toy):
        # Station 3 (D) has no departures in the toy network.
        assert toy.outgoing_connections(3) == []

    def test_connections_per_station(self, toy):
        assert toy.connections_per_station() == pytest.approx(
            toy.num_connections / toy.num_stations
        )

    def test_station_pairs_unique(self, toy):
        pairs = list(toy.station_pairs())
        assert len(pairs) == len(set(pairs))
        assert (0, 1) in pairs and (2, 3) in pairs

    def test_empty_timetable_density(self):
        empty = Timetable(stations=[], trains=[], connections=[])
        assert empty.connections_per_station() == 0.0

    def test_delta_uses_period(self):
        tt = Timetable(stations=[], trains=[], connections=[], period=100)
        assert tt.delta(90, 10) == 20


def test_stations_of():
    conns = [
        Connection(train=0, dep_station=0, arr_station=1, dep_time=0, arr_time=5),
        Connection(train=0, dep_station=1, arr_station=4, dep_time=6, arr_time=9),
    ]
    assert stations_of(conns) == {0, 1, 4}
