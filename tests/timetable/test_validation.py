"""Unit tests for timetable validation."""

import pytest

from repro.timetable.builder import TimetableBuilder
from repro.timetable.types import Connection, Station, Timetable, Train
from repro.timetable.validation import TimetableError, is_valid, validate_timetable


def _base() -> Timetable:
    builder = TimetableBuilder(name="valid")
    a, b = builder.add_station("a"), builder.add_station("b")
    builder.add_trip([(a, 100), (b, 110)])
    return builder.build()


class TestValidateTimetable:
    def test_valid_passes(self):
        validate_timetable(_base())

    def test_bad_period(self):
        tt = _base()
        tt.period = 0
        with pytest.raises(TimetableError, match="period"):
            validate_timetable(tt)

    def test_non_dense_station_ids(self):
        tt = _base()
        tt.stations = [Station(5, "a"), Station(1, "b")]
        with pytest.raises(TimetableError, match="dense"):
            validate_timetable(tt)

    def test_non_dense_train_ids(self):
        tt = _base()
        tt.trains = [Train(3)]
        with pytest.raises(TimetableError, match="dense"):
            validate_timetable(tt)

    def test_unknown_dep_station(self):
        tt = _base()
        tt.connections.append(
            Connection(train=0, dep_station=9, arr_station=0, dep_time=0, arr_time=1)
        )
        with pytest.raises(TimetableError, match="unknown station"):
            validate_timetable(tt)

    def test_unknown_train(self):
        tt = _base()
        tt.connections.append(
            Connection(train=4, dep_station=0, arr_station=1, dep_time=0, arr_time=1)
        )
        with pytest.raises(TimetableError, match="unknown train"):
            validate_timetable(tt)

    def test_departure_outside_period(self):
        tt = _base()
        tt.connections.append(
            Connection(train=0, dep_station=1, arr_station=0, dep_time=2000, arr_time=2010)
        )
        with pytest.raises(TimetableError, match="outside"):
            validate_timetable(tt)

    def test_overlong_duration(self):
        tt = _base()
        tt.connections = [
            Connection(train=0, dep_station=0, arr_station=1, dep_time=0, arr_time=1500)
        ]
        with pytest.raises(TimetableError, match="duration"):
            validate_timetable(tt)

    def test_fifo_violation_detected(self):
        builder = TimetableBuilder(name="nonfifo")
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 160)], name="slow")
        builder.add_trip([(a, 110), (b, 140)], name="fast overtakes")
        with pytest.raises(TimetableError, match="FIFO"):
            builder.build()

    def test_fifo_violation_allowed_when_disabled(self):
        builder = TimetableBuilder(name="nonfifo")
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 160)])
        builder.add_trip([(a, 110), (b, 140)])
        tt = builder.build(require_fifo=False)
        assert tt.num_connections == 2

    def test_is_valid_wrapper(self):
        assert is_valid(_base())
        bad = _base()
        bad.period = -1
        assert not is_valid(bad)


def test_generated_instances_are_valid(oahu_tiny, germany_tiny):
    validate_timetable(oahu_tiny)
    validate_timetable(germany_tiny)
