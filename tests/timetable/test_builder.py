"""Unit tests for the timetable builder."""

import pytest

from repro.timetable.builder import TimetableBuilder


class TestAddStation:
    def test_dense_ids(self):
        builder = TimetableBuilder()
        assert builder.add_station("a") == 0
        assert builder.add_station("b") == 1

    def test_auto_names(self):
        builder = TimetableBuilder()
        sid = builder.add_station()
        assert builder.station_id(f"station-{sid}") == sid

    def test_existing_name_returns_same_id(self):
        builder = TimetableBuilder()
        first = builder.add_station("x", transfer_time=3)
        assert builder.add_station("x", transfer_time=3) == first

    def test_existing_name_transfer_conflict(self):
        builder = TimetableBuilder()
        builder.add_station("x", transfer_time=3)
        with pytest.raises(ValueError, match="transfer"):
            builder.add_station("x", transfer_time=7)

    def test_station_id_unknown(self):
        with pytest.raises(KeyError, match="unknown"):
            TimetableBuilder().station_id("nope")


class TestAddConnection:
    def test_normalizes_departure_into_period(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        t = builder.add_train()
        builder.add_connection(t, a, b, 1500, 1520)
        tt = builder.build()
        assert tt.connections[0].dep_time == 60
        assert tt.connections[0].duration == 20

    def test_rejects_unknown_train(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        with pytest.raises(ValueError, match="train"):
            builder.add_connection(5, a, b, 0, 10)

    def test_rejects_unknown_station(self):
        builder = TimetableBuilder()
        builder.add_station("a")
        t = builder.add_train()
        with pytest.raises(ValueError, match="station"):
            builder.add_connection(t, 0, 9, 0, 10)


class TestAddTrip:
    def test_creates_chained_connections(self):
        builder = TimetableBuilder()
        a, b, c = (builder.add_station(n) for n in "abc")
        train = builder.add_trip([(a, 100), (b, 120), (c, 135)])
        tt = builder.build()
        own = [x for x in tt.connections if x.train == train]
        assert [(x.dep_station, x.arr_station) for x in own] == [(0, 1), (1, 2)]
        assert [x.duration for x in own] == [20, 15]

    def test_rejects_single_stop(self):
        builder = TimetableBuilder()
        a = builder.add_station("a")
        with pytest.raises(ValueError, match="at least 2"):
            builder.add_trip([(a, 100)])

    def test_rejects_time_travel(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        with pytest.raises(ValueError, match="forward in time"):
            builder.add_trip([(a, 100), (b, 100)])

    def test_midnight_crossing_trip(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 1435), (b, 1450)])
        tt = builder.build()
        assert tt.connections[0].dep_time == 1435
        assert tt.connections[0].arr_time == 1450  # absolute, past midnight


class TestBuild:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            TimetableBuilder(period=0)

    def test_skip_validation(self):
        builder = TimetableBuilder()
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 160)])
        builder.add_trip([(a, 110), (b, 140)])  # overtakes: non-FIFO
        tt = builder.build(validate=False)
        assert tt.num_connections == 2

    def test_name_and_period_propagate(self):
        builder = TimetableBuilder(period=720, name="half-day")
        a, b = builder.add_station("a"), builder.add_station("b")
        builder.add_trip([(a, 100), (b, 110)])
        tt = builder.build()
        assert tt.period == 720
        assert tt.name == "half-day"
