"""Oracle harness for incremental delta replanning.

``apply_delays(..., mode="incremental")`` patches only the touched
travel-time functions and distance-table rows
(:mod:`repro.graph.td_patch`); the full rebuild (``mode="full"``, the
default) is the oracle.  The contract is **bitwise identity**, not
approximate agreement: on ≥50 seeded instances sweeping the same shape
and time-structure distribution as the kernel-equivalence harness
(:mod:`tests.core.test_kernel_equivalence`) — including wrap-heavy
night service and slack-recovery batches — every packed array buffer,
every graph edge and every distance-table profile of the patched
dataset must equal a cold service built from scratch on the delayed
timetable, and so must the answers of all three query shapes (journey,
one-to-all profile, batch) on both kernels.
"""

from __future__ import annotations

import random
from functools import lru_cache

import numpy as np
import pytest

from repro.service import BatchRequest, ServiceConfig, TransitService
from repro.synthetic.workloads import random_station_pairs
from repro.timetable.delays import Delay, apply_delays

from tests.helpers import random_line_timetable

#: Instance sweep: shape/time-structure configs × per-config seeds ⇒
#: ≥50 randomized instances.  ``kernel``/``table`` vary across configs
#: so both kernels and both table modes are exercised throughout;
#: ``periodic-wrap`` and ``late-night-wrap`` force wrap-around night
#: trains (delayed departures crossing the period boundary).
CONFIGS: dict[str, dict] = {
    "small-dense": dict(
        shape=dict(num_stations=6, num_lines=6, max_line_length=4),
        kernel="flat", table=False,
    ),
    "mid-default": dict(
        shape=dict(num_stations=12, num_lines=6),
        kernel="flat", table=True,
    ),
    "sparse-long": dict(
        shape=dict(num_stations=14, num_lines=4, max_line_length=7),
        kernel="python", table=False,
    ),
    "transfer-rich": dict(
        shape=dict(num_stations=8, num_lines=7, min_headway=15, max_headway=35),
        kernel="flat", table=True,
    ),
    "slow-transfers": dict(
        shape=dict(num_stations=9, num_lines=5, max_transfer=15),
        kernel="python", table=True,
    ),
    "zero-transfers": dict(
        shape=dict(num_stations=8, num_lines=5, max_transfer=0),
        kernel="flat", table=False,
    ),
    "aperiodic-morning": dict(
        shape=dict(num_stations=10, num_lines=5, service_span=(360, 720)),
        kernel="flat", table=True,
    ),
    "periodic-wrap": dict(
        shape=dict(num_stations=9, num_lines=5, service_span=(0, 1440)),
        kernel="flat", table=True,
    ),
    "short-period": dict(
        shape=dict(num_stations=9, num_lines=5, period=720, service_span=(0, 720)),
        kernel="python", table=False,
    ),
    "late-night-wrap": dict(
        shape=dict(num_stations=8, num_lines=5, service_span=(1100, 1440)),
        kernel="flat", table=True,
    ),
}

SEEDS_PER_CONFIG = 5
CASES = [
    pytest.param(name, seed, id=f"{name}-s{seed}")
    for name in CONFIGS
    for seed in range(SEEDS_PER_CONFIG)
]
assert len(CASES) >= 50

#: Every packed buffer of :class:`~repro.graph.td_arrays.TDGraphArrays`
#: (the private adjacency mirror is checked separately).
ARRAY_FIELDS = (
    "node_station",
    "edge_indptr",
    "edge_target",
    "edge_weight",
    "edge_ttf",
    "ttf_indptr",
    "ttf_dep",
    "ttf_dur",
    "ttf_fifo",
    "conn_indptr",
    "conn_dep",
    "conn_start",
    "transfer_time",
)


@lru_cache(maxsize=None)
def _case(name: str, seed: int):
    config = CONFIGS[name]
    timetable = random_line_timetable(1000 * seed + 17, **config["shape"])
    service_config = ServiceConfig(
        kernel=config["kernel"],
        num_threads=2,
        use_distance_table=config["table"],
        transfer_fraction=0.3,
    )
    return timetable, service_config, TransitService(timetable, service_config)


def _random_batch(timetable, seed: int) -> tuple[list[Delay], int]:
    """A seeded delay batch: 1–5 victims (duplicates allowed — the
    composition rule makes them additive), minutes large enough to
    push late-night departures across the period boundary, and a
    slack-recovery draw roughly every other batch."""
    rng = random.Random(2000 * seed + 5)
    legs: dict[int, int] = {}
    for c in timetable.connections:
        legs[c.train] = legs.get(c.train, 0) + 1
    trains = sorted(legs)
    picked = [trains[rng.randrange(len(trains))] for _ in range(rng.randint(1, 5))]
    delays = [
        Delay(
            train=train,
            minutes=rng.randint(1, 180),
            from_stop=rng.randrange(legs[train]),
        )
        for train in picked
    ]
    return delays, rng.choice((0, 0, 1, 3))


def assert_profiles_bitwise_equal(expected, got, context=""):
    assert got.period == expected.period, context
    assert np.array_equal(got.deps, expected.deps), context
    assert np.array_equal(got.arrs, expected.arrs), context


def _assert_prepared_bitwise_equal(cold, warm, context=""):
    """Every travel-time-carrying artifact of the incremental dataset
    equals the cold rebuild's, buffer for buffer."""
    # Object graph: same topology, identical travel-time functions.
    assert warm.graph.num_nodes == cold.graph.num_nodes, context
    for node in range(cold.graph.num_nodes):
        cold_edges = cold.graph.adjacency[node]
        warm_edges = warm.graph.adjacency[node]
        assert len(warm_edges) == len(cold_edges), f"{context}: node {node}"
        for slot, (ce, we) in enumerate(zip(cold_edges, warm_edges)):
            where = f"{context}: node {node} slot {slot}"
            assert we.target == ce.target, where
            assert we.weight == ce.weight, where
            if ce.ttf is None:
                assert we.ttf is None, where
            else:
                assert we.ttf.deps == ce.ttf.deps, where
                assert we.ttf.durs == ce.ttf.durs, where
    assert warm.graph.conn_start_node == cold.graph.conn_start_node, context

    # Packed arrays, buffer for buffer (including the kernel mirror).
    if cold.arrays is None:
        assert warm.arrays is None, context
    else:
        for field in ARRAY_FIELDS:
            assert np.array_equal(
                getattr(warm.arrays, field), getattr(cold.arrays, field)
            ), f"{context}: arrays.{field}"
        assert (
            warm.arrays.kernel_adjacency() == cold.arrays.kernel_adjacency()
        ), context

    # Distance table, profile for profile.
    if cold.table is None:
        assert warm.table is None, context
    else:
        assert np.array_equal(
            warm.table.transfer_stations, cold.table.transfer_stations
        ), context
        for a, cold_row in enumerate(cold.table.profiles):
            for b, cold_profile in enumerate(cold_row):
                assert_profiles_bitwise_equal(
                    cold_profile,
                    warm.table.profiles[a][b],
                    f"{context}: table[{a}][{b}]",
                )


@pytest.mark.parametrize("name,seed", CASES)
def test_incremental_bitwise_equals_cold_rebuild(name, seed):
    """The tentpole pin: incremental replan ≡ cold full rebuild,
    bitwise, artifacts and all three query shapes."""
    timetable, config, base = _case(name, seed)
    delays, slack = _random_batch(timetable, seed)

    warm = base.apply_delays(delays, slack_per_leg=slack, mode="incremental")
    cold = TransitService(
        apply_delays(timetable, delays, slack_per_leg=slack), config
    )

    assert warm.prepare_stats.incremental
    _assert_prepared_bitwise_equal(
        cold.prepared, warm.prepared, f"{name}-s{seed}"
    )

    pairs = random_station_pairs(timetable, 3, seed=seed + 1)
    # Query shape 1: station-to-station journeys.
    for s, t in pairs:
        assert_profiles_bitwise_equal(
            cold.journey(s, t).profile,
            warm.journey(s, t).profile,
            f"{name}-s{seed}: journey {s}->{t}",
        )
    # Query shape 2: one-to-all profile search.
    source = pairs[0][0]
    cold_p = cold.profile(source)
    warm_p = warm.profile(source)
    for target in range(timetable.num_stations):
        assert_profiles_bitwise_equal(
            cold_p.profile(target),
            warm_p.profile(target),
            f"{name}-s{seed}: profile {source}->{target}",
        )
    # Query shape 3: the batch path.
    warm_batch = warm.batch(BatchRequest.from_pairs(pairs))
    cold_batch = cold.batch(BatchRequest.from_pairs(pairs))
    for (s, t), w, c in zip(pairs, warm_batch.journeys, cold_batch.journeys):
        assert_profiles_bitwise_equal(
            c.profile, w.profile, f"{name}-s{seed}: batch {s}->{t}"
        )


@pytest.mark.parametrize(
    "name,seed", [pytest.param(n, 0, id=n) for n in CONFIGS]
)
def test_incremental_shares_untouched_artifacts(name, seed):
    """The point of the delta path: topology artifacts are shared and
    untouched distance-table rows are the *same objects*, not copies."""
    timetable, config, base = _case(name, seed)
    delays, slack = _random_batch(timetable, seed)
    warm = base.apply_delays(delays, slack_per_leg=slack, mode="incremental")

    assert warm.prepared.station_graph is base.prepared.station_graph
    assert warm.prepared.transfer_stations is base.prepared.transfer_stations
    assert warm.prepare_stats.shared_station_graph
    assert warm.prepare_stats.rebuilt_legs >= 1
    if base.prepared.table is not None:
        shared = sum(
            1
            for old_row, new_row in zip(
                base.prepared.table.profiles, warm.prepared.table.profiles
            )
            if old_row is new_row
        )
        patched = warm.prepare_stats.patched_table_rows
        assert shared == len(base.prepared.table.profiles) - patched


def test_incremental_matches_full_mode_stats_contract():
    """``mode="full"`` keeps the historical accounting; incremental
    reports its own (rebuilt legs, patched rows, zero shared-stage
    times)."""
    timetable, config, base = _case("mid-default", 0)
    delays, slack = _random_batch(timetable, 0)
    full = base.apply_delays(delays, slack_per_leg=slack)
    inc = base.apply_delays(delays, slack_per_leg=slack, mode="incremental")
    assert not full.prepare_stats.incremental
    assert full.prepare_stats.rebuilt_legs == 0
    assert inc.prepare_stats.incremental
    assert inc.prepare_stats.station_graph_seconds == 0.0
    assert inc.prepare_stats.selection_seconds == 0.0


def test_incremental_rejects_unknown_mode():
    timetable, config, base = _case("small-dense", 0)
    with pytest.raises(ValueError, match="mode"):
        base.apply_delays([Delay(train=0, minutes=5)], mode="bogus")
