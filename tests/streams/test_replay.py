"""The replay harness against an in-process backend.

The fleet-facing end-to-end run (HTTP gateway, multi-worker, catch-up)
lives in ``tests/fleet``; here the harness itself is pinned: traffic
accounting, the operational contract in :meth:`ReplayReport.check`,
and the dataset guard."""

from __future__ import annotations

import pytest

from repro.client import BackendError, LocalBackend
from repro.service import ServiceConfig, TransitService
from repro.streams import (
    DelayStream,
    ReplayConfig,
    ReplayError,
    ReplayReport,
    replay_stream,
)
from repro.synthetic.delays import generate_delay_stream
from repro.synthetic.instances import make_instance


@pytest.fixture(scope="module")
def target():
    timetable = make_instance("oahu", scale="tiny")
    service = TransitService(
        timetable, ServiceConfig(kernel="flat", num_threads=2)
    )
    return timetable, LocalBackend(service, name="oahu-tiny")


def test_replay_end_to_end(target):
    timetable, backend = target
    stream = generate_delay_stream(
        timetable, seed=7, num_events=6, duration_s=0.5
    )
    report = replay_stream(
        stream,
        lambda: backend,
        ReplayConfig(
            query_threads=2,
            speed=4.0,
            replan="incremental",
            max_swap_seconds=60.0,
        ),
    )
    assert report.check() is report
    assert report.ok
    assert report.failed_requests == 0
    assert report.metrics["delay_posts_total"] == stream.num_events
    assert report.metrics["queries_total"] >= 1
    assert report.metrics["swap_seconds_max"] > 0.0
    doc = report.to_json()
    assert doc["ok"] and doc["stream"] == stream.name


def test_replay_rejects_mismatched_dataset(target):
    _, backend = target
    stream = DelayStream(
        name="wrong", seed=0, period=1440, num_trains=3
    )
    with pytest.raises(ReplayError, match="3 trains"):
        replay_stream(stream, lambda: backend)


def test_replay_records_delay_failures(target):
    """A stream whose delays do not fit the dataset must *count*
    failures, not raise mid-flight — and check() then reports them."""
    timetable, backend = target
    from repro.streams import DelayEvent
    from repro.timetable.delays import Delay

    stream = DelayStream(
        name="hostile",
        seed=0,
        period=timetable.period,
        num_trains=timetable.num_trains,
        events=(
            DelayEvent(
                t_offset_s=0.0,
                delays=(Delay(train=10**6, minutes=5),),
            ),
        ),
    )
    report = replay_stream(
        stream, lambda: backend, ReplayConfig(query_threads=0, speed=100.0)
    )
    assert not report.ok
    assert report.metrics["delay_failures_total"] == 1
    with pytest.raises(ReplayError, match="failed delay posts"):
        report.check()


def test_report_check_flags_swap_bound():
    config = ReplayConfig(max_swap_seconds=0.001)
    report = ReplayReport(
        stream_name="s",
        num_events=1,
        config=config,
        metrics={
            "query_failures_total": 0,
            "delay_failures_total": 0,
            "delay_posts_total": 1,
            "swap_seconds_max": 1.0,
            "errors": {},
        },
    )
    assert not report.ok
    with pytest.raises(ReplayError, match="bound"):
        report.check()


def test_report_check_flags_missing_commits():
    report = ReplayReport(
        stream_name="s",
        num_events=5,
        config=ReplayConfig(),
        metrics={
            "query_failures_total": 0,
            "delay_failures_total": 0,
            "delay_posts_total": 3,
            "swap_seconds_max": 0.0,
            "errors": {},
        },
    )
    with pytest.raises(ReplayError, match="posted 3 of 5"):
        report.check()


def test_config_validation():
    with pytest.raises(ValueError, match="speed"):
        ReplayConfig(speed=0.0)
    with pytest.raises(ValueError, match="replan"):
        ReplayConfig(replan="bogus")
    with pytest.raises(ValueError, match="query_threads"):
        ReplayConfig(query_threads=-1)


def test_backend_error_is_importable_contract():
    # The harness catches exactly the SDK's typed error; anything else
    # propagates (a harness bug must not be silently counted).
    assert issubclass(BackendError, Exception)
