"""The delay-stream format and the synthetic stream generator."""

from __future__ import annotations

import json

import pytest

from repro.streams import DelayEvent, DelayStream, StreamFormatError
from repro.synthetic.delays import STREAM_SHAPES, generate_delay_stream
from repro.synthetic.instances import make_instance
from repro.timetable.delays import Delay, apply_delays

from tests.helpers import random_line_timetable


def _stream(**overrides) -> DelayStream:
    events = (
        DelayEvent(t_offset_s=0.5, delays=(Delay(train=0, minutes=7),)),
        DelayEvent(
            t_offset_s=2.0,
            delays=(
                Delay(train=1, minutes=3, from_stop=1),
                Delay(train=0, minutes=2),
            ),
            slack_per_leg=2,
        ),
    )
    fields = dict(
        name="unit", seed=4, period=1440, num_trains=10, events=events
    )
    fields.update(overrides)
    return DelayStream(**fields)


class TestModel:
    def test_round_trip_is_exact(self, tmp_path):
        stream = _stream()
        path = tmp_path / "s.json"
        stream.save(path)
        assert DelayStream.load(path) == stream
        # And the document itself survives a JSON round trip.
        assert DelayStream.from_json(
            json.loads(json.dumps(stream.to_json()))
        ) == stream

    def test_wire_conventions_omit_defaults(self):
        doc = _stream().to_json()
        first = doc["events"][0]
        assert "slack_per_leg" not in first
        assert "from_stop" not in first["delays"][0]
        second = doc["events"][1]
        assert second["slack_per_leg"] == 2
        assert second["delays"][0]["from_stop"] == 1

    def test_rejects_wrong_kind_and_version(self):
        doc = _stream().to_json()
        with pytest.raises(StreamFormatError, match="kind"):
            DelayStream.from_json({**doc, "kind": "nonsense"})
        with pytest.raises(StreamFormatError, match="version"):
            DelayStream.from_json({**doc, "v": 99})
        with pytest.raises(StreamFormatError, match="object"):
            DelayStream.from_json([1, 2])

    def test_rejects_malformed_events(self):
        doc = _stream().to_json()
        broken = {**doc, "events": [{"t_offset_s": 1.0, "delays": []}]}
        with pytest.raises(StreamFormatError, match="malformed"):
            DelayStream.from_json(broken)

    def test_rejects_unordered_offsets(self):
        events = (
            DelayEvent(t_offset_s=5.0, delays=(Delay(train=0, minutes=1),)),
            DelayEvent(t_offset_s=1.0, delays=(Delay(train=0, minutes=1),)),
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            _stream(events=events)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="t_offset_s"):
            DelayEvent(t_offset_s=-1.0, delays=(Delay(train=0, minutes=1),))
        with pytest.raises(ValueError, match="at least one"):
            DelayEvent(t_offset_s=0.0, delays=())

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(StreamFormatError, match="not valid JSON"):
            DelayStream.load(path)

    def test_duration_and_counts(self):
        stream = _stream()
        assert stream.num_events == 2
        assert stream.duration_s == 2.0
        assert DelayStream(
            name="empty", seed=0, period=1440, num_trains=1
        ).duration_s == 0.0


class TestGenerator:
    @pytest.fixture(scope="class")
    def timetable(self):
        return make_instance("oahu", scale="tiny")

    def test_deterministic_in_seed(self, timetable):
        a = generate_delay_stream(timetable, seed=3, num_events=12)
        b = generate_delay_stream(timetable, seed=3, num_events=12)
        c = generate_delay_stream(timetable, seed=4, num_events=12)
        assert a == b
        assert a != c

    def test_pins_the_timetable(self, timetable):
        stream = generate_delay_stream(timetable, seed=1, num_events=3)
        assert stream.period == timetable.period
        assert stream.num_trains == timetable.num_trains

    def test_every_event_applies_cleanly(self, timetable):
        """Generated delays always respect each train's run length —
        ``apply_delays`` validates ``from_stop`` and would reject a
        delay past the last departure."""
        stream = generate_delay_stream(timetable, seed=7, num_events=25)
        current = timetable
        for event in stream.events:
            current = apply_delays(
                current, list(event.delays),
                slack_per_leg=event.slack_per_leg,
            )
        assert current.num_trains == timetable.num_trains

    def test_shape_restriction(self, timetable):
        stream = generate_delay_stream(
            timetable, seed=2, num_events=8, shapes=("recovering_delay",)
        )
        assert all(e.slack_per_leg >= 1 for e in stream.events)
        closed = generate_delay_stream(
            timetable, seed=2, num_events=4, shapes=("line_closure",)
        )
        # A closure holds every train of one route from its first stop.
        assert all(
            all(d.from_stop == 0 for d in e.delays) for e in closed.events
        )

    def test_respects_bounds(self, timetable):
        stream = generate_delay_stream(
            timetable,
            seed=5,
            num_events=10,
            duration_s=30.0,
            shapes=("rush_hour_cascade", "rolling_disruption"),
            max_trains_per_event=3,
        )
        assert stream.num_events == 10
        assert stream.duration_s <= 30.0
        assert all(len(e.delays) <= 3 for e in stream.events)

    def test_rejects_bad_arguments(self, timetable):
        with pytest.raises(ValueError, match="num_events"):
            generate_delay_stream(timetable, num_events=0)
        with pytest.raises(ValueError, match="unknown stream shapes"):
            generate_delay_stream(timetable, shapes=("bogus",))
        with pytest.raises(ValueError, match="max_trains_per_event"):
            generate_delay_stream(timetable, max_trains_per_event=0)

    def test_composes_with_random_line_instances(self):
        timetable = random_line_timetable(11, num_stations=8, num_lines=5)
        stream = generate_delay_stream(timetable, seed=0, num_events=6)
        assert stream.num_events == 6
        assert set(STREAM_SHAPES) >= {
            "rush_hour_cascade", "line_closure",
        }
