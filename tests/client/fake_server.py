"""A scriptable fake HTTP server for client fault injection.

Real-TCP misbehaviour on demand: each accepted request is answered by
the next action in the script —

* ``("respond", status, payload_dict, extra_headers)`` — a complete
  JSON response (``Connection: close``, so pooled clients reconnect
  per request and the script stays in lock-step);
* ``("partial", n_body_bytes)`` — send the complete head but only the
  first ``n_body_bytes`` of the declared body, then close mid-body;
* ``("raw", data)`` — send literal bytes (malformed-payload
  injection), then close;
* ``("close",)`` — close immediately without answering;
* ``("hang", seconds)`` — read the request, then sit silent (timeout
  injection) before closing.

Received requests (method, path, headers, body) are recorded for
assertions — e.g. that a retry carried ``X-Retry-Attempt``.
"""

from __future__ import annotations

import json
import socket
import threading


def _http_response(
    status: int, payload: dict, extra_headers: dict | None = None
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 503: "Service Unavailable"}.get(
        status, "OK"
    )
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
        **(extra_headers or {}),
    }
    head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + body


class FakeServer:
    """One-thread accept loop executing a response script."""

    def __init__(self, script: list[tuple]) -> None:
        self.script = list(script)
        self.requests: list[dict] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._closing = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self.script and not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            try:
                self._handle(conn)
            finally:
                conn.close()

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        try:
            self.requests.append(_read_request(conn))
        except (OSError, ValueError):
            return
        if not self.script:
            return
        action = self.script.pop(0)
        kind = action[0]
        if kind == "respond":
            _, status, payload, *rest = action
            conn.sendall(
                _http_response(status, payload, rest[0] if rest else None)
            )
        elif kind == "partial":
            full = _http_response(
                200, {"v": 1, "kind": "journey", "pad": "x" * 256}
            )
            head, _, body = full.partition(b"\r\n\r\n")
            conn.sendall(head + b"\r\n\r\n" + body[: action[1]])
        elif kind == "raw":
            conn.sendall(action[1])
        elif kind == "hang":
            self._closing.wait(action[1])
        # "close" (and everything else) falls through to conn.close().

    def close(self) -> None:
        self._closing.set()
        self._sock.close()
        self._thread.join(timeout=5)


def _read_request(conn: socket.socket) -> dict:
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            raise ValueError("client closed before a full request arrived")
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    method, path, _version = lines[0].split()
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    while len(body) < length:
        chunk = conn.recv(4096)
        if not chunk:
            break
        body += chunk
    return {
        "method": method,
        "path": path,
        "headers": headers,
        "body": body.decode("utf-8", "replace"),
    }
