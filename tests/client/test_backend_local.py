"""Unit tests of :class:`LocalBackend`, :func:`connect` and the
client result types — the transport-independent half of the SDK."""

from __future__ import annotations

import pytest

from repro.client import (
    BadRequestError,
    ConnectionProfile,
    HttpBackend,
    JourneyAnswer,
    LocalBackend,
    ProfileAnswer,
    connect,
)
from repro.service import (
    BatchRequest,
    JourneyRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.store import StoreError
from repro.timetable.delays import Delay

from tests.client.conftest import CLIENT_CONFIG


class TestConstructionAndConnect:
    def test_store_path_is_opened_lazily(self, tmp_path, make_service):
        store = tmp_path / "oahu"
        make_service().save(store)
        backend = LocalBackend(store)
        assert backend._service is None, "store must not load eagerly"
        assert backend.name == "oahu"  # the directory basename
        answer = backend.journey(0, 5)
        assert answer.reachable
        assert backend._service is not None

    def test_bad_store_path_surfaces_on_first_use(self, tmp_path):
        backend = LocalBackend(tmp_path / "nowhere")
        with pytest.raises(StoreError):
            backend.journey(0, 5)

    def test_close_releases_a_path_built_service(
        self, tmp_path, make_service
    ):
        store = tmp_path / "oahu"
        make_service().save(store)
        with LocalBackend(store) as backend:
            backend.journey(0, 5)
            backend.apply_delays([Delay(train=0, minutes=10)])
            assert backend.info().generation == 1
            assert backend._service is not None
        assert backend._service is None
        # Reusable after close: lazily reloads the *stored* state, so
        # the delay generation resets along with the applied delays.
        assert backend.info().generation == 0
        assert backend.journey(0, 5).reachable
        assert backend.apply_delays([Delay(train=0, minutes=5)]).generation == 1

    def test_connect_dispatches_on_target(self, tmp_path, make_service):
        store = tmp_path / "oahu"
        make_service().save(store)
        assert isinstance(connect(store), LocalBackend)
        assert isinstance(connect(str(store)), LocalBackend)
        assert isinstance(connect(make_service()), LocalBackend)
        remote = connect("http://127.0.0.1:9/oahu")
        assert isinstance(remote, HttpBackend)
        assert remote._dataset == "oahu"

    def test_http_url_validation(self):
        with pytest.raises(ValueError):
            HttpBackend("ftp://example.com/oahu")
        with pytest.raises(ValueError):
            HttpBackend("http://127.0.0.1:9/a", dataset="b")

    def test_service_parity_with_store_roundtrip(
        self, tmp_path, make_service
    ):
        """A backend over the store answers exactly like a backend
        over the live service the store was saved from."""
        service = make_service()
        store = tmp_path / "oahu"
        service.save(store)
        live = LocalBackend(service, name="oahu")
        warm = LocalBackend(store, name="oahu")
        a, b = live.journey(2, 9, departure=480), warm.journey(
            2, 9, departure=480
        )
        assert a.profile == b.profile
        assert a.arrival == b.arrival and a.legs == b.legs


class TestValidationMatchesWire:
    """LocalBackend runs the server's own parsers: the codes must be
    the wire protocol's, not ad-hoc ones."""

    def test_out_of_range_station(self, local_backend):
        with pytest.raises(BadRequestError) as excinfo:
            local_backend.profile(99)
        assert excinfo.value.code == "out_of_range"
        assert excinfo.value.field == "source"
        assert excinfo.value.status == 400

    def test_journey_requires_target(self, local_backend):
        with pytest.raises(TypeError):
            local_backend.journey(0)

    def test_empty_batch_rejected(self, local_backend):
        with pytest.raises(BadRequestError) as excinfo:
            local_backend.batch(BatchRequest())
        assert excinfo.value.code == "invalid_request"

    def test_delay_out_of_range_train(self, local_backend):
        with pytest.raises(BadRequestError) as excinfo:
            local_backend.apply_delays([Delay(train=10**6, minutes=5)])
        assert excinfo.value.code == "out_of_range"
        assert local_backend.info().generation == 0


class TestAnswerSemantics:
    def test_journey_earliest_arrival_matches_facade_profile(
        self, local_backend, make_service
    ):
        """ConnectionProfile's cyclic evaluation must agree with the
        packed Profile's at every minute of the period."""
        service = make_service()
        answer = local_backend.journey(0, 5)
        reference = service.journey(0, 5).profile
        assert (
            answer.profile.connection_points()
            == reference.connection_points()
        )
        for tau in range(0, 1440, 7):
            assert answer.profile.earliest_arrival(
                tau
            ) == reference.earliest_arrival(tau), f"diverges at tau={tau}"

    def test_profile_answer_maps_every_other_station(self, local_backend):
        answer = local_backend.profile(0)
        assert sorted(answer.profiles) == list(range(1, 12))
        assert answer.earliest_arrival(0, 100) == 100  # source identity

    def test_empty_connection_profile(self):
        profile = ConnectionProfile(points=())
        assert profile.is_empty() and len(profile) == 0
        assert profile.earliest_arrival(0) >= 2**62

    def test_generation_counts_successive_delay_scenarios(
        self, local_backend
    ):
        first = local_backend.apply_delays([Delay(train=0, minutes=10)])
        second = local_backend.apply_delays([Delay(train=1, minutes=5)])
        assert (first.generation, second.generation) == (1, 2)
        assert local_backend.info().generation == 2

    def test_journey_many_equals_batch_journeys(self, local_backend):
        requests = [JourneyRequest(s, s + 6) for s in range(4)]
        via_many = local_backend.journey_many(requests)
        via_batch = local_backend.batch(
            BatchRequest(journeys=tuple(requests))
        )
        assert [a.profile for a in via_many] == [
            a.profile for a in via_batch.journeys
        ]

    def test_iter_batch_yields_journeys_then_profiles(self, local_backend):
        request = BatchRequest(
            journeys=(JourneyRequest(0, 5),),
            profiles=(ProfileRequest(1), ProfileRequest(2)),
        )
        items = list(local_backend.iter_batch(request))
        assert isinstance(items[0], JourneyAnswer)
        assert isinstance(items[1], ProfileAnswer)
        assert isinstance(items[2], ProfileAnswer)
        assert [getattr(i, "source") for i in items] == [0, 1, 2]

    def test_cache_hits_are_marked(self, local_backend):
        assert not local_backend.journey(3, 8).stats.cache_hit
        assert local_backend.journey(3, 8).stats.cache_hit

    def test_info_reflects_config(self, oahu_tiny):
        service = TransitService(
            oahu_tiny, ServiceConfig(kernel="python", num_threads=1)
        )
        info = LocalBackend(service, name="x").info()
        assert info.kernel == "python"
        assert info.has_distance_table is False
        assert info.stations == 12

    def test_runs_without_distance_table(self, oahu_tiny):
        """The client surface must not assume the pruned paths: a
        table-less service answers every shape too."""
        backend = LocalBackend(
            TransitService(oahu_tiny, ServiceConfig(num_threads=1))
        )
        assert backend.journey(0, 5).reachable
        assert backend.batch([(0, 5)]).stats.num_queries == 1

    def test_default_config_matches_suite_recipe(self, local_backend):
        # Guards the fixture contract the parity suite relies on.
        assert local_backend.service.config == CLIENT_CONFIG
