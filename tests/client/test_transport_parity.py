"""Transport parity: the client SDK's acceptance bar.

Any program written against :class:`TransitBackend` must produce
**bitwise-identical answers** over :class:`LocalBackend` and
:class:`HttpBackend` (against a live server over real TCP).  Every
test here runs the *same* call sequence on both backends — sequences
matter, because the per-service result cache makes answers
state-dependent (``cache_hit`` flags) and parity must hold for the
stateful stream, not just for isolated calls.

Wall-clock fields are the one permitted difference; everything else —
profiles, arrivals, legs, counters, classifications, cache-hit flags,
error codes and exception types — must match exactly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.client import (
    BadRequestError,
    ConnectionProfile,
    TransitBackend,
)
from repro.service import BatchRequest, JourneyRequest, ProfileRequest
from repro.timetable.delays import Delay


def scrubbed(answer):
    """A JSON-ish rendering of a client answer with wall-clock fields
    zeroed and private caches dropped — every deterministic public
    field survives."""
    def scrub(obj):
        if isinstance(obj, dict):
            return {
                key: (
                    0.0
                    if isinstance(key, str) and key.endswith("_seconds")
                    else scrub(value)
                )
                for key, value in obj.items()
                if not (isinstance(key, str) and key.startswith("_"))
            }
        if isinstance(obj, (list, tuple)):
            return [scrub(item) for item in obj]
        return obj

    if isinstance(answer, list):
        return [scrubbed(item) for item in answer]
    return scrub(dataclasses.asdict(answer))


def assert_parity(call, http_backend, local_backend):
    """Run ``call`` on both backends; answers must match scrubbed."""
    remote = call(http_backend)
    local = call(local_backend)
    assert scrubbed(remote) == scrubbed(local)
    return remote, local


class TestQueryShapeParity:
    def test_backends_satisfy_the_protocol(
        self, http_backend, local_backend
    ):
        assert isinstance(http_backend, TransitBackend)
        assert isinstance(local_backend, TransitBackend)

    def test_journey(self, http_backend, local_backend):
        assert_parity(
            lambda b: b.journey(0, 5), http_backend, local_backend
        )

    def test_journey_with_departure_and_legs(
        self, http_backend, local_backend
    ):
        remote, _ = assert_parity(
            lambda b: b.journey(2, 9, departure=480),
            http_backend,
            local_backend,
        )
        assert remote.arrival is not None and remote.legs

    def test_profile_full(self, http_backend, local_backend):
        remote, _ = assert_parity(
            lambda b: b.profile(3), http_backend, local_backend
        )
        # All stations but the source are encoded.
        assert len(remote.profiles) == 11
        assert all(
            isinstance(p, ConnectionProfile)
            for p in remote.profiles.values()
        )

    def test_profile_with_targets(self, http_backend, local_backend):
        remote, _ = assert_parity(
            lambda b: b.profile(ProfileRequest(3), targets=[0, 7]),
            http_backend,
            local_backend,
        )
        assert sorted(remote.profiles) == [0, 7]

    def test_batch_mixed(self, http_backend, local_backend):
        request = BatchRequest(
            journeys=(JourneyRequest(0, 5), JourneyRequest(1, 6, 540)),
            profiles=(ProfileRequest(2),),
        )
        remote, _ = assert_parity(
            lambda b: b.batch(request), http_backend, local_backend
        )
        assert len(remote.journeys) == 2 and len(remote.profiles) == 1

    def test_batch_from_pairs(self, http_backend, local_backend):
        assert_parity(
            lambda b: b.batch([(0, 5), (7, 2), (4, 11)]),
            http_backend,
            local_backend,
        )

    def test_journey_many(self, http_backend, local_backend):
        requests = [JourneyRequest(s, (s + 5) % 12) for s in range(4)]
        remote, _ = assert_parity(
            lambda b: b.journey_many(requests), http_backend, local_backend
        )
        assert [a.target for a in remote] == [r.target for r in requests]

    def test_iter_batch_streams_in_submission_order(
        self, http_backend, local_backend
    ):
        request = BatchRequest(
            journeys=(JourneyRequest(0, 5), JourneyRequest(3, 8)),
            profiles=(ProfileRequest(6),),
        )
        remote, local = assert_parity(
            lambda b: list(b.iter_batch(request)),
            http_backend,
            local_backend,
        )
        assert [type(item).__name__ for item in remote] == [
            "JourneyAnswer",
            "JourneyAnswer",
            "ProfileAnswer",
        ]
        assert len(remote) == len(local) == 3

    def test_iter_batch_answers_match_batch_payloads(
        self, http_backend, local_backend
    ):
        """Streaming trades batch dispatch for per-item requests; the
        *payloads* (profiles, reachability) must still agree with the
        materialized batch on both transports."""
        pairs = [(5, 2), (7, 1)]
        for backend in (http_backend, local_backend):
            streamed = list(backend.iter_batch(pairs))
            materialized = backend.batch(pairs)
            for item, twin in zip(streamed, materialized.journeys):
                assert item.profile == twin.profile
                assert item.reachable == twin.reachable

    def test_multicriteria(self, http_backend, local_backend):
        remote, _ = assert_parity(
            lambda b: b.multicriteria(2, 5, departure=480),
            http_backend,
            local_backend,
        )
        assert remote.reachable and remote.options
        assert remote.stats.kind == "multicriteria"

    def test_multicriteria_tight_budget(self, http_backend, local_backend):
        assert_parity(
            lambda b: b.multicriteria(2, 5, departure=480, max_transfers=0),
            http_backend,
            local_backend,
        )

    def test_via(self, http_backend, local_backend):
        remote, _ = assert_parity(
            lambda b: b.via(2, 5, 7, departure=480),
            http_backend,
            local_backend,
        )
        assert remote.reachable
        assert remote.via_arrival <= remote.arrival
        assert remote.stats.kind == "via"

    def test_via_degenerate_hops(self, http_backend, local_backend):
        assert_parity(
            lambda b: b.via(2, 2, 5, departure=480),
            http_backend,
            local_backend,
        )
        assert_parity(
            lambda b: b.via(2, 5, 5, departure=480),
            http_backend,
            local_backend,
        )

    def test_min_transfers(self, http_backend, local_backend):
        remote, _ = assert_parity(
            lambda b: b.min_transfers(2, 5, departure=480),
            http_backend,
            local_backend,
        )
        assert remote.reachable and remote.transfers is not None
        assert remote.stats.kind == "min_transfers"

    def test_info(self, http_backend, local_backend):
        remote = http_backend.info()
        local = local_backend.info()
        # `source` legitimately differs ("memory" vs the server's);
        # the dataset description itself must not.
        for field in (
            "name",
            "generation",
            "timetable",
            "stations",
            "trains",
            "connections",
            "kernel",
            "has_distance_table",
        ):
            assert getattr(remote, field) == getattr(local, field)


class TestStatefulParity:
    def test_cache_hits_surface_identically(
        self, http_backend, local_backend
    ):
        """The repeat of an identical request is served from the
        result cache on both sides, and both mark it ``cache_hit``."""
        first_remote, first_local = assert_parity(
            lambda b: b.journey(1, 7), http_backend, local_backend
        )
        assert not first_remote.stats.cache_hit
        repeat_remote, repeat_local = assert_parity(
            lambda b: b.journey(1, 7), http_backend, local_backend
        )
        assert repeat_remote.stats.cache_hit
        assert repeat_local.stats.cache_hit

    def test_cache_hits_cover_every_new_shape(
        self, http_backend, local_backend
    ):
        calls = (
            lambda b: b.multicriteria(2, 5, departure=480),
            lambda b: b.via(2, 5, 7, departure=480),
            lambda b: b.min_transfers(2, 9, departure=480),
        )
        for call in calls:
            first, _ = assert_parity(call, http_backend, local_backend)
            assert not first.stats.cache_hit
            repeat_remote, repeat_local = assert_parity(
                call, http_backend, local_backend
            )
            assert repeat_remote.stats.cache_hit
            assert repeat_local.stats.cache_hit

    def test_delay_replanning_parity(self, http_backend, local_backend):
        """The fully dynamic scenario through both transports: apply
        delays, then every query shape against the replanned dataset
        answers identically (and differs from the undelayed answer)."""
        before, _ = assert_parity(
            lambda b: b.journey(2, 5), http_backend, local_backend
        )
        delays = [Delay(train=0, minutes=45)]
        update_remote = http_backend.apply_delays(delays)
        update_local = local_backend.apply_delays(delays)
        assert update_remote.generation == update_local.generation == 1
        assert update_remote.num_delays == update_local.num_delays == 1

        after, _ = assert_parity(
            lambda b: b.journey(2, 5), http_backend, local_backend
        )
        assert after.profile != before.profile, (
            "delaying train 0 by 45 minutes must move the 2→5 profile"
        )
        assert_parity(
            lambda b: b.profile(2, targets=[5]), http_backend, local_backend
        )
        assert_parity(
            lambda b: b.batch([(2, 5), (0, 9)]), http_backend, local_backend
        )
        assert_parity(
            lambda b: b.multicriteria(2, 5, departure=480),
            http_backend,
            local_backend,
        )
        assert_parity(
            lambda b: b.via(2, 5, 7, departure=480),
            http_backend,
            local_backend,
        )
        assert_parity(
            lambda b: b.min_transfers(2, 5, departure=480),
            http_backend,
            local_backend,
        )

    def test_delay_validation_errors_match(
        self, http_backend, local_backend
    ):
        """A bad delay raises the same typed exception — same code,
        same exception type — on both transports, and swaps nothing."""
        bad = [Delay(train=0, minutes=10, from_stop=9999)]
        errors = []
        for backend in (http_backend, local_backend):
            with pytest.raises(BadRequestError) as excinfo:
                backend.apply_delays(bad)
            errors.append(excinfo.value)
        assert [e.code for e in errors] == ["invalid_request"] * 2
        assert http_backend.info().generation == 0
        assert local_backend.info().generation == 0


class TestErrorParity:
    @pytest.mark.parametrize(
        "call, code, field",
        [
            (lambda b: b.journey(0, 99), "out_of_range", "target"),
            (lambda b: b.journey(-1, 5), "out_of_range", "source"),
            (
                lambda b: b.profile(0, targets=[99]),
                "out_of_range",
                "targets",
            ),
            (
                lambda b: b.profile(ProfileRequest(0, num_threads=10**6)),
                "out_of_range",
                "num_threads",
            ),
            (lambda b: b.batch(BatchRequest()), "invalid_request", None),
            (
                lambda b: b.multicriteria(0, 99, departure=480),
                "out_of_range",
                "target",
            ),
            (
                lambda b: b.multicriteria(
                    0, 5, departure=480, max_transfers=999
                ),
                "out_of_range",
                "max_transfers",
            ),
            (
                lambda b: b.via(0, 99, 5, departure=480),
                "out_of_range",
                "via",
            ),
            (
                lambda b: b.min_transfers(-1, 5, departure=480),
                "out_of_range",
                "source",
            ),
        ],
    )
    def test_rejections_are_identical(
        self, http_backend, local_backend, call, code, field
    ):
        errors = []
        for backend in (http_backend, local_backend):
            with pytest.raises(BadRequestError) as excinfo:
                call(backend)
            errors.append(excinfo.value)
        remote, local = errors
        assert (remote.code, remote.field, remote.status) == (
            local.code,
            local.field,
            local.status,
        )
        assert remote.code == code
        assert remote.field == field

    def test_rejections_are_also_value_errors(self, http_backend):
        """Pre-client call sites catch ValueError; the typed hierarchy
        must keep satisfying them over every transport."""
        with pytest.raises(ValueError):
            http_backend.journey(0, 99)
