"""Fault injection for :class:`HttpBackend`.

Every way the network or the serving side can fail must surface as
the *documented typed exception* (``docs/CLIENT.md``), never as a raw
``OSError``/``http.client`` leak and never as a silent wrong answer:

* connection refused            → ``TransportError(connection_refused)``
* mid-body disconnect           → ``TransportError(disconnected)``
* slow server past the timeout  → ``BackendTimeoutError(timeout)``
* 503 storm exhausting retries  → ``OverloadedError`` (with the
  server's ``Retry-After`` hint and the attempt count)

Plus the positive halves of the retry contract: a transient 503 is
retried to success with backoff honouring ``Retry-After``, retries
carry ``X-Retry-Attempt`` (what the real server counts in
``/metrics``), and a keep-alive connection the server closed while
idle is replaced transparently.
"""

from __future__ import annotations

import socket

import pytest

from repro.client import (
    BackendTimeoutError,
    HttpBackend,
    OverloadedError,
    RetryPolicy,
    TransportError,
)

from tests.client.fake_server import FakeServer

FAST_RETRY = RetryPolicy(retries=3, backoff=0.01, max_backoff=0.05)

OVERLOADED = {
    "v": 1,
    "error": {"code": "overloaded", "message": "busy", "retriable": True},
}


def journey_payload() -> dict:
    return {
        "v": 1,
        "kind": "journey",
        "source": 0,
        "target": 5,
        "reachable": True,
        "profile": [[480, 14]],
        "departure": None,
        "arrival": None,
        "legs": None,
        "stats": {
            "kind": "journey",
            "kernel": "flat",
            "num_threads": 1,
            "settled_connections": 7,
            "simulated_seconds": 0.0,
            "total_seconds": 0.0,
            "classification": "table",
            "table_prunes": 0,
            "connection_stops": 0,
            "cache_hit": False,
        },
    }


def backend_for(server: FakeServer, **kwargs) -> HttpBackend:
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("timeout", 5.0)
    return HttpBackend(
        f"http://127.0.0.1:{server.port}", dataset="oahu", **kwargs
    )


class TestTransportFaults:
    def test_connection_refused(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        backend = HttpBackend(f"http://127.0.0.1:{port}", dataset="oahu")
        with pytest.raises(TransportError) as excinfo:
            backend.journey(0, 5)
        assert excinfo.value.code == "connection_refused"

    def test_mid_body_disconnect(self):
        server = FakeServer([("partial", 60)])
        try:
            backend = backend_for(server)
            with pytest.raises(TransportError) as excinfo:
                backend.journey(0, 5)
            assert excinfo.value.code == "disconnected"
        finally:
            server.close()

    def test_immediate_disconnect_on_fresh_connection(self):
        """A fresh (non-pooled) connection the server drops without
        answering is a hard transport error, not a silent retry loop."""
        server = FakeServer([("close",)])
        try:
            backend = backend_for(server)
            with pytest.raises(TransportError) as excinfo:
                backend.journey(0, 5)
            assert excinfo.value.code == "disconnected"
        finally:
            server.close()

    def test_slow_server_hits_timeout(self):
        server = FakeServer([("hang", 30.0)])
        try:
            backend = backend_for(server, timeout=0.2)
            with pytest.raises(BackendTimeoutError) as excinfo:
                backend.journey(0, 5)
            assert excinfo.value.code == "timeout"
            assert isinstance(excinfo.value, TransportError)
        finally:
            server.close()

    def test_non_json_body_is_typed(self):
        body = b"<html>gateway error</html>"
        server = FakeServer(
            [
                (
                    "raw",
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/html\r\n"
                    b"Content-Length: %d\r\n"
                    b"Connection: close\r\n\r\n" % len(body) + body,
                ),
            ]
        )
        try:
            backend = backend_for(server)
            with pytest.raises(TransportError) as excinfo:
                backend.journey(0, 5)
            assert excinfo.value.code == "invalid_response"
        finally:
            server.close()


class TestRetries:
    def test_503_storm_exhausts_retries(self):
        policy = RetryPolicy(retries=2, backoff=0.01, max_backoff=0.02)
        server = FakeServer(
            [
                ("respond", 503, OVERLOADED, {"Retry-After": "1"}),
                ("respond", 503, OVERLOADED, {"Retry-After": "1"}),
                ("respond", 503, OVERLOADED, {"Retry-After": "1"}),
            ]
        )
        try:
            backend = backend_for(server, retry=policy)
            with pytest.raises(OverloadedError) as excinfo:
                backend.journey(0, 5)
            error = excinfo.value
            assert error.code == "overloaded"
            assert error.attempts == 3  # initial + 2 retries
            assert error.retry_after == 1.0
            assert backend.stats.retries == 2
        finally:
            server.close()

    def test_transient_503_retries_to_success(self):
        server = FakeServer(
            [
                ("respond", 503, OVERLOADED, {"Retry-After": "0"}),
                ("respond", 200, journey_payload()),
            ]
        )
        try:
            backend = backend_for(server)
            answer = backend.journey(0, 5)
            assert answer.reachable and answer.profile.points == ((480, 14),)
            assert backend.stats.retries == 1
            # The retry announced itself: the server-side
            # retries_observed_total counter is fed by this header.
            assert "x-retry-attempt" not in server.requests[0]["headers"]
            assert server.requests[1]["headers"]["x-retry-attempt"] == "1"
        finally:
            server.close()

    def test_retry_after_hint_is_honored(self):
        """With a permissive max_backoff the sleep follows the
        server's Retry-After, not the exponential schedule."""
        server = FakeServer(
            [
                ("respond", 503, OVERLOADED, {"Retry-After": "0.5"}),
                ("respond", 200, journey_payload()),
            ]
        )
        try:
            backend = backend_for(
                server,
                retry=RetryPolicy(retries=1, backoff=0.001, max_backoff=60.0),
            )
            slept: list[float] = []
            backend._sleep = slept.append
            backend.journey(0, 5)
            assert slept == [0.5]
        finally:
            server.close()

    def test_retry_after_is_capped_by_max_backoff(self):
        server = FakeServer(
            [
                ("respond", 503, OVERLOADED, {"Retry-After": "3600"}),
                ("respond", 200, journey_payload()),
            ]
        )
        try:
            backend = backend_for(
                server,
                retry=RetryPolicy(retries=1, backoff=0.001, max_backoff=0.05),
            )
            slept: list[float] = []
            backend._sleep = slept.append
            backend.journey(0, 5)
            assert slept == [0.05]
        finally:
            server.close()

    def test_plain_400_is_not_retried(self):
        server = FakeServer(
            [
                (
                    "respond",
                    400,
                    {
                        "v": 1,
                        "error": {"code": "out_of_range", "message": "no"},
                    },
                ),
            ]
        )
        try:
            backend = backend_for(server)
            with pytest.raises(ValueError):
                backend.journey(0, 5)
            assert backend.stats.retries == 0
        finally:
            server.close()


class TestKeepAlivePool:
    def test_idle_connection_closed_by_server_is_replaced(
        self, harness, local_backend
    ):
        """Force a stale pooled connection by answering one request,
        then restarting nothing — instead, close the server's side by
        driving the real harness through a full drain of its idle
        connections is heavyweight; the portable check: a backend
        whose pooled connection the *client* knows is dead (server
        sent Connection: close) transparently uses a fresh one."""
        backend = HttpBackend(
            f"http://127.0.0.1:{harness.port}", dataset="oahu", pool_size=1
        )
        try:
            first = backend.journey(0, 5)
            second = backend.journey(0, 5)  # reuses the pooled conn
            assert first.profile == second.profile
            assert backend.stats.requests == 2
        finally:
            backend.close()

    def test_stale_idle_connection_is_replayed_on_a_fresh_one(self):
        """A pooled connection the server closed while idle must be
        replaced by a *fresh* connection (never a second pooled one)
        and the query re-sent transparently."""
        import http.client as http_client
        import socket as socket_mod

        # A throwaway listener that accepts and instantly closes gives
        # us genuinely stale (server-side-closed) connections to seed
        # the pool with.
        closer = socket_mod.socket()
        closer.bind(("127.0.0.1", 0))
        closer.listen(4)
        closer_port = closer.getsockname()[1]

        def make_stale():
            conn = http_client.HTTPConnection("127.0.0.1", closer_port)
            conn.connect()
            victim, _ = closer.accept()
            victim.close()
            return conn

        server = FakeServer([("respond", 200, journey_payload())])
        try:
            backend = backend_for(server, pool_size=4)
            backend._pool._idle.extend([make_stale(), make_stale()])
            answer = backend.journey(0, 5)
            assert answer.reachable
            assert backend.stats.reconnects == 1
            # Only one stale connection was consumed; the re-send went
            # out fresh rather than popping the second stale one.
            assert len(backend._pool._idle) >= 1
        finally:
            closer.close()
            server.close()

    def test_apply_delays_is_never_replayed(self):
        """The delays endpoint is not idempotent: it must bypass the
        idle stack entirely, so a stale pooled connection can never
        force a silent re-send (= delays applied twice)."""
        import http.client as http_client
        import socket as socket_mod

        closer = socket_mod.socket()
        closer.bind(("127.0.0.1", 0))
        closer.listen(1)

        stale = http_client.HTTPConnection(
            "127.0.0.1", closer.getsockname()[1]
        )
        stale.connect()
        victim, _ = closer.accept()
        victim.close()

        server = FakeServer(
            [
                (
                    "respond",
                    200,
                    {
                        "v": 1,
                        "dataset": "oahu",
                        "generation": 1,
                        "num_delays": 1,
                        "slack_per_leg": 0,
                        "swap_seconds": 0.01,
                    },
                ),
            ]
        )
        try:
            backend = backend_for(server, pool_size=4)
            backend._pool._idle.append(stale)
            from repro.timetable.delays import Delay

            update = backend.apply_delays([Delay(train=0, minutes=45)])
            assert update.generation == 1
            # The stale connection was never even tried — exactly one
            # request reached the server, on a fresh connection.
            assert backend.stats.reconnects == 0
            assert len(server.requests) == 1
            assert backend._pool._idle, "idle stack must be untouched"
        finally:
            closer.close()
            server.close()

    def test_unresolved_info_makes_one_request(self):
        entry = {
            "name": "oahu",
            "source": "store",
            "generation": 0,
            "timetable": "oahu",
            "stations": 12,
            "trains": 3,
            "connections": 9,
            "kernel": "flat",
            "has_distance_table": True,
        }
        server = FakeServer(
            [("respond", 200, {"v": 1, "datasets": [entry]})]
        )
        try:
            backend = HttpBackend(f"http://127.0.0.1:{server.port}")
            info = backend.info()  # resolves the name and answers
            assert info.name == "oahu"
            assert backend.dataset == "oahu"  # no further fetch needed
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_stale_pooled_connection_reconnects(self):
        """A server that closes the connection after each response
        (Connection: close is respected by the pool) never surfaces
        disconnects to the caller across sequential requests."""
        server = FakeServer(
            [
                ("respond", 200, journey_payload()),
                ("respond", 200, journey_payload()),
            ]
        )
        try:
            backend = backend_for(server, pool_size=1)
            backend.journey(0, 5)
            backend.journey(0, 5)
            assert backend.stats.requests == 2
        finally:
            server.close()
