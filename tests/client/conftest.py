"""Client-suite fixtures: twin backends over identical datasets.

The parity suite's setup mirrors the server e2e suite's: one recipe
(flat kernel + distance table) builds two *independent,
identically-configured* services — one behind a live
:class:`TransitServer` reached through :class:`HttpBackend`, one
wrapped in a :class:`LocalBackend` — so any divergence between
transports is the client's fault, never the dataset's.
"""

from __future__ import annotations

import pytest

from repro.client import HttpBackend, LocalBackend
from repro.server import DatasetRegistry
from repro.service import ServiceConfig, TransitService

from tests.server.harness import ServerHarness

#: The same recipe the server suite pins parity under: flat kernel
#: with a distance table, so the pruned query paths are exercised.
CLIENT_CONFIG = ServiceConfig(
    num_threads=2,
    use_distance_table=True,
    transfer_fraction=0.25,
)


@pytest.fixture()
def make_service(oahu_tiny):
    def _make(config: ServiceConfig = CLIENT_CONFIG) -> TransitService:
        return TransitService(oahu_tiny, config)

    return _make


@pytest.fixture()
def harness(make_service):
    """A live server over one dataset named ``oahu``."""
    registry = DatasetRegistry.from_services({"oahu": make_service()})
    h = ServerHarness(registry)
    yield h
    h.close()


@pytest.fixture()
def local_backend(make_service):
    """A fresh in-process twin of whatever the harness serves."""
    backend = LocalBackend(make_service(), name="oahu")
    yield backend
    backend.close()


@pytest.fixture()
def http_backend(harness):
    backend = HttpBackend(f"http://127.0.0.1:{harness.port}", dataset="oahu")
    yield backend
    backend.close()
