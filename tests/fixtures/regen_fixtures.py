"""Regenerate the golden profile fixtures.

Usage (from the repo root)::

    PYTHONPATH=src python tests/fixtures/regen_fixtures.py

Writes ``profiles_<instance>.json`` next to this script for the three
canonical instances.  The snapshots hold *reduced profiles* — the
algorithm-independent answer every implementation must reproduce — per
(source, station) pair, generated with the reference pure-Python SPCS.
``tests/core/test_golden_profiles.py`` diffs both the reference and the
flat-array kernel against them, so any future kernel edit that changes
an answer fails loudly against known-good output.

Regenerate only when an intentional semantic change lands (a new
instance generator, a changed transfer-time model, …) and call the
change out in the PR.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent
REPO_ROOT = FIXTURE_DIR.parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.spcs import spcs_profile_search  # noqa: E402
from repro.graph.td_model import build_td_graph  # noqa: E402
from repro.synthetic.instances import make_instance  # noqa: E402

from tests.helpers import toy_timetable  # noqa: E402


def canonical_instances():
    """The three golden instances: the hand-checkable toy network plus
    one dense-bus and one sparse-rail synthetic at tiny scale."""
    toy = toy_timetable()
    return {
        "toy": (toy, list(range(toy.num_stations))),
        "oahu-tiny": (make_instance("oahu", scale="tiny", seed=0), [0, 5]),
        "germany-tiny": (make_instance("germany", scale="tiny", seed=0), [0, 3]),
    }


def snapshot(timetable, sources) -> dict:
    graph = build_td_graph(timetable)
    out = {
        "instance": timetable.name,
        "period": timetable.period,
        "num_stations": timetable.num_stations,
        "sources": {},
    }
    for source in sources:
        result = spcs_profile_search(graph, source)
        profiles = {}
        for station in range(graph.num_stations):
            profile = result.profile(station)
            profiles[str(station)] = [
                [int(d), int(a)]
                for d, a in zip(profile.deps, profile.arrs)
            ]
        out["sources"][str(source)] = profiles
    return out


def main() -> int:
    for name, (timetable, sources) in canonical_instances().items():
        path = FIXTURE_DIR / f"profiles_{name}.json"
        data = snapshot(timetable, sources)
        path.write_text(json.dumps(data, separators=(",", ":")) + "\n")
        points = sum(
            len(p) for profs in data["sources"].values() for p in profs.values()
        )
        print(f"wrote {path.name}: {len(data['sources'])} sources, {points} points")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
