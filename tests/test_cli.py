"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


class TestGenerateAndInfo:
    def test_generate_then_info(self, tmp_path, capsys):
        feed = tmp_path / "feed"
        assert main([
            "generate", "--instance", "oahu", "--scale", "tiny",
            "--output", str(feed),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (feed / "stops.txt").exists()

        assert main(["info", "--gtfs", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "stations" in out and "route" in out

    def test_info_instance(self, capsys):
        assert main(["info", "--instance", "germany", "--scale", "tiny"]) == 0
        assert "germany" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_to_single_target(self, capsys):
        assert main([
            "profile", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "3", "--cores", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "one-to-all from station 0" in out
        assert "to    3" in out


class TestQueryCommand:
    def test_plain_query(self, capsys):
        assert main([
            "query", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "5", "--cores", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 → 5" in out
        assert "depart" in out

    def test_query_with_table(self, capsys):
        assert main([
            "query", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "5", "--cores", "2",
            "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "distance table" in out


class TestBatchCommand:
    def test_batch_serial_flat(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "5", "--kernel", "flat", "--backend", "serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "5 queries on kernel=flat backend=serial" in out
        assert "queries/s" in out
        assert out.count("→") == 5

    def test_batch_python_kernel_with_table(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "3", "--kernel", "python",
            "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "kernel=python" in out

    def test_kernels_answer_identically(self, capsys):
        answers = {}
        for kernel in ("python", "flat"):
            assert main([
                "batch", "--instance", "germany", "--scale", "tiny",
                "--n-queries", "4", "--kernel", kernel, "--seed", "2",
            ]) == 0
            out = capsys.readouterr().out
            answers[kernel] = [
                line for line in out.splitlines() if "→" in line
            ]
        assert answers["python"] == answers["flat"]


class TestTableCommands:
    def test_table1(self, capsys):
        assert main([
            "table1", "--instance", "oahu", "--scale", "tiny", "--queries", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "spd-up" in out and "LC" in out

    def test_table2(self, capsys):
        assert main([
            "table2", "--instance", "oahu", "--scale", "tiny", "--queries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "prepro" in out


class TestArgumentValidation:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_instance_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--instance", "narnia"])


class TestBatchJson:
    def test_json_summary_is_single_json_line(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "4", "--seed", "2", "--json",
        ]) == 0
        out = capsys.readouterr().out
        import json

        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 1, f"--json must emit exactly one line: {out!r}"
        summary = json.loads(lines[0])
        assert summary["num_queries"] == 4
        assert summary["seed"] == 2
        assert summary["queries_per_second"] > 0
        assert sum(summary["classifications"].values()) == 4

    def test_json_stays_clean_with_distance_table(self, capsys):
        """The human-readable distance-table line must not leak into
        stdout when --json is on (regression: corrupted JSON)."""
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "3", "--json", "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        import json

        summary = json.loads(out)  # whole stdout must parse as one doc
        assert summary["transfer_stations"] > 0
        assert summary["table_mib"] > 0

    def test_seed_changes_workload(self, capsys):
        outputs = []
        for seed in ("0", "1"):
            assert main([
                "batch", "--instance", "oahu", "--scale", "tiny",
                "--n-queries", "5", "--seed", seed,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        pairs = [
            [l for l in out.splitlines() if "→" in l] for out in outputs
        ]
        assert pairs[0] != pairs[1]


class TestStoreCommands:
    @pytest.fixture()
    def store(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main([
            "prepare", "--instance", "oahu", "--scale", "tiny",
            "--store", str(path), "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "store written to" in out
        assert "--from-store" in out
        return path

    def test_prepare_writes_a_loadable_store(self, store):
        assert (store / "manifest.json").exists()
        assert (store / "dataset.bin").exists()
        assert (store / "table.npz").exists()

    def test_query_from_store_matches_fresh_prepare(self, store, capsys):
        assert main([
            "query", "--from-store", str(store),
            "--source", "0", "--target", "5",
        ]) == 0
        warm_out = capsys.readouterr().out
        assert "warm start" in warm_out
        assert main([
            "query", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "5", "--cores", "4",
            "--transfer-fraction", "0.3",
        ]) == 0
        cold_out = capsys.readouterr().out
        # Same departure/arrival lines, whatever path produced them.
        warm_lines = [l for l in warm_out.splitlines() if "depart" in l]
        cold_lines = [l for l in cold_out.splitlines() if "depart" in l]
        assert warm_lines and warm_lines == cold_lines

    def test_profile_from_store(self, store, capsys):
        assert main([
            "profile", "--from-store", str(store),
            "--source", "0", "--target", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "to    3" in out

    def test_batch_from_store_json_is_clean(self, store, capsys):
        import json

        assert main([
            "batch", "--from-store", str(store),
            "--n-queries", "4", "--json",
        ]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1
        summary = json.loads(out)
        assert summary["num_queries"] == 4
        assert summary["transfer_stations"] > 0

    def test_batch_from_store_runtime_overrides(self, store, capsys):
        assert main([
            "batch", "--from-store", str(store),
            "--n-queries", "3", "--backend", "threads", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=threads workers=2" in out

    def test_query_from_missing_store_fails_loudly(self, tmp_path):
        """A bad store dies with the CLI's clean one-line error, not a
        raw StoreError traceback."""
        with pytest.raises(SystemExit, match="error: .*manifest"):
            main([
                "query", "--from-store", str(tmp_path / "nope"),
                "--source", "0", "--target", "5",
            ])

    def test_from_store_rejects_preparation_flags(self, store):
        """--kernel / --transfer-fraction shape preparation; silently
        ignoring them next to --from-store would misreport what ran."""
        with pytest.raises(SystemExit, match="--kernel"):
            main([
                "query", "--from-store", str(store),
                "--source", "0", "--target", "5", "--kernel", "python",
            ])
        with pytest.raises(SystemExit, match="--transfer-fraction"):
            main([
                "batch", "--from-store", str(store),
                "--n-queries", "3", "--transfer-fraction", "0.1",
            ])
        with pytest.raises(SystemExit, match="--scale"):
            main([
                "query", "--from-store", str(store),
                "--source", "0", "--target", "5", "--scale", "medium",
            ])
        with pytest.raises(SystemExit, match="--seed"):
            main([
                "profile", "--from-store", str(store),
                "--source", "0", "--seed", "3",
            ])

    def test_batch_from_store_keeps_seed_for_the_workload(self, store, capsys):
        """--seed seeds the random query workload, not the dataset, so
        it stays meaningful on a warm start."""
        import json

        outputs = []
        for seed in ("1", "2"):
            assert main([
                "batch", "--from-store", str(store),
                "--n-queries", "4", "--seed", seed, "--json",
            ]) == 0
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0]["seed"] == 1
        assert outputs[1]["seed"] == 2
        assert (
            outputs[0]["settled_connections"]
            != outputs[1]["settled_connections"]
        )

    def test_from_store_conflicts_with_instance(self, store, capsys):
        with pytest.raises(SystemExit):
            main([
                "query", "--from-store", str(store),
                "--instance", "oahu",
                "--source", "0", "--target", "5",
            ])
        capsys.readouterr()

    def test_info_from_store_reads_only_the_manifest(
        self, store, capsys, monkeypatch
    ):
        """``info --from-store`` must describe the store without
        hydrating anything: every buffer/record reader is poisoned and
        the manifest summary must still print."""
        import numpy as np

        import repro.store.codec as codec_mod
        import repro.store.store as store_mod

        def forbid(name):
            def _raise(*args, **kwargs):
                raise AssertionError(f"info hydrated artifacts via {name}")

            return _raise

        monkeypatch.setattr(np, "load", forbid("np.load"))
        monkeypatch.setattr(codec_mod, "read_record", forbid("read_record"))
        monkeypatch.setattr(store_mod, "load_dataset", forbid("load_dataset"))

        assert main(["info", "--from-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "format v1" in out
        assert "12 stations" in out
        assert "transfer stations" in out
        assert "kernel=flat" in out
        assert "KiB" in out

    def test_info_from_store_rejects_instance_flags(self, store, capsys):
        with pytest.raises(SystemExit, match="--scale"):
            main(["info", "--from-store", str(store), "--scale", "tiny"])
        capsys.readouterr()

    def test_info_from_missing_store_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["info", "--from-store", str(tmp_path / "nope")])


class TestVersionFlag:
    def test_version_prints_the_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro-transit {repro.__version__}"


class TestRemoteFlag:
    """--remote wiring and its rejection rules.  Live round trips
    against a real server are covered by the client suite and the
    remote CLI test below."""

    def test_remote_conflicts_with_instance_and_store(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "query", "--remote", "http://127.0.0.1:9/x",
                "--instance", "oahu", "--source", "0", "--target", "5",
            ])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main([
                "query", "--remote", "http://127.0.0.1:9/x",
                "--from-store", "somewhere", "--source", "0", "--target", "5",
            ])
        capsys.readouterr()

    def test_remote_rejects_preparation_flags(self):
        """Exactly the --from-store rule: dataset-shaping flags are
        rejected, not silently ignored — and execution-shaping flags
        too, because execution is the server's."""
        url = "http://127.0.0.1:9/oahu"
        cases = [
            (["query", "--remote", url, "--source", "0", "--target", "5",
              "--kernel", "python"], "--kernel"),
            (["query", "--remote", url, "--source", "0", "--target", "5",
              "--transfer-fraction", "0.1"], "--transfer-fraction"),
            (["query", "--remote", url, "--source", "0", "--target", "5",
              "--scale", "tiny"], "--scale"),
            (["query", "--remote", url, "--source", "0", "--target", "5",
              "--seed", "3"], "--seed"),
            (["query", "--remote", url, "--source", "0", "--target", "5",
              "--cores", "2"], "--cores"),
            (["batch", "--remote", url, "--n-queries", "2",
              "--backend", "threads"], "--backend"),
            (["batch", "--remote", url, "--n-queries", "2",
              "--workers", "2"], "--workers"),
            (["profile", "--remote", url, "--source", "0",
              "--kernel", "flat"], "--kernel"),
        ]
        for argv, flag in cases:
            with pytest.raises(SystemExit, match=f"{flag}.*--remote"):
                main(argv)

    def test_remote_batch_keeps_workload_seed(self):
        """--seed drives the workload, so it must *not* be rejected;
        with nothing listening the failure is the typed connection
        error, proving the flag got past validation."""
        with pytest.raises(SystemExit, match="connection_refused"):
            main([
                "batch", "--remote", "http://127.0.0.1:9/oahu",
                "--n-queries", "2", "--seed", "7",
            ])

    def test_remote_profile_keeps_per_request_cores(self):
        """--cores maps onto the wire's per-request num_threads for
        profile, so it stays legal there."""
        with pytest.raises(SystemExit, match="connection_refused"):
            main([
                "profile", "--remote", "http://127.0.0.1:9/oahu",
                "--source", "0", "--cores", "2",
            ])

    def test_bad_remote_url_fails_loudly(self):
        with pytest.raises(SystemExit, match="error:"):
            main([
                "query", "--remote", "http:///nohost",
                "--source", "0", "--target", "5",
            ])


class TestRemoteRoundTrip:
    def test_query_remote_matches_local(self, capsys):
        """The CLI parity check: `query --remote` against a live
        server prints byte-identical journey lines to the same query
        answered by a local prepare under the server's config."""
        from repro.server import DatasetRegistry
        from repro.service import ServiceConfig, TransitService
        from repro.synthetic import make_instance
        from tests.server.harness import ServerHarness

        config = ServiceConfig(
            num_threads=2, use_distance_table=True, transfer_fraction=0.25
        )
        service = TransitService(make_instance("oahu", "tiny"), config)
        harness = ServerHarness(
            DatasetRegistry.from_services({"oahu": service})
        )
        try:
            assert main([
                "query", "--remote", f"http://127.0.0.1:{harness.port}/oahu",
                "--source", "0", "--target", "5",
            ]) == 0
            remote_out = capsys.readouterr().out
            assert main([
                "query", "--instance", "oahu", "--scale", "tiny",
                "--source", "0", "--target", "5", "--cores", "2",
                "--transfer-fraction", "0.25",
            ]) == 0
            local_out = capsys.readouterr().out
            remote_lines = [
                l for l in remote_out.splitlines() if "depart" in l
            ]
            local_lines = [l for l in local_out.splitlines() if "depart" in l]
            assert remote_lines and remote_lines == local_lines
        finally:
            harness.close()


class TestShapeCommands:
    """The query-zoo subcommands: multicriteria, via, min-transfers."""

    def test_multicriteria_prints_the_front(self, capsys):
        assert main([
            "multicriteria", "--instance", "oahu", "--scale", "tiny",
            "--source", "2", "--target", "5", "--departure", "480",
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto option" in out
        assert "transfer(s): arrive" in out

    def test_via_prints_both_hops(self, capsys):
        assert main([
            "via", "--instance", "oahu", "--scale", "tiny",
            "--source", "2", "--via", "5", "--target", "7",
            "--departure", "480",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 → 5 → 7" in out
        assert "at via" in out

    def test_min_transfers_prints_the_budgeted_answer(self, capsys):
        assert main([
            "min-transfers", "--instance", "oahu", "--scale", "tiny",
            "--source", "2", "--target", "5", "--departure", "480",
        ]) == 0
        out = capsys.readouterr().out
        assert "transfer(s), arrive" in out

    def test_from_store_matches_fresh_prepare(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main([
            "prepare", "--instance", "oahu", "--scale", "tiny",
            "--store", str(path), "--transfer-fraction", "0.3",
        ]) == 0
        capsys.readouterr()
        argv_tail = [
            "--source", "2", "--target", "5", "--departure", "480",
        ]
        for command in ("multicriteria", "min-transfers"):
            assert main(
                [command, "--from-store", str(path), *argv_tail]
            ) == 0
            warm = capsys.readouterr().out
            assert main([
                command, "--instance", "oahu", "--scale", "tiny",
                "--transfer-fraction", "0.3", *argv_tail,
            ]) == 0
            cold = capsys.readouterr().out
            warm_lines = [l for l in warm.splitlines() if "arrive" in l]
            cold_lines = [l for l in cold.splitlines() if "arrive" in l]
            assert warm_lines and warm_lines == cold_lines

    def test_remote_matches_local(self, capsys):
        """`multicriteria/via/min-transfers --remote` against a live
        server print byte-identical answer lines to a local prepare
        under the server's config."""
        from repro.server import DatasetRegistry
        from repro.service import ServiceConfig, TransitService
        from repro.synthetic import make_instance
        from tests.server.harness import ServerHarness

        config = ServiceConfig(
            num_threads=2, use_distance_table=True, transfer_fraction=0.25
        )
        service = TransitService(make_instance("oahu", "tiny"), config)
        harness = ServerHarness(
            DatasetRegistry.from_services({"oahu": service})
        )
        url = f"http://127.0.0.1:{harness.port}/oahu"
        local_flags = [
            "--instance", "oahu", "--scale", "tiny",
            "--transfer-fraction", "0.25",
        ]
        cases = [
            (["multicriteria", "--source", "2", "--target", "5",
              "--departure", "480"]),
            (["via", "--source", "2", "--via", "5", "--target", "7",
              "--departure", "480"]),
            (["min-transfers", "--source", "2", "--target", "5",
              "--departure", "480"]),
        ]
        try:
            for argv in cases:
                assert main([argv[0], "--remote", url, *argv[1:]]) == 0
                remote_out = capsys.readouterr().out
                assert main([argv[0], *local_flags, *argv[1:]]) == 0
                local_out = capsys.readouterr().out
                remote_lines = [
                    l for l in remote_out.splitlines() if "arrive" in l
                ]
                local_lines = [
                    l for l in local_out.splitlines() if "arrive" in l
                ]
                assert remote_lines and remote_lines == local_lines
        finally:
            harness.close()

    def test_remote_rejects_preparation_flags(self):
        url = "http://127.0.0.1:9/oahu"
        cases = [
            (["multicriteria", "--remote", url, "--source", "0",
              "--target", "5", "--departure", "480",
              "--kernel", "python"], "--kernel"),
            (["via", "--remote", url, "--source", "0", "--via", "2",
              "--target", "5", "--departure", "480",
              "--transfer-fraction", "0.1"], "--transfer-fraction"),
            (["min-transfers", "--remote", url, "--source", "0",
              "--target", "5", "--departure", "480",
              "--scale", "tiny"], "--scale"),
        ]
        for argv, flag in cases:
            with pytest.raises(SystemExit, match=f"{flag}.*--remote"):
                main(argv)


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--store", "a", "--store", "b",
            "--port", "0", "--workers", "2", "--max-inflight", "8",
            "--batch-window-ms", "1.5", "--batch-max", "4",
        ])
        assert args.store == ["a", "b"]
        assert args.port == 0
        assert args.workers == 2
        assert args.max_inflight == 8
        assert args.batch_window_ms == 1.5
        assert args.batch_max == 4
        assert args.func.__name__ == "_cmd_serve"
