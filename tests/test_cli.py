"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


class TestGenerateAndInfo:
    def test_generate_then_info(self, tmp_path, capsys):
        feed = tmp_path / "feed"
        assert main([
            "generate", "--instance", "oahu", "--scale", "tiny",
            "--output", str(feed),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (feed / "stops.txt").exists()

        assert main(["info", "--gtfs", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "stations" in out and "route" in out

    def test_info_instance(self, capsys):
        assert main(["info", "--instance", "germany", "--scale", "tiny"]) == 0
        assert "germany" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_to_single_target(self, capsys):
        assert main([
            "profile", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "3", "--cores", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "one-to-all from station 0" in out
        assert "to    3" in out


class TestQueryCommand:
    def test_plain_query(self, capsys):
        assert main([
            "query", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "5", "--cores", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 → 5" in out
        assert "depart" in out

    def test_query_with_table(self, capsys):
        assert main([
            "query", "--instance", "oahu", "--scale", "tiny",
            "--source", "0", "--target", "5", "--cores", "2",
            "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "distance table" in out


class TestBatchCommand:
    def test_batch_serial_flat(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "5", "--kernel", "flat", "--backend", "serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "5 queries on kernel=flat backend=serial" in out
        assert "queries/s" in out
        assert out.count("→") == 5

    def test_batch_python_kernel_with_table(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "3", "--kernel", "python",
            "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "kernel=python" in out

    def test_kernels_answer_identically(self, capsys):
        answers = {}
        for kernel in ("python", "flat"):
            assert main([
                "batch", "--instance", "germany", "--scale", "tiny",
                "--n-queries", "4", "--kernel", kernel, "--seed", "2",
            ]) == 0
            out = capsys.readouterr().out
            answers[kernel] = [
                line for line in out.splitlines() if "→" in line
            ]
        assert answers["python"] == answers["flat"]


class TestTableCommands:
    def test_table1(self, capsys):
        assert main([
            "table1", "--instance", "oahu", "--scale", "tiny", "--queries", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "spd-up" in out and "LC" in out

    def test_table2(self, capsys):
        assert main([
            "table2", "--instance", "oahu", "--scale", "tiny", "--queries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "prepro" in out


class TestArgumentValidation:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_instance_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--instance", "narnia"])


class TestBatchJson:
    def test_json_summary_is_single_json_line(self, capsys):
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "4", "--seed", "2", "--json",
        ]) == 0
        out = capsys.readouterr().out
        import json

        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 1, f"--json must emit exactly one line: {out!r}"
        summary = json.loads(lines[0])
        assert summary["num_queries"] == 4
        assert summary["seed"] == 2
        assert summary["queries_per_second"] > 0
        assert sum(summary["classifications"].values()) == 4

    def test_json_stays_clean_with_distance_table(self, capsys):
        """The human-readable distance-table line must not leak into
        stdout when --json is on (regression: corrupted JSON)."""
        assert main([
            "batch", "--instance", "oahu", "--scale", "tiny",
            "--n-queries", "3", "--json", "--transfer-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        import json

        summary = json.loads(out)  # whole stdout must parse as one doc
        assert summary["transfer_stations"] > 0
        assert summary["table_mib"] > 0

    def test_seed_changes_workload(self, capsys):
        outputs = []
        for seed in ("0", "1"):
            assert main([
                "batch", "--instance", "oahu", "--scale", "tiny",
                "--n-queries", "5", "--seed", seed,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        pairs = [
            [l for l in out.splitlines() if "→" in l] for out in outputs
        ]
        assert pairs[0] != pairs[1]
