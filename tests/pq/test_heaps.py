"""Unit and property tests for all priority-queue implementations."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pq import QUEUE_FACTORIES, AddressableHeap, DaryHeap, LazyHeap

ALL_QUEUES = sorted(QUEUE_FACTORIES)


@pytest.fixture(params=ALL_QUEUES)
def queue(request):
    return QUEUE_FACTORIES[request.param]()


class TestBasicProtocol:
    def test_empty(self, queue):
        assert len(queue) == 0
        assert not queue
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek()

    def test_push_pop_single(self, queue):
        assert queue.push("a", 5)
        assert len(queue) == 1
        assert "a" in queue
        assert queue.peek() == ("a", 5)
        assert queue.pop() == ("a", 5)
        assert len(queue) == 0

    def test_pops_in_key_order(self, queue):
        for item, key in [("a", 30), ("b", 10), ("c", 20)]:
            queue.push(item, key)
        assert [queue.pop()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_decrease_key(self, queue):
        queue.push("a", 50)
        queue.push("b", 20)
        assert queue.push("a", 10)  # decrease
        assert queue.pop() == ("a", 10)

    def test_key_increase_ignored(self, queue):
        queue.push("a", 10)
        assert not queue.push("a", 99)
        assert queue.key_of("a") == 10

    def test_key_of(self, queue):
        queue.push("x", 7)
        assert queue.key_of("x") == 7

    def test_discard(self, queue):
        queue.push("a", 1)
        queue.push("b", 2)
        assert queue.discard("a")
        assert not queue.discard("a")
        assert queue.pop() == ("b", 2)

    def test_counters(self, queue):
        queue.push("a", 5)
        queue.push("a", 3)
        queue.pop()
        assert queue.pushes == 1
        assert queue.decrease_keys == 1
        assert queue.pops == 1

    def test_tuple_items(self, queue):
        queue.push((3, 1), 9)
        queue.push((2, 7), 4)
        assert queue.pop() == ((2, 7), 4)


class TestAgainstReferenceModel:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=1, max_value=300),
    )
    def test_random_operations(self, seed, num_ops):
        """All queues must agree with a naive dict-scan reference.

        Keys are made unique (base key · N + op counter) so that the
        minimum item is unambiguous and every implementation must pop
        exactly the same (item, key) sequence.
        """
        rng = random.Random(seed)
        queues = {name: QUEUE_FACTORIES[name]() for name in ALL_QUEUES}
        reference: dict[int, int] = {}
        for op_index in range(num_ops):
            op = rng.random()
            if op < 0.55 or not reference:
                item = rng.randrange(40)
                key = rng.randrange(1000) * 1000 + op_index  # unique
                current = reference.get(item)
                if current is None or key < current:
                    reference[item] = key
                for q in queues.values():
                    q.push(item, key)
            elif op < 0.85:
                expected_item, expected_key = min(
                    reference.items(), key=lambda kv: kv[1]
                )
                for q in queues.values():
                    assert q.pop() == (expected_item, expected_key)
                del reference[expected_item]
            else:
                item = rng.randrange(40)
                expected = item in reference
                results = {q.discard(item) for q in queues.values()}
                assert results == {expected}
                reference.pop(item, None)
        drain_expected = sorted(reference.items(), key=lambda kv: kv[1])
        for q in queues.values():
            drained = []
            while q:
                drained.append(q.pop())
            assert drained == drain_expected


class TestHeapSpecifics:
    def test_dary_arity_validation(self):
        with pytest.raises(ValueError, match="arity"):
            DaryHeap(arity=1)

    def test_dary_arity_property(self):
        assert DaryHeap(arity=4).arity == 4

    def test_lazy_heap_stale_entries_skipped(self):
        heap = LazyHeap()
        heap.push("a", 50)
        heap.push("a", 10)  # stale (50) entry remains internally
        heap.push("b", 20)
        assert heap.pop() == ("a", 10)
        assert heap.pop() == ("b", 20)
        assert not heap

    def test_addressable_heap_internal_consistency(self):
        heap = AddressableHeap()
        rng = random.Random(1)
        for _ in range(500):
            heap.push(rng.randrange(60), rng.randrange(1000))
            if rng.random() < 0.3 and heap:
                heap.pop()
        # Heap property: every parent ≤ its children.
        keys = heap._keys
        for pos in range(1, len(keys)):
            assert keys[(pos - 1) >> 1] <= keys[pos]
        # Position map agrees with storage.
        for item, pos in heap._pos.items():
            assert heap._items[pos] == item
