"""The station graph ``G_S`` (paper §4).

One node per station; a directed edge ``(S1, S2)`` whenever at least one
train runs from ``S1`` directly to ``S2``.  Edge weights are the minimum
travel time over all elementary connections on that pair — the scalar
weight the contraction-based transfer-station selection uses.

Also provides the reverse graph (for the via-station DFS) and degree
queries (for the ``deg > k`` selection rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import build_weighted_csr, reverse_csr
from repro.timetable.types import Timetable


@dataclass(slots=True)
class StationGraph:
    """CSR station graph with min-travel-time weights and its reverse."""

    num_stations: int
    indptr: np.ndarray
    targets: np.ndarray
    weights: np.ndarray
    rev_indptr: np.ndarray
    rev_targets: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.targets.size)

    def successors(self, station: int) -> np.ndarray:
        """Stations directly reachable from ``station`` (view)."""
        return self.targets[self.indptr[station] : self.indptr[station + 1]]

    def successor_weights(self, station: int) -> np.ndarray:
        return self.weights[self.indptr[station] : self.indptr[station + 1]]

    def predecessors(self, station: int) -> np.ndarray:
        """Stations with a direct train to ``station`` (view)."""
        return self.rev_targets[
            self.rev_indptr[station] : self.rev_indptr[station + 1]
        ]

    def out_degree(self, station: int) -> int:
        return int(self.indptr[station + 1] - self.indptr[station])

    def in_degree(self, station: int) -> int:
        return int(self.rev_indptr[station + 1] - self.rev_indptr[station])

    def degree(self, station: int) -> int:
        """Undirected degree: number of distinct neighbor stations.

        The paper's ``deg > k`` rule counts neighbors in the station
        graph; we use the union of in- and out-neighbors.
        """
        out = set(self.successors(station).tolist())
        out.update(self.predecessors(station).tolist())
        out.discard(station)
        return len(out)

    def undirected_neighbors(self, station: int) -> list[int]:
        out = set(self.successors(station).tolist())
        out.update(self.predecessors(station).tolist())
        out.discard(station)
        return sorted(out)


def build_station_graph(timetable: Timetable) -> StationGraph:
    """Build ``G_S`` from a timetable."""
    num_stations = timetable.num_stations
    edges = [
        (c.dep_station, c.arr_station, c.duration)
        for c in timetable.connections
    ]
    indptr, targets, weights = build_weighted_csr(num_stations, edges)
    rev_indptr, rev_targets = reverse_csr(num_stations, indptr, targets)
    return StationGraph(
        num_stations=num_stations,
        indptr=indptr,
        targets=targets,
        weights=weights,
        rev_indptr=rev_indptr,
        rev_targets=rev_targets,
    )
