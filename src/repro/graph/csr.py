"""Compressed sparse row (CSR) adjacency utilities.

The station graph and the contraction routine operate on plain integer
graphs; CSR keeps them cache-friendly and allocation-free during
traversal (cf. the HPC guide: prefer flat arrays and views over object
soup in hot paths).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def build_csr(
    num_nodes: int, edges: Iterable[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, targets)`` CSR arrays from an edge list.

    Parallel edges are kept; self-loops are allowed (callers filter).
    ``indptr`` has length ``num_nodes + 1``; the targets of node ``u``
    are ``targets[indptr[u]:indptr[u+1]]``, sorted ascending.
    """
    if num_nodes < 0:
        # Validate before materializing: ``edges`` may be a large (or
        # effectful) generator that a doomed call must not consume.
        raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
    edge_list = list(edges)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    if not edge_list:
        return indptr, np.zeros(0, dtype=np.int64)
    arr = np.asarray(edge_list, dtype=np.int64)
    if arr.min() < 0 or arr.max() >= num_nodes:
        raise ValueError("edge endpoint out of range")
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    arr = arr[order]
    counts = np.bincount(arr[:, 0], minlength=num_nodes)
    indptr[1:] = np.cumsum(counts)
    return indptr, arr[:, 1].copy()


def build_weighted_csr(
    num_nodes: int, edges: Iterable[tuple[int, int, int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR with per-edge integer weights: ``(indptr, targets, weights)``.

    Parallel edges are collapsed to their minimum weight (the station
    graph uses min travel time as the scalar weight).
    """
    best: dict[tuple[int, int], int] = {}
    for u, v, w in edges:
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise ValueError(f"edge ({u}, {v}) endpoint out of range")
        key = (u, v)
        if key not in best or w < best[key]:
            best[key] = w
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    if not best:
        return indptr, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    items = sorted(best.items())
    sources = np.asarray([k[0] for k, _ in items], dtype=np.int64)
    targets = np.asarray([k[1] for k, _ in items], dtype=np.int64)
    weights = np.asarray([w for _, w in items], dtype=np.int64)
    counts = np.bincount(sources, minlength=num_nodes)
    indptr[1:] = np.cumsum(counts)
    return indptr, targets, weights


def reverse_csr(
    num_nodes: int, indptr: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR of the reverse graph."""
    edges = []
    for u in range(num_nodes):
        for idx in range(indptr[u], indptr[u + 1]):
            edges.append((int(targets[idx]), u))
    return build_csr(num_nodes, edges)


def neighbors(indptr: np.ndarray, targets: np.ndarray, u: int) -> np.ndarray:
    """View of ``u``'s out-neighbors (no copy)."""
    return targets[indptr[u] : indptr[u + 1]]


def out_degrees(indptr: np.ndarray) -> np.ndarray:
    """Out-degree vector from an indptr array."""
    return np.diff(indptr)
