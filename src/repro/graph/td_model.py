"""Realistic time-dependent model (paper §2, Fig. 1).

For a timetable, the graph contains:

* one **station node** per station (ids ``0 .. |S|−1``);
* one **route node** per (route, position) pair — a route running
  through ``k`` stations contributes ``k`` route nodes;
* a constant **boarding edge** station → route node with weight
  ``T(S)`` (the minimum transfer time);
* a constant **alighting edge** route node → station with weight 0;
* a **time-dependent route edge** between consecutive route nodes of a
  route, carrying the elementary connections of that leg as a
  :class:`~repro.functions.piecewise.TravelTimeFunction`.

Starting a journey at station ``S`` does **not** pay ``T(S)``: profile
searches seed the queue directly at route nodes (paper §3.1), so the
boarding cost applies only to actual transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.functions.piecewise import TravelTimeFunction
from repro.timetable.routes import connections_by_route_leg, partition_routes
from repro.timetable.types import Connection, Route, Timetable


class Edge(NamedTuple):
    """One outgoing edge in the time-dependent graph.

    ``ttf is None`` ⇒ constant edge of weight ``weight`` (transfer /
    alight); otherwise a time-dependent route edge (``weight`` unused).
    """

    target: int
    weight: int
    ttf: TravelTimeFunction | None

    def arrival(self, t: int) -> int:
        """Absolute arrival at ``target`` when leaving the tail at ``t``."""
        if self.ttf is None:
            return t + self.weight
        return self.ttf.arrival(t)


@dataclass(slots=True)
class TDGraph:
    """The realistic time-dependent graph of a timetable."""

    timetable: Timetable
    routes: list[Route]
    #: adjacency[u] — outgoing edges of node u.
    adjacency: list[list[Edge]]
    #: node_station[u] — st(u): the station a node belongs to.
    node_station: list[int]
    #: route node id of (route_id, position).
    route_node_ids: dict[tuple[int, int], int]
    #: starting route node of an elementary connection, keyed by
    #: (train, dep_time) — unique because a train departs each of its
    #: stops at a strictly later time.
    conn_start_node: dict[tuple[int, int], int]

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    @property
    def num_stations(self) -> int:
        return self.timetable.num_stations

    @property
    def num_route_nodes(self) -> int:
        return self.num_nodes - self.num_stations

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self.adjacency)

    def is_station_node(self, u: int) -> bool:
        return u < self.num_stations

    def station_of(self, u: int) -> int:
        """``st(u)``: the station node ``u`` belongs to."""
        return self.node_station[u]

    def source_route_node(self, connection: Connection) -> int:
        """Route node where an elementary connection starts (SPCS init)."""
        try:
            return self.conn_start_node[(connection.train, connection.dep_time)]
        except KeyError:
            raise KeyError(
                f"connection is not part of this graph's timetable: {connection}"
            ) from None

    def describe_node(self, u: int) -> str:
        """Human-readable node description for examples and debugging."""
        station = self.timetable.stations[self.node_station[u]]
        if self.is_station_node(u):
            return f"station node {u} ({station.name})"
        for (route_id, pos), node in self.route_node_ids.items():
            if node == u:
                return f"route node {u} (route {route_id} pos {pos} at {station.name})"
        return f"route node {u} (at {station.name})"


def build_td_graph(timetable: Timetable) -> TDGraph:
    """Construct the realistic time-dependent graph from a timetable."""
    routes = partition_routes(timetable)
    legs = connections_by_route_leg(timetable, routes)

    num_stations = timetable.num_stations
    node_station: list[int] = list(range(num_stations))
    route_node_ids: dict[tuple[int, int], int] = {}

    for route in routes:
        for pos, station in enumerate(route.stations):
            route_node_ids[(route.id, pos)] = num_stations + len(route_node_ids)
            node_station.append(station)

    num_nodes = num_stations + len(route_node_ids)
    adjacency: list[list[Edge]] = [[] for _ in range(num_nodes)]

    for route in routes:
        for pos, station in enumerate(route.stations):
            route_node = route_node_ids[(route.id, pos)]
            transfer = timetable.transfer_time(station)
            # Boarding: only where the route actually departs (every
            # position but the last has a departing leg).
            if pos < route.num_legs:
                adjacency[station].append(Edge(route_node, transfer, None))
            # Alighting: only where the route actually arrives.
            if pos > 0:
                adjacency[route_node].append(Edge(station, 0, None))

        for pos in range(route.num_legs):
            conns = legs.get((route.id, pos), [])
            if not conns:
                continue
            ttf = TravelTimeFunction.from_connections(conns, timetable.period)
            adjacency[route_node_ids[(route.id, pos)]].append(
                Edge(route_node_ids[(route.id, pos + 1)], 0, ttf)
            )

    conn_start_node: dict[tuple[int, int], int] = {}
    for (route_id, pos), conns in legs.items():
        node = route_node_ids[(route_id, pos)]
        for c in conns:
            conn_start_node[(c.train, c.dep_time)] = node

    return TDGraph(
        timetable=timetable,
        routes=routes,
        adjacency=adjacency,
        node_station=node_station,
        route_node_ids=route_node_ids,
        conn_start_node=conn_start_node,
    )
