"""Incremental patching of the time-dependent graph under delays.

Delays never change topology: a delayed train keeps its station
sequence (``repro.timetable.delays`` module docstring), so routes,
route nodes, constant boarding/alighting edges, and every CSR shape of
the packed arrays survive a delay batch unchanged.  What *can* move
are travel-time values:

* the :class:`~repro.functions.piecewise.TravelTimeFunction` of every
  route leg a delayed train runs on (the leg's connection multiset
  changed);
* the ``conn(S)`` departure rows of stations a delayed connection
  departs from (row *content* and intra-row order, never row size);
* ``conn_start_node`` keys for the delayed trains (keyed by the new
  departure times).

:func:`patch_td_graph` rebuilds exactly those travel-time functions
using the same construction as :func:`~repro.graph.td_model.build_td_graph`
(leg connections sorted by ``(dep_time, arr_time)``, then
``TravelTimeFunction.from_connections``), so the patched graph is
value-identical to a cold build from the delayed timetable — the
bitwise-equivalence contract ``tests/streams/test_incremental_equivalence.py``
pins.  :func:`patch_td_arrays` applies the same delta to the packed
flat-array twin: every unchanged buffer is *shared* with the old pack,
changed pools are copied once and patched in place (point counts per
ttf never change — ``from_connections`` emits one point per
connection, and delays preserve each leg's connection count).

The :class:`GraphPatch` returned alongside records which stations can
*trigger* downstream profile changes, which is what lets the
distance-table patch (:func:`repro.query.distance_table.patch_distance_table`)
skip rows whose searches provably never touch a changed edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.functions.piecewise import TravelTimeFunction
from repro.graph.td_arrays import TDGraphArrays
from repro.graph.td_model import Edge, TDGraph
from repro.timetable.types import Connection, Timetable


@dataclass(slots=True)
class GraphPatch:
    """What one delay batch changed, as computed by :func:`patch_td_graph`.

    ``changed_edges`` lists ``(node, slot, new_ttf)`` for every route
    edge whose travel-time function moved (``slot`` indexes the node's
    adjacency list).  ``changed_stations`` are stations whose
    ``conn(S)`` row content changed (a delayed connection departs
    there).  ``trigger_stations`` are the stations from which a search
    can *enter* a changed route edge: for each touched route with a
    changed leg ``k``, every station at positions ``0..k`` (boarding
    at position ``j ≤ k`` and riding reaches the changed edge).  A
    profile search whose source cannot reach any trigger station never
    evaluates a changed value and keeps its exact result.
    """

    touched_routes: list[int] = field(default_factory=list)
    changed_edges: list[tuple[int, int, TravelTimeFunction]] = field(
        default_factory=list
    )
    changed_stations: set[int] = field(default_factory=set)
    trigger_stations: set[int] = field(default_factory=set)
    #: Legs rebuilt (diagnostics: replan accounting / bench metrics).
    rebuilt_legs: int = 0


def _connections_by_train(
    timetable: Timetable, trains: set[int]
) -> dict[int, list[Connection]]:
    """The listed trains' connections in travel (list) order."""
    runs: dict[int, list[Connection]] = {t: [] for t in trains}
    for c in timetable.connections:
        if c.train in trains:
            runs[c.train].append(c)
    return runs


def patch_td_graph(
    graph: TDGraph,
    delayed: Timetable,
    touched_trains: set[int],
) -> tuple[TDGraph, GraphPatch]:
    """A new :class:`TDGraph` for ``delayed``, patched from ``graph``.

    ``touched_trains`` are the trains named by the delay batch;
    ``delayed`` must be ``apply_delays(graph.timetable, batch)`` for
    that batch.  Shares routes, node/station maps and every untouched
    adjacency row with ``graph``; rebuilds only the travel-time
    functions of legs whose connection multiset actually changed.
    Value-identical to ``build_td_graph(delayed)``.
    """
    old_timetable = graph.timetable
    route_of_train: dict[int, "object"] = {}
    for route in graph.routes:
        for train in route.trains:
            route_of_train[train] = route
    touched_routes = {
        route_of_train[t].id for t in touched_trains if t in route_of_train
    }
    member_trains: set[int] = set()
    for route in graph.routes:
        if route.id in touched_routes:
            member_trains.update(route.trains)

    old_runs = _connections_by_train(old_timetable, member_trains)
    new_runs = _connections_by_train(delayed, member_trains)

    patch = GraphPatch(touched_routes=sorted(touched_routes))

    # Leg connection lists of the touched routes, from the delayed
    # timetable, in the exact order build_td_graph uses.
    new_legs: dict[tuple[int, int], list[Connection]] = {}
    changed_legs: dict[int, set[int]] = {rid: set() for rid in touched_routes}
    for train in member_trains:
        route = route_of_train[train]
        for leg, (old_c, new_c) in enumerate(
            zip(old_runs[train], new_runs[train])
        ):
            new_legs.setdefault((route.id, leg), []).append(new_c)
            if (
                new_c.dep_time != old_c.dep_time
                or new_c.arr_time != old_c.arr_time
            ):
                changed_legs[route.id].add(leg)
                if new_c.dep_time != old_c.dep_time:
                    patch.changed_stations.add(new_c.dep_station)
    for conns in new_legs.values():
        conns.sort(key=lambda c: (c.dep_time, c.arr_time))

    # Patch adjacency rows: only route nodes whose leg actually changed.
    adjacency = list(graph.adjacency)
    period = delayed.period
    for route in graph.routes:
        if route.id not in touched_routes:
            continue
        legs_changed = changed_legs[route.id]
        if legs_changed:
            # Any station at or before the deepest changed leg lets a
            # search board and ride into a changed edge.
            deepest = max(legs_changed)
            patch.trigger_stations.update(route.stations[: deepest + 1])
        for pos in sorted(legs_changed):
            conns = new_legs.get((route.id, pos), [])
            if not conns:
                continue
            node = graph.route_node_ids[(route.id, pos)]
            ttf = TravelTimeFunction.from_connections(conns, period)
            edges = list(adjacency[node])
            for slot, edge in enumerate(edges):
                if edge.ttf is not None:
                    edges[slot] = Edge(edge.target, 0, ttf)
                    patch.changed_edges.append((node, slot, ttf))
                    patch.rebuilt_legs += 1
                    break
            else:  # pragma: no cover — structure guaranteed by build
                raise AssertionError(
                    f"route {route.id} leg {pos} has no route edge"
                )
            adjacency[node] = edges

    # Re-key conn_start_node for the touched trains only.  Iterating
    # legs in travel order reproduces build_td_graph's last-write-wins
    # on the (rare) wrap collision of two legs sharing a departure
    # time point after a delay.
    conn_start_node = dict(graph.conn_start_node)
    retouched = {t for t in touched_trains if t in route_of_train}
    for train in retouched:
        for c in old_runs[train]:
            conn_start_node.pop((train, c.dep_time), None)
    for train in retouched:
        route = route_of_train[train]
        for leg, c in enumerate(new_runs[train]):
            conn_start_node[(c.train, c.dep_time)] = graph.route_node_ids[
                (route.id, leg)
            ]

    patched = TDGraph(
        timetable=delayed,
        routes=graph.routes,
        adjacency=adjacency,
        node_station=graph.node_station,
        route_node_ids=graph.route_node_ids,
        conn_start_node=conn_start_node,
    )
    return patched, patch


def patch_td_arrays(
    arrays: TDGraphArrays,
    patched_graph: TDGraph,
    patch: GraphPatch,
) -> TDGraphArrays:
    """The packed twin of :func:`patch_td_graph`: a new
    :class:`TDGraphArrays` for the patched graph, elementwise-equal to
    ``pack_td_graph(patched_graph)``.

    Shares every topology buffer (CSR pointers, edge targets, node
    maps) with the old pack; copies only the value pools that can move
    (``ttf_dep``/``ttf_dur``/``ttf_fifo`` and the ``conn`` rows) and
    patches the changed slices in place.  The kernel-side adjacency
    mirror, if already built, is patched per-node instead of being
    rebuilt from scratch (an O(E) Python rebuild would eat most of the
    incremental win on large graphs).
    """
    delayed = patched_graph.timetable

    ttf_dep = arrays.ttf_dep.copy()
    ttf_dur = arrays.ttf_dur.copy()
    ttf_fifo = arrays.ttf_fifo.copy()
    edge_indptr = arrays.edge_indptr
    ttf_indptr = arrays.ttf_indptr

    patched_fids: dict[int, TravelTimeFunction] = {}
    for node, slot, ttf in patch.changed_edges:
        e = int(edge_indptr[node]) + slot
        fid = int(arrays.edge_ttf[e])
        if fid < 0:  # pragma: no cover — changed edges are route edges
            raise AssertionError(f"edge {e} has no travel-time function")
        lo, hi = int(ttf_indptr[fid]), int(ttf_indptr[fid + 1])
        if hi - lo != len(ttf):  # pragma: no cover — delays keep counts
            raise AssertionError(
                f"ttf {fid} changed size: {hi - lo} -> {len(ttf)}"
            )
        ttf_dep[lo:hi] = ttf.deps
        ttf_dur[lo:hi] = ttf.durs
        ttf_fifo[fid] = ttf.is_fifo()
        patched_fids[fid] = ttf

    conn_dep = arrays.conn_dep.copy()
    conn_start = arrays.conn_start.copy()
    conn_indptr = arrays.conn_indptr
    # Collect the changed stations' conn(S) rows in one pass instead
    # of Timetable.outgoing_connections, whose lazy index sorts the
    # *whole* timetable — on a large city that single sort would cost
    # more than the entire patch.  Stable per-row sort on
    # (dep_time, arr_time) reproduces the index's order exactly (its
    # global sort key is (dep_time, arr_time, position)).
    rows: dict[int, list] = {s: [] for s in patch.changed_stations}
    for c in delayed.connections:
        row = rows.get(c.dep_station)
        if row is not None:
            row.append(c)
    for station in sorted(patch.changed_stations):
        conns = rows[station]
        conns.sort(key=lambda c: (c.dep_time, c.arr_time))
        lo, hi = int(conn_indptr[station]), int(conn_indptr[station + 1])
        if hi - lo != len(conns):  # pragma: no cover — delays keep counts
            raise AssertionError(
                f"station {station} changed departure count: "
                f"{hi - lo} -> {len(conns)}"
            )
        conn_dep[lo:hi] = [c.dep_time for c in conns]
        conn_start[lo:hi] = [
            patched_graph.source_route_node(c) for c in conns
        ]

    cache = arrays._adjacency_cache
    new_cache = None
    if cache is not None:
        new_tuples = {
            fid: (list(ttf.deps), list(ttf.durs), ttf.is_fifo(), len(ttf))
            for fid, ttf in patched_fids.items()
        }
        new_cache = list(cache)
        for node, slot, _ttf in patch.changed_edges:
            e = int(edge_indptr[node]) + slot
            fid = int(arrays.edge_ttf[e])
            row = list(new_cache[node])
            target, weight, _old = row[slot]
            row[slot] = (target, weight, new_tuples[fid])
            new_cache[node] = row

    return TDGraphArrays(
        num_nodes=arrays.num_nodes,
        num_stations=arrays.num_stations,
        period=arrays.period,
        node_station=arrays.node_station,
        edge_indptr=arrays.edge_indptr,
        edge_target=arrays.edge_target,
        edge_weight=arrays.edge_weight,
        edge_ttf=arrays.edge_ttf,
        ttf_indptr=arrays.ttf_indptr,
        ttf_dep=ttf_dep,
        ttf_dur=ttf_dur,
        ttf_fifo=ttf_fifo,
        conn_indptr=arrays.conn_indptr,
        conn_dep=conn_dep,
        conn_start=conn_start,
        transfer_time=arrays.transfer_time,
        _adjacency_cache=new_cache,
    )


def stations_reaching(
    station_graph, targets: set[int]
) -> np.ndarray:
    """Boolean mask over stations: which can reach any of ``targets``
    in the (time-independent) station graph ``G_S``.

    Reachability in ``G_S`` coincides with reachability in the
    time-dependent graph: every leg with connections offers *some*
    departure in every period, so whether a path exists never depends
    on the clock — only arrival values do.
    """
    n = station_graph.num_stations
    mask = np.zeros(n, dtype=bool)
    stack = [t for t in targets if 0 <= t < n]
    for t in stack:
        mask[t] = True
    while stack:
        s = stack.pop()
        for p in station_graph.predecessors(s).tolist():
            if not mask[p]:
                mask[p] = True
                stack.append(p)
    return mask
