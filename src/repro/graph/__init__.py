"""Graph models of a timetable.

* :mod:`repro.graph.td_model` — the *realistic time-dependent model* of
  Pyrga et al. used by the paper (§2): station nodes plus per-route
  route nodes, constant transfer edges and time-dependent route edges.
* :mod:`repro.graph.station_graph` — the station graph ``G_S`` (§4):
  one node per station, an edge where at least one train runs.
* :mod:`repro.graph.td_arrays` — the packed flat-array form of the
  time-dependent graph consumed by the SPCS kernel
  (:mod:`repro.core.spcs_kernel`) and shipped to worker processes.
* :mod:`repro.graph.csr` — small CSR utilities shared by both.
"""

from repro.graph.td_model import Edge, TDGraph, build_td_graph
from repro.graph.td_arrays import TDGraphArrays, pack_td_graph, packed_arrays
from repro.graph.station_graph import StationGraph, build_station_graph

__all__ = [
    "Edge",
    "TDGraph",
    "build_td_graph",
    "TDGraphArrays",
    "pack_td_graph",
    "packed_arrays",
    "StationGraph",
    "build_station_graph",
]
