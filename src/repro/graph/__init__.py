"""Graph models of a timetable.

* :mod:`repro.graph.td_model` — the *realistic time-dependent model* of
  Pyrga et al. used by the paper (§2): station nodes plus per-route
  route nodes, constant transfer edges and time-dependent route edges.
* :mod:`repro.graph.station_graph` — the station graph ``G_S`` (§4):
  one node per station, an edge where at least one train runs.
* :mod:`repro.graph.csr` — small CSR utilities shared by both.
"""

from repro.graph.td_model import Edge, TDGraph, build_td_graph
from repro.graph.station_graph import StationGraph, build_station_graph

__all__ = [
    "Edge",
    "TDGraph",
    "build_td_graph",
    "StationGraph",
    "build_station_graph",
]
