"""Packed flat-array form of the time-dependent graph (HPC layout).

:class:`TDGraphArrays` is the struct-of-arrays twin of
:class:`~repro.graph.td_model.TDGraph`: the adjacency becomes CSR
``(edge_indptr, edge_target, edge_weight, edge_ttf)`` vectors, the
travel-time functions are packed into one shared ``(ttf_indptr,
ttf_dep, ttf_dur)`` pool, and ``conn(S)`` becomes a per-station CSR of
departure times and seed route nodes.  Everything is a dense int64
numpy array, so the whole graph pickles as a handful of buffers —
cheap to ship to worker processes — and indexes without touching a
single Python object.

The flat-array SPCS kernel (:mod:`repro.core.spcs_kernel`) additionally
wants Python-``list`` mirrors of the hot arrays: CPython list indexing
is several times faster than scalar numpy indexing, which dominates an
interpreter-bound inner loop.  :meth:`TDGraphArrays.kernel_adjacency`
builds those mirrors lazily and caches them; the cache is dropped on
pickling (workers rebuild their own).

Layout summary (``N`` nodes, ``E`` edges, ``F`` ttfs, ``P`` ttf points,
``S`` stations, ``C`` connections):

===================  ==========  ==============================================
array                shape       meaning
===================  ==========  ==============================================
``node_station``     ``N``       ``st(u)`` per node
``edge_indptr``      ``N + 1``   CSR row pointers into the edge arrays
``edge_target``      ``E``       head node per edge
``edge_weight``      ``E``       constant weight (transfer/alight edges)
``edge_ttf``         ``E``       ttf id per edge, ``-1`` for constant edges
``ttf_indptr``       ``F + 1``   row pointers into the point pool
``ttf_dep``          ``P``       departure time points, per ttf ascending
``ttf_dur``          ``P``       durations, parallel to ``ttf_dep``
``ttf_fifo``         ``F``       next-departure-is-optimal flag per ttf
``conn_indptr``      ``S + 1``   row pointers into the connection arrays
``conn_dep``         ``C``       departure time per connection, ``conn(S)``
                                 order (matches ``outgoing_connections``)
``conn_start``       ``C``       seed route node per connection (SPCS init)
``transfer_time``    ``S``       minimum transfer time ``T(S)``
===================  ==========  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.td_model import TDGraph


@dataclass
class TDGraphArrays:
    """Flat-array representation of a :class:`TDGraph` (see module doc)."""

    num_nodes: int
    num_stations: int
    period: int
    node_station: np.ndarray
    edge_indptr: np.ndarray
    edge_target: np.ndarray
    edge_weight: np.ndarray
    edge_ttf: np.ndarray
    ttf_indptr: np.ndarray
    ttf_dep: np.ndarray
    ttf_dur: np.ndarray
    ttf_fifo: np.ndarray
    conn_indptr: np.ndarray
    conn_dep: np.ndarray
    conn_start: np.ndarray
    transfer_time: np.ndarray
    #: Lazy kernel-side cache; never pickled (workers rebuild their own).
    _adjacency_cache: list | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_edges(self) -> int:
        return int(self.edge_target.size)

    @property
    def num_connections(self) -> int:
        return int(self.conn_dep.size)

    def is_station_node(self, u: int) -> bool:
        return u < self.num_stations

    def outgoing_connection_count(self, station: int) -> int:
        """``|conn(S)|`` for a station."""
        return int(self.conn_indptr[station + 1] - self.conn_indptr[station])

    def source_connection_arrays(
        self, station: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(dep_times, seed_route_nodes)`` views of ``conn(station)``."""
        lo, hi = int(self.conn_indptr[station]), int(self.conn_indptr[station + 1])
        return self.conn_dep[lo:hi], self.conn_start[lo:hi]

    def kernel_adjacency(self) -> list:
        """Per-node adjacency as plain Python objects for the kernel.

        ``adjacency[u]`` is a list of ``(target, weight, ttf)`` triples
        where ``ttf`` is ``None`` for constant edges, else a
        ``(deps_list, durs_list, fifo, n)`` tuple shared across edges
        referencing the same function.  Built once and cached.
        """
        if self._adjacency_cache is not None:
            return self._adjacency_cache

        ttfs = []
        dep_pool = self.ttf_dep.tolist()
        dur_pool = self.ttf_dur.tolist()
        indptr = self.ttf_indptr.tolist()
        fifo = self.ttf_fifo.tolist()
        for f in range(len(fifo)):
            lo, hi = indptr[f], indptr[f + 1]
            ttfs.append((dep_pool[lo:hi], dur_pool[lo:hi], bool(fifo[f]), hi - lo))

        edge_indptr = self.edge_indptr.tolist()
        edge_target = self.edge_target.tolist()
        edge_weight = self.edge_weight.tolist()
        edge_ttf = self.edge_ttf.tolist()
        adjacency = []
        for u in range(self.num_nodes):
            lo, hi = edge_indptr[u], edge_indptr[u + 1]
            adjacency.append(
                [
                    (
                        edge_target[e],
                        edge_weight[e],
                        None if edge_ttf[e] < 0 else ttfs[edge_ttf[e]],
                    )
                    for e in range(lo, hi)
                ]
            )
        self._adjacency_cache = adjacency
        return adjacency

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_adjacency_cache"] = None
        return state

    def nbytes(self) -> int:
        """Total packed size in bytes (diagnostics / docs)."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "node_station",
                "edge_indptr",
                "edge_target",
                "edge_weight",
                "edge_ttf",
                "ttf_indptr",
                "ttf_dep",
                "ttf_dur",
                "ttf_fifo",
                "conn_indptr",
                "conn_dep",
                "conn_start",
                "transfer_time",
            )
        )


def pack_td_graph(graph: TDGraph) -> TDGraphArrays:
    """Pack a :class:`TDGraph` into its flat-array form.

    Edge order within a node follows ``graph.adjacency`` (the kernel and
    the object-graph SPCS relax in the same order); ``conn(S)`` order
    matches :meth:`Timetable.outgoing_connections`.
    """
    timetable = graph.timetable
    num_nodes = graph.num_nodes
    num_stations = graph.num_stations

    edge_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    targets: list[int] = []
    weights: list[int] = []
    ttf_ids: list[int] = []
    ttf_key_to_id: dict[int, int] = {}
    ttf_objs = []
    for u, edges in enumerate(graph.adjacency):
        for edge in edges:
            targets.append(edge.target)
            if edge.ttf is None:
                weights.append(edge.weight)
                ttf_ids.append(-1)
            else:
                weights.append(0)
                key = id(edge.ttf)
                fid = ttf_key_to_id.get(key)
                if fid is None:
                    fid = len(ttf_objs)
                    ttf_key_to_id[key] = fid
                    ttf_objs.append(edge.ttf)
                ttf_ids.append(fid)
        edge_indptr[u + 1] = len(targets)

    ttf_indptr = np.zeros(len(ttf_objs) + 1, dtype=np.int64)
    ttf_dep: list[int] = []
    ttf_dur: list[int] = []
    ttf_fifo = np.zeros(len(ttf_objs), dtype=bool)
    for f, ttf in enumerate(ttf_objs):
        ttf_dep.extend(ttf.deps)
        ttf_dur.extend(ttf.durs)
        ttf_indptr[f + 1] = len(ttf_dep)
        ttf_fifo[f] = ttf.is_fifo()

    conn_indptr = np.zeros(num_stations + 1, dtype=np.int64)
    conn_dep: list[int] = []
    conn_start: list[int] = []
    for station in range(num_stations):
        for c in timetable.outgoing_connections(station):
            conn_dep.append(c.dep_time)
            conn_start.append(graph.source_route_node(c))
        conn_indptr[station + 1] = len(conn_dep)

    return TDGraphArrays(
        num_nodes=num_nodes,
        num_stations=num_stations,
        period=timetable.period,
        node_station=np.asarray(graph.node_station, dtype=np.int64),
        edge_indptr=edge_indptr,
        edge_target=np.asarray(targets, dtype=np.int64),
        edge_weight=np.asarray(weights, dtype=np.int64),
        edge_ttf=np.asarray(ttf_ids, dtype=np.int64),
        ttf_indptr=ttf_indptr,
        ttf_dep=np.asarray(ttf_dep, dtype=np.int64),
        ttf_dur=np.asarray(ttf_dur, dtype=np.int64),
        ttf_fifo=ttf_fifo,
        conn_indptr=conn_indptr,
        conn_dep=np.asarray(conn_dep, dtype=np.int64),
        conn_start=np.asarray(conn_start, dtype=np.int64),
        transfer_time=np.asarray(
            [s.transfer_time for s in timetable.stations], dtype=np.int64
        ),
    )


# Packing a large graph is not free; queries and benchmarks pack each
# graph once and reuse it.  Entries hold the graph strongly so ``id``
# reuse cannot alias a dead graph to a live cache entry.
_PACK_CACHE: dict[int, tuple[TDGraph, TDGraphArrays]] = {}
_PACK_CACHE_MAX = 8


def packed_arrays(graph: TDGraph) -> TDGraphArrays:
    """Cached :func:`pack_td_graph` (bounded, insertion-evicted cache)."""
    key = id(graph)
    hit = _PACK_CACHE.get(key)
    if hit is not None and hit[0] is graph:
        return hit[1]
    arrays = pack_td_graph(graph)
    if len(_PACK_CACHE) >= _PACK_CACHE_MAX:
        _PACK_CACHE.pop(next(iter(_PACK_CACHE)))
    _PACK_CACHE[key] = (graph, arrays)
    return arrays
