"""repro — reproduction of *Parallel Computation of Best Connections in
Public Transportation Networks* (Delling, Katz, Pajor; IPDPS 2010).

Public API tour
---------------

Build or load a timetable::

    from repro import TimetableBuilder, make_instance
    timetable = make_instance("oahu", scale="tiny")

Build the realistic time-dependent graph and run profile searches::

    from repro import build_td_graph, parallel_profile_search
    graph = build_td_graph(timetable)
    result = parallel_profile_search(graph, source=0, num_threads=4)
    profile = result.profile(station=5)     # dist(S, T, ·), reduced
    profile.earliest_arrival(8 * 60)        # depart 08:00

Or — the recommended entry point — let the :class:`TransitService`
facade prepare everything once and answer every query shape::

    from repro import TransitService, ServiceConfig
    service = TransitService(
        timetable,
        ServiceConfig(use_distance_table=True, transfer_fraction=0.05),
    )
    service.profile(0)                         # one-to-all
    service.journey(0, 5, departure=8 * 60)    # journey with legs
    service.batch([(0, 5), (3, 9)])            # batched workload
    service.apply_delays([Delay(train=2, minutes=10)])  # replanning

Persist the prepared artifacts once and warm-start later processes in
milliseconds (no builds, bitwise-identical answers)::

    service.save("stores/oahu")
    warm = TransitService.load("stores/oahu")

Or write against the transport-agnostic client SDK — the same program
runs unchanged over an in-process dataset or a remote
``repro-transit serve`` fleet, with bitwise-identical answers::

    from repro import connect
    backend = connect("stores/oahu")              # LocalBackend
    backend = connect("http://host:8321/oahu")    # HttpBackend
    backend.journey(0, 5, departure=8 * 60)
    for answer in backend.iter_batch([(0, 5), (3, 9)]):
        ...                                       # streaming batch

To scale query throughput past one interpreter, serve the same store
from N worker processes behind a routing gateway
(``repro-transit serve-fleet``; :mod:`repro.fleet`, docs/FLEET.md) —
clients keep the URL above, and gain worker failover plus
fleet-coordinated delay swaps for free.

Live operations ride on the same swap path: a seeded GTFS-RT-style
delay stream (:func:`repro.synthetic.delays.generate_delay_stream`)
replayed by :mod:`repro.streams` drives a serving target with
interleaved query+delay traffic, each batch absorbed by incremental
delta replanning (``apply_delays(..., mode="incremental")`` —
bitwise-identical to a full rebuild, several times faster; see
docs/STREAMS.md).

The lower-level building blocks remain available for research use::

    from repro import (
        select_transfer_stations, build_distance_table, StationToStationEngine,
    )
    stations = select_transfer_stations(timetable, fraction=0.05)
    table = build_distance_table(graph, stations)
    engine = StationToStationEngine(graph, table)
    answer = engine.query(source=0, target=5)

See DESIGN.md for the system inventory, docs/API.md for the service
facade, and EXPERIMENTS.md for the reproduction results.
"""

from repro.timetable import (
    Connection,
    Delay,
    Route,
    Station,
    Timetable,
    TimetableBuilder,
    TimetableError,
    Train,
    apply_delays,
    validate_timetable,
)
from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.io import load_timetable, save_timetable
from repro.functions import INF_TIME, Profile, TravelTimeFunction
from repro.graph import TDGraph, build_station_graph, build_td_graph
from repro.baselines import label_correcting_profile, mc_time_query, time_query
from repro.core import (
    mc_profile_search,
    parallel_profile_search,
    spcs_profile_search,
)
from repro.query import (
    BatchQueryEngine,
    DistanceTable,
    StationToStationEngine,
    build_distance_table,
    compute_via_stations,
    select_transfer_stations,
)
from repro.store import StoreError, describe_store, load_dataset, save_dataset
from repro.service import (
    BatchRequest,
    BatchResponse,
    JourneyLeg,
    JourneyRequest,
    JourneyResult,
    MinTransfersRequest,
    MinTransfersResult,
    MulticriteriaRequest,
    MulticriteriaResult,
    ParetoOption,
    PreparedDataset,
    PrepareStats,
    ProfileRequest,
    ProfileResult,
    QueryStats,
    ServiceConfig,
    TransitService,
    ViaRequest,
    ViaResult,
    prepare_dataset,
)
from repro.client import (
    BackendError,
    BackendTimeoutError,
    BadRequestError,
    HttpBackend,
    LocalBackend,
    OverloadedError,
    RetryPolicy,
    TransitBackend,
    TransportError,
    UnknownDatasetError,
    connect,
)
from repro.synthetic import make_instance

__version__ = "1.6.0"

__all__ = [
    "Connection",
    "Delay",
    "apply_delays",
    "Route",
    "Station",
    "Timetable",
    "TimetableBuilder",
    "TimetableError",
    "Train",
    "validate_timetable",
    "load_gtfs",
    "save_gtfs",
    "load_timetable",
    "save_timetable",
    "INF_TIME",
    "Profile",
    "TravelTimeFunction",
    "TDGraph",
    "build_station_graph",
    "build_td_graph",
    "label_correcting_profile",
    "mc_time_query",
    "time_query",
    "mc_profile_search",
    "parallel_profile_search",
    "spcs_profile_search",
    "DistanceTable",
    "StationToStationEngine",
    "BatchQueryEngine",
    "build_distance_table",
    "compute_via_stations",
    "select_transfer_stations",
    "TransitService",
    "ServiceConfig",
    "ProfileRequest",
    "JourneyRequest",
    "BatchRequest",
    "MulticriteriaRequest",
    "ViaRequest",
    "MinTransfersRequest",
    "ProfileResult",
    "JourneyResult",
    "BatchResponse",
    "MulticriteriaResult",
    "ViaResult",
    "MinTransfersResult",
    "ParetoOption",
    "JourneyLeg",
    "QueryStats",
    "PreparedDataset",
    "PrepareStats",
    "prepare_dataset",
    "StoreError",
    "describe_store",
    "load_dataset",
    "save_dataset",
    "make_instance",
    "TransitBackend",
    "LocalBackend",
    "HttpBackend",
    "RetryPolicy",
    "connect",
    "BackendError",
    "TransportError",
    "BackendTimeoutError",
    "BadRequestError",
    "UnknownDatasetError",
    "OverloadedError",
    "__version__",
]
