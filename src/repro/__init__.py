"""repro — reproduction of *Parallel Computation of Best Connections in
Public Transportation Networks* (Delling, Katz, Pajor; IPDPS 2010).

Public API tour
---------------

Build or load a timetable::

    from repro import TimetableBuilder, make_instance
    timetable = make_instance("oahu", scale="tiny")

Build the realistic time-dependent graph and run profile searches::

    from repro import build_td_graph, parallel_profile_search
    graph = build_td_graph(timetable)
    result = parallel_profile_search(graph, source=0, num_threads=4)
    profile = result.profile(station=5)     # dist(S, T, ·), reduced
    profile.earliest_arrival(8 * 60)        # depart 08:00

Accelerated station-to-station queries::

    from repro import (
        select_transfer_stations, build_distance_table, StationToStationEngine,
    )
    stations = select_transfer_stations(timetable, fraction=0.05)
    table = build_distance_table(graph, stations)
    engine = StationToStationEngine(graph, table)
    answer = engine.query(source=0, target=5)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction results.
"""

from repro.timetable import (
    Connection,
    Delay,
    Route,
    Station,
    Timetable,
    TimetableBuilder,
    TimetableError,
    Train,
    apply_delays,
    validate_timetable,
)
from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.io import load_timetable, save_timetable
from repro.functions import INF_TIME, Profile, TravelTimeFunction
from repro.graph import TDGraph, build_station_graph, build_td_graph
from repro.baselines import label_correcting_profile, mc_time_query, time_query
from repro.core import (
    mc_profile_search,
    parallel_profile_search,
    spcs_profile_search,
)
from repro.query import (
    DistanceTable,
    StationToStationEngine,
    build_distance_table,
    compute_via_stations,
    select_transfer_stations,
)
from repro.synthetic import make_instance

__version__ = "1.0.0"

__all__ = [
    "Connection",
    "Delay",
    "apply_delays",
    "Route",
    "Station",
    "Timetable",
    "TimetableBuilder",
    "TimetableError",
    "Train",
    "validate_timetable",
    "load_gtfs",
    "save_gtfs",
    "load_timetable",
    "save_timetable",
    "INF_TIME",
    "Profile",
    "TravelTimeFunction",
    "TDGraph",
    "build_station_graph",
    "build_td_graph",
    "label_correcting_profile",
    "mc_time_query",
    "time_query",
    "mc_profile_search",
    "parallel_profile_search",
    "spcs_profile_search",
    "DistanceTable",
    "StationToStationEngine",
    "build_distance_table",
    "compute_via_stations",
    "select_transfer_stations",
    "make_instance",
    "__version__",
]
