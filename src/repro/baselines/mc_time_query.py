"""Transfer-bounded time-query: ground truth for the multi-criteria
extension (paper §6, future work).

A time-dependent Dijkstra on the *layered* graph ``(node, transfers
used)``: boarding edges move one layer up, all other edges stay in
layer.  ``arrival[u][k]`` is the earliest arrival at ``u`` using at most
``k`` transfers.  Exponential in nothing, just ``K+1`` layers — used by
tests to validate the multi-criteria SPCS Pareto fronts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.pq import LazyHeap


@dataclass(slots=True)
class McTimeQueryResult:
    """Earliest arrivals per (node, transfer budget)."""

    source: int
    departure: int
    max_transfers: int
    #: arrival[u][k] — earliest arrival at u with ≤ k transfers.
    arrival: list[list[int]]

    def arrival_at_station(self, station: int, max_transfers: int) -> int:
        k = min(max_transfers, self.max_transfers)
        return self.arrival[station][k]

    def pareto_front(self, station: int) -> list[tuple[int, int]]:
        """Non-dominated (transfers, arrival) pairs at a station."""
        front: list[tuple[int, int]] = []
        best = INF_TIME
        for k in range(self.max_transfers + 1):
            arrival = self.arrival[station][k]
            if arrival < best:
                front.append((k, arrival))
                best = arrival
        return front


def mc_time_query(
    graph: TDGraph,
    source: int,
    departure: int,
    *,
    max_transfers: int = 5,
) -> McTimeQueryResult:
    """Run the layered transfer-bounded time-query."""
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if max_transfers < 0:
        raise ValueError(f"max_transfers must be ≥ 0, got {max_transfers}")

    layers = max_transfers + 1
    num_nodes = graph.num_nodes
    arrival = [[INF_TIME] * layers for _ in range(num_nodes)]
    adjacency = graph.adjacency
    pq = LazyHeap()

    arrival[source] = [departure] * layers
    # Initial boarding is free of both transfer time and transfer count.
    for edge in adjacency[source]:
        for k in range(layers):
            arrival[edge.target][k] = departure
        pq.push((edge.target, 0), departure)

    while pq:
        (node, k), key = pq.pop()
        if key > arrival[node][k]:
            continue
        for edge in adjacency[node]:
            t_next = edge.arrival(key)
            is_boarding = edge.ttf is None and graph.is_station_node(node)
            k_next = k + 1 if is_boarding else k
            if k_next >= layers:
                continue
            head = edge.target
            if t_next < arrival[head][k_next]:
                # A better arrival with k transfers improves every
                # budget ≥ k as well.
                for kk in range(k_next, layers):
                    if t_next < arrival[head][kk]:
                        arrival[head][kk] = t_next
                pq.push((head, k_next), t_next)

    return McTimeQueryResult(
        source=source,
        departure=departure,
        max_transfers=max_transfers,
        arrival=arrival,
    )
