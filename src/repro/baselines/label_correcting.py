"""Label-correcting profile search (paper §2, comparator in §5.1).

The classic profile-query algorithm: node labels are whole travel-time
functions; relaxing an edge links the label with the edge function and
merges the result into the head's label.  Nodes re-enter the queue when
their function improves, so the label-setting property is lost — hence
*label-correcting*.

Representation exploits Eq. 1: every function from source ``S`` has its
breakpoints anchored at the departures of ``conn(S)``, so a label is a
dense ``int64[|conn(S)|]`` vector of absolute arrivals.  Merging is
elementwise ``minimum``; linking is a vectorized edge evaluation
(:meth:`TravelTimeFunction.arrival_batch`).

Work accounting matches the paper: *settled connections* for LC is the
sum of the sizes (finite entries) of the labels taken from the queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.pq import LazyHeap


@dataclass(slots=True)
class LabelCorrectingResult:
    """Outcome of an LC one-to-all profile search.

    ``labels[u, i]`` — earliest absolute arrival at node ``u`` when
    departing the source at the ``i``-th outgoing connection's time and
    boarding it first; ``INF_TIME`` when unreachable.
    """

    source: int
    conn_deps: np.ndarray
    labels: np.ndarray
    settled_connections: int
    queue_pops: int

    def profile(self, station: int, period: int = 1440) -> Profile:
        """Reduced profile ``dist(S, station, ·)``."""
        return Profile.from_raw(self.conn_deps, self.labels[station], period)


def label_correcting_profile(
    graph: TDGraph, source: int, *, vectorized: bool = True
) -> LabelCorrectingResult:
    """Run the LC profile search from station ``source``.

    ``vectorized=True`` (default) relaxes label vectors with numpy —
    the fastest way to run LC in Python.  ``vectorized=False`` walks
    label entries in scalar Python, matching the per-connection-point
    cost model of the paper's C++ LC implementation; Table 1 uses this
    mode so the CS-vs-LC time relation is not an artifact of numpy
    batching (see EXPERIMENTS.md).  Both modes produce identical labels
    and identical settled-connection counts.
    """
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")

    timetable = graph.timetable
    conns = timetable.outgoing_connections(source)
    num_conns = len(conns)
    num_nodes = graph.num_nodes
    conn_deps = np.asarray([c.dep_time for c in conns], dtype=np.int64)

    labels = np.full((num_nodes, num_conns), INF_TIME, dtype=np.int64)
    dirty = np.zeros(num_nodes, dtype=bool)
    pq = LazyHeap()
    settled_connections = 0
    queue_pops = 0

    if num_conns == 0:
        return LabelCorrectingResult(
            source=source,
            conn_deps=conn_deps,
            labels=labels,
            settled_connections=0,
            queue_pops=0,
        )

    # Seed: anchor i starts at its own connection's route node at the
    # departure time (no transfer time at the source; §3.1).
    for i, c in enumerate(conns):
        node = graph.source_route_node(c)
        if c.dep_time < labels[node, i]:
            labels[node, i] = c.dep_time
            dirty[node] = True
    for node in np.nonzero(dirty)[0]:
        pq.push(int(node), int(labels[node].min()))

    adjacency = graph.adjacency
    while pq:
        node, _key = pq.pop()
        if not dirty[node]:
            continue  # superseded entry: label unchanged since last pop
        dirty[node] = False
        queue_pops += 1
        vec = labels[node]
        settled_connections += int((vec < INF_TIME).sum())
        if vectorized:
            for edge in adjacency[node]:
                if edge.ttf is None:
                    tentative = np.where(
                        vec < INF_TIME, vec + edge.weight, INF_TIME
                    )
                else:
                    tentative = edge.ttf.arrival_batch(vec)
                head = edge.target
                improved = tentative < labels[head]
                if improved.any():
                    np.minimum(labels[head], tentative, out=labels[head])
                    dirty[head] = True
                    pq.push(head, int(labels[head].min()))
        else:
            # Scalar mode: one link/merge operation per connection point,
            # the cost model of a classic LC implementation.
            for edge in adjacency[node]:
                head = edge.target
                head_vec = labels[head]
                improved = False
                if edge.ttf is None:
                    weight = edge.weight
                    for i in range(num_conns):
                        t = vec[i]
                        if t >= INF_TIME:
                            continue
                        t += weight
                        if t < head_vec[i]:
                            head_vec[i] = t
                            improved = True
                else:
                    ttf_arrival = edge.ttf.arrival
                    for i in range(num_conns):
                        t = vec[i]
                        if t >= INF_TIME:
                            continue
                        t = ttf_arrival(int(t))
                        if t < head_vec[i]:
                            head_vec[i] = t
                            improved = True
                if improved:
                    dirty[head] = True
                    pq.push(head, int(head_vec.min()))

    return LabelCorrectingResult(
        source=source,
        conn_deps=conn_deps,
        labels=labels,
        settled_connections=settled_connections,
        queue_pops=queue_pops,
    )
