"""Baseline algorithms the paper compares against (§2, §5.1).

* :mod:`repro.baselines.time_query` — time-dependent Dijkstra computing
  ``dist(S, ·, τ)`` for one departure time (label-setting).
* :mod:`repro.baselines.label_correcting` — the label-correcting
  profile search (LC): propagates whole travel-time functions, loses
  the label-setting property, serves as Table 1's comparator.
"""

from repro.baselines.time_query import TimeQueryResult, time_query
from repro.baselines.label_correcting import (
    LabelCorrectingResult,
    label_correcting_profile,
)
from repro.baselines.mc_time_query import McTimeQueryResult, mc_time_query

__all__ = [
    "TimeQueryResult",
    "time_query",
    "LabelCorrectingResult",
    "label_correcting_profile",
    "McTimeQueryResult",
    "mc_time_query",
]
