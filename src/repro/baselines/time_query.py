"""Time-query: time-dependent Dijkstra (paper §2).

Computes ``dist(S, ·, τ)`` — earliest arrivals at every node for one
fixed departure time — with the classic label-setting property.  Keys
are absolute arrival times.

Used (a) as the ground truth profile searches are verified against at
every departure anchor, and (b) as the degenerate endpoint of the
parallelization argument (§3.2: with one thread per connection, SPCS
becomes |conn(S)| independent time-queries).

Departure semantics match SPCS: the journey starts at station ``S`` at
time ``τ`` and may board any connection departing at or after ``τ``
without paying the transfer time ``T(S)`` at the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.pq import QUEUE_FACTORIES


@dataclass(slots=True)
class TimeQueryResult:
    """Outcome of a one-to-all time-query.

    ``arrival[u]`` is the earliest absolute arrival at node ``u``
    (``INF_TIME`` when unreachable); ``settled`` counts queue
    extractions (the paper's work measure).
    """

    source: int
    departure: int
    arrival: list[int]
    settled: int
    #: Predecessor node per node (``-1`` = unreached or the source);
    #: populated only when the query ran with ``track_parents=True``.
    parent: list[int] | None = None

    def arrival_at_station(self, station: int) -> int:
        """Earliest arrival at a station node."""
        return self.arrival[station]

    def path_to(self, node: int) -> list[int]:
        """Node path source → ``node`` (needs ``track_parents=True``).

        Valid for any settled node — in particular for the ``target``
        of a targeted query.  Raises if parents were not tracked or the
        node is unreachable.
        """
        if self.parent is None:
            raise ValueError("time_query ran without track_parents=True")
        if self.arrival[node] >= INF_TIME:
            raise ValueError(f"node {node} is unreachable")
        path = [node]
        while path[-1] != self.source:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path

    def travel_time(self, station: int) -> int:
        arrival = self.arrival[station]
        return arrival - self.departure if arrival < INF_TIME else INF_TIME


def time_query(
    graph: TDGraph,
    source: int,
    departure: int,
    *,
    target: int | None = None,
    queue: str = "binary",
    track_parents: bool = False,
) -> TimeQueryResult:
    """Run a time-query from station ``source`` at time ``departure``.

    ``target``: optional station for early termination (stop once the
    target station node is settled).  ``queue`` selects the priority
    queue implementation (see :mod:`repro.pq`).  ``track_parents``
    records the predecessor of each node's best tentative label so the
    shortest-path *tree* can be walked afterwards (used by the service
    layer's journey-leg reconstruction, :mod:`repro.service.journeys`).
    """
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if target is not None and not graph.is_station_node(target):
        raise ValueError(f"target must be a station node, got {target}")

    arrival = [INF_TIME] * graph.num_nodes
    adjacency = graph.adjacency
    pq = QUEUE_FACTORIES[queue]()
    settled = 0
    # Parent pointers follow the best *tentative* label; every node on
    # a backtracked path settled before its successor, so the chain is
    # final wherever arrival[] is.
    parent: list[int] | None = None
    tentative: list[int] | None = None
    if track_parents:
        parent = [-1] * graph.num_nodes
        tentative = [INF_TIME] * graph.num_nodes
        tentative[source] = departure

    # Seed: we are physically at the source at `departure`; boarding the
    # first train costs no transfer time, so seed the departing route
    # nodes directly (mirrors SPCS seeding, §3.1).
    arrival[source] = departure
    for edge in adjacency[source]:
        # Source boarding edges lead to route nodes; skip the T(S) cost.
        pq.push(edge.target, departure)
        if parent is not None and departure < tentative[edge.target]:
            tentative[edge.target] = departure
            parent[edge.target] = source

    while pq:
        node, key = pq.pop()
        if key >= arrival[node]:
            continue  # stale duplicate (lazy queues) or already settled
        arrival[node] = key
        settled += 1
        if target is not None and node == target:
            break
        for edge in adjacency[node]:
            t_next = edge.arrival(key)
            if t_next < arrival[edge.target]:
                pq.push(edge.target, t_next)
                if parent is not None and t_next < tentative[edge.target]:
                    tentative[edge.target] = t_next
                    parent[edge.target] = node

    return TimeQueryResult(
        source=source,
        departure=departure,
        arrival=arrival,
        settled=settled,
        parent=parent,
    )
