"""Time-query: time-dependent Dijkstra (paper §2).

Computes ``dist(S, ·, τ)`` — earliest arrivals at every node for one
fixed departure time — with the classic label-setting property.  Keys
are absolute arrival times.

Used (a) as the ground truth profile searches are verified against at
every departure anchor, and (b) as the degenerate endpoint of the
parallelization argument (§3.2: with one thread per connection, SPCS
becomes |conn(S)| independent time-queries).

Departure semantics match SPCS: the journey starts at station ``S`` at
time ``τ`` and may board any connection departing at or after ``τ``
without paying the transfer time ``T(S)`` at the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.pq import QUEUE_FACTORIES


@dataclass(slots=True)
class TimeQueryResult:
    """Outcome of a one-to-all time-query.

    ``arrival[u]`` is the earliest absolute arrival at node ``u``
    (``INF_TIME`` when unreachable); ``settled`` counts queue
    extractions (the paper's work measure).
    """

    source: int
    departure: int
    arrival: list[int]
    settled: int

    def arrival_at_station(self, station: int) -> int:
        """Earliest arrival at a station node."""
        return self.arrival[station]

    def travel_time(self, station: int) -> int:
        arrival = self.arrival[station]
        return arrival - self.departure if arrival < INF_TIME else INF_TIME


def time_query(
    graph: TDGraph,
    source: int,
    departure: int,
    *,
    target: int | None = None,
    queue: str = "binary",
) -> TimeQueryResult:
    """Run a time-query from station ``source`` at time ``departure``.

    ``target``: optional station for early termination (stop once the
    target station node is settled).  ``queue`` selects the priority
    queue implementation (see :mod:`repro.pq`).
    """
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if target is not None and not graph.is_station_node(target):
        raise ValueError(f"target must be a station node, got {target}")

    arrival = [INF_TIME] * graph.num_nodes
    adjacency = graph.adjacency
    pq = QUEUE_FACTORIES[queue]()
    settled = 0

    # Seed: we are physically at the source at `departure`; boarding the
    # first train costs no transfer time, so seed the departing route
    # nodes directly (mirrors SPCS seeding, §3.1).
    arrival[source] = departure
    for edge in adjacency[source]:
        # Source boarding edges lead to route nodes; skip the T(S) cost.
        pq.push(edge.target, departure)

    while pq:
        node, key = pq.pop()
        if key >= arrival[node]:
            continue  # stale duplicate (lazy queues) or already settled
        arrival[node] = key
        settled += 1
        if target is not None and node == target:
            break
        for edge in adjacency[node]:
            t_next = edge.arrival(key)
            if t_next < arrival[edge.target]:
                pq.push(edge.target, t_next)

    return TimeQueryResult(
        source=source, departure=departure, arrival=arrival, settled=settled
    )
