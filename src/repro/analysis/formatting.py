"""Plain-text rendering of experiment results in the paper's layout."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.runners import Table1Result, Table2Row


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Right-aligned fixed-width table (monospace-friendly)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(results: Sequence[Table1Result]) -> str:
    """Table 1: one-to-all profile queries, CS per core count vs LC."""
    headers = ["instance", "algo", "p", "settled conns", "time [ms]", "spd-up"]
    rows: list[list[object]] = []
    for result in results:
        for cell in result.cells:
            rows.append(
                [
                    result.instance,
                    "CS",
                    cell.num_cores,
                    f"{cell.settled_mean:,.0f}",
                    f"{cell.time_mean * 1000:.1f}",
                    f"{cell.speedup:.1f}",
                ]
            )
        if result.lc is not None:
            rows.append(
                [
                    result.instance,
                    "LC",
                    1,
                    f"{result.lc.settled_mean:,.0f}",
                    f"{result.lc.time_mean * 1000:.1f}",
                    "—",
                ]
            )
    return format_table(headers, rows)


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Table 2: station-to-station with distance-table pruning."""
    headers = [
        "instance",
        "selection",
        "|S_trans|",
        "prepro [s]",
        "space [MiB]",
        "settled conns",
        "time [ms]",
        "spd-up",
    ]
    formatted = [
        [
            row.instance,
            row.selection,
            row.num_transfer,
            f"{row.prepro_seconds:.1f}",
            f"{row.table_mib:.2f}",
            f"{row.settled_mean:,.0f}",
            f"{row.time_mean * 1000:.1f}",
            f"{row.speedup:.1f}",
        ]
        for row in rows
    ]
    return format_table(headers, formatted)
