"""Finding model shared by every lint rule.

A :class:`Finding` is one rule violation anchored to ``file:line``.
Findings carry a *symbol* — a rule-chosen stable identifier (function
name, attribute, metric name …) — so that :meth:`Finding.fingerprint`
stays line-independent: a committed baseline keeps matching after
unrelated edits shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line``.

    ``symbol`` identifies *what* is in violation independent of where
    it currently sits in the file (used for baseline fingerprints);
    ``message`` is the human-readable explanation.
    """

    path: str
    line: int
    rule: str
    symbol: str = ""
    message: str = ""

    def fingerprint(self) -> str:
        """Line-independent identity used by the committed baseline."""
        return f"{self.rule}::{self.path}::{self.symbol}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
