"""Committed-baseline support.

A baseline is a JSON file of finding fingerprints that are *accepted*:
``repro lint`` exits 0 when every current finding is baselined, and
reports baseline entries that no longer fire (stale entries should be
deleted, keeping the accepted debt honest).  Fingerprints are
line-independent (:meth:`Finding.fingerprint`), so unrelated edits do
not churn the file.

This repo's policy (docs/ANALYSIS.md) is an **empty** baseline — true
positives get fixed, deliberate exceptions get an inline
``# lint: disable=RULE — reason`` — but the mechanism exists so a
future large-scale rule rollout can land incrementally.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint.model import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """A baseline file that is unreadable or structurally invalid."""


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints accepted by the baseline at ``path``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path} must be "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}'
        )
    fingerprints = set()
    for entry in payload["findings"]:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
            fingerprints.add(entry["fingerprint"])
        else:
            raise BaselineError(
                f"baseline {path}: each finding must be a fingerprint string "
                f"or an object with a 'fingerprint' key, got {entry!r}"
            )
    return fingerprints


def write_baseline(findings: list[Finding], path: str | Path) -> None:
    """Write ``findings`` as the new accepted baseline (sorted, one
    object per finding so reviews can see what debt was admitted)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint(),
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
            }
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: list[Finding], accepted: set[str]
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Partition into (new, baselined) findings plus the stale
    fingerprints that no longer correspond to any finding."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        fp = finding.fingerprint()
        if fp in accepted:
            baselined.append(finding)
            seen.add(fp)
        else:
            new.append(finding)
    return new, baselined, accepted - seen
