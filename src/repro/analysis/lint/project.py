"""Filesystem + AST view of the repository under analysis.

:class:`Project` is the one object rules receive: it resolves paths
relative to a root, parses Python sources once (cached), and walks
configured subtrees.  Everything degrades gracefully — a configured
file that does not exist is skipped (so the same default config runs
over the real repo *and* over the miniature fixture repos in
``tests/analysis/fixtures/``), while a file that exists but does not
parse is surfaced as a :data:`PARSE_ERROR_RULE` finding instead of
crashing the run.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lint.model import Finding

PARSE_ERROR_RULE = "PARSE-ERROR"


class Project:
    """Root directory plus cached source/AST access for lint rules."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        self._sources: dict[str, str | None] = {}
        self._trees: dict[str, ast.Module | None] = {}
        #: Files that failed :func:`ast.parse`, as findings.
        self.parse_failures: list[Finding] = []

    # -- paths ----------------------------------------------------------

    def rel(self, path: str | Path) -> str:
        """Normalise ``path`` to a posix path relative to the root."""
        p = Path(path)
        if p.is_absolute():
            p = p.relative_to(self.root)
        return p.as_posix()

    def exists(self, relpath: str) -> bool:
        return (self.root / relpath).is_file()

    def iter_python(self, prefix: str) -> Iterator[str]:
        """Yield every ``.py`` file under ``prefix`` (sorted, posix,
        relative).  A missing prefix yields nothing."""
        base = self.root / prefix
        if not base.is_dir():
            return
        for path in sorted(base.rglob("*.py")):
            yield path.relative_to(self.root).as_posix()

    # -- content --------------------------------------------------------

    def source(self, relpath: str) -> str | None:
        """File contents, or ``None`` when the file is absent."""
        if relpath not in self._sources:
            full = self.root / relpath
            try:
                self._sources[relpath] = full.read_text(encoding="utf-8")
            except OSError:
                self._sources[relpath] = None
        return self._sources[relpath]

    def lines(self, relpath: str) -> list[str]:
        source = self.source(relpath)
        return source.splitlines() if source is not None else []

    def tree(self, relpath: str) -> ast.Module | None:
        """Parsed AST, or ``None`` when absent or unparsable.  A parse
        failure is recorded once in :attr:`parse_failures`."""
        if relpath not in self._trees:
            source = self.source(relpath)
            if source is None:
                self._trees[relpath] = None
            else:
                try:
                    self._trees[relpath] = ast.parse(source, filename=relpath)
                except SyntaxError as exc:
                    self._trees[relpath] = None
                    self.parse_failures.append(
                        Finding(
                            path=relpath,
                            line=exc.lineno or 1,
                            rule=PARSE_ERROR_RULE,
                            symbol="syntax",
                            message=f"file does not parse: {exc.msg}",
                        )
                    )
        return self._trees[relpath]
