"""The lint engine: run rules over a project, honour suppressions.

An inline suppression is a comment on the finding line (or the line
directly above it) of the form::

    # lint: disable=RULE-NAME — short justification
    # lint: disable=RULE-A,RULE-B

Suppressions are the per-finding escape hatch for *deliberate*
exceptions (e.g. a lock-free read that is safe because it happens on
the owning event loop); the justification travels with the code, so
``repro lint`` stays exit-0 without a baseline entry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import Rule, get_rules

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-, ]+)")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)


def suppressed_rules_at(project: Project, path: str, line: int) -> set[str]:
    """Rule names disabled at ``path:line`` by an inline comment on
    that line or the line above."""
    lines = project.lines(path)
    disabled: set[str] = set()
    for lineno in (line, line - 1):
        if 1 <= lineno <= len(lines):
            match = _SUPPRESS_RE.search(lines[lineno - 1])
            if match:
                disabled.update(
                    name.strip() for name in match.group(1).split(",") if name.strip()
                )
    return disabled


def run_lint(
    project: Project,
    config: LintConfig | None = None,
    rule_names: list[str] | None = None,
) -> LintReport:
    """Run the (selected) rules and return sorted, suppression-filtered
    findings.  Parse failures surface as PARSE-ERROR findings so a
    broken file cannot silently disable the rules that would have
    inspected it."""
    from repro.analysis.lint.config import default_config

    config = config or default_config()
    rules: list[Rule] = get_rules(rule_names)
    report = LintReport(rules_run=[rule.NAME for rule in rules])
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.run(project, config))
    raw.extend(project.parse_failures)
    for finding in sorted(set(raw)):
        if finding.rule in suppressed_rules_at(project, finding.path, finding.line):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
