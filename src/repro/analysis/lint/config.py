"""Per-rule configuration, with defaults bound to this repository.

Every rule reads its knobs from :class:`LintConfig`, so the same rule
implementations run unchanged over the real repo, over the miniature
violation/near-miss fixture repos in ``tests/analysis/fixtures/``, and
over any future layout — only the config differs.  Paths that do not
exist under the analysed root are silently skipped by the rules, which
is what lets :func:`default_config` double as the fixture config.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Fully-qualified callables that block the thread they run on.  The
#: ASYNC-BLOCK rule resolves import aliases before matching, so
#: ``from time import sleep as nap; nap()`` is still caught.
DEFAULT_BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "open",
    }
)


@dataclass(frozen=True)
class AsyncBlockConfig:
    """ASYNC-BLOCK: subtrees whose ``async def`` bodies (and the sync
    helpers they call) must not invoke blocking calls."""

    roots: tuple[str, ...] = (
        "src/repro/server",
        "src/repro/fleet",
        "src/repro/streams",
    )
    blocking_calls: frozenset[str] = DEFAULT_BLOCKING_CALLS


@dataclass(frozen=True)
class LockGuardConfig:
    """LOCK-GUARD: subtrees scanned for ``# guarded-by: <lock>``
    annotations and the accesses they constrain.  Guard scope is the
    annotating module: an attribute annotated in ``cache.py`` is
    checked throughout ``cache.py`` only."""

    roots: tuple[str, ...] = (
        "src/repro/service",
        "src/repro/server",
        "src/repro/fleet",
        "src/repro/streams",
    )


@dataclass(frozen=True)
class DictPair:
    """One encoder/decoder pair whose dict keys must agree exactly,
    modulo the ``envelope`` keys (version/kind markers the decoder
    never surfaces)."""

    encoder_path: str
    encoder_func: str
    decoder_path: str
    decoder_func: str
    envelope: frozenset[str] = frozenset()


@dataclass(frozen=True)
class RequestPair:
    """One request renderer whose produced keys must be a subset of
    the allowed-field constants the server validates against."""

    renderer_path: str
    renderer_func: str
    schema_path: str
    schema_consts: tuple[str, ...]


@dataclass(frozen=True)
class WireParityConfig:
    """WIRE-PARITY: the response encoder/decoder pairs and request
    renderer/validator pairs that define the wire schema."""

    dict_pairs: tuple[DictPair, ...] = ()
    request_pairs: tuple[RequestPair, ...] = ()


@dataclass(frozen=True)
class MetricDocPair:
    """One doc file whose marked metric catalog must mirror the
    ``snapshot()`` keys of the listed metrics modules."""

    doc_path: str
    module_paths: tuple[str, ...]


@dataclass(frozen=True)
class MetricDriftConfig:
    """METRIC-DRIFT: docs↔code metric-name parity.

    Only names inside ``<!-- lint:metrics -->`` … ``<!-- /lint:metrics -->``
    regions are treated as the doc-side catalog; prose elsewhere can
    mention response fields freely without tripping the rule.
    """

    pairs: tuple[MetricDocPair, ...] = ()
    #: Suffixes that make an identifier a metric name.
    suffixes: tuple[str, ...] = (
        "_total",
        "_seconds",
        "_ms",
        "_ms_le",
        "_count",
        "_rate",
        "_size",
        "_by_endpoint",
    )
    #: Exact names with no conventional suffix.
    exact_names: frozenset[str] = frozenset({"inflight"})


@dataclass(frozen=True)
class ExportSanityConfig:
    """EXPORT-SANITY: subtrees whose ``__all__`` declarations are
    checked for unbound names, duplicates, and missed public defs."""

    roots: tuple[str, ...] = ("src",)


@dataclass(frozen=True)
class LintConfig:
    """The full per-rule configuration handed to every rule."""

    async_block: AsyncBlockConfig = field(default_factory=AsyncBlockConfig)
    lock_guard: LockGuardConfig = field(default_factory=LockGuardConfig)
    wire_parity: WireParityConfig = field(default_factory=WireParityConfig)
    metric_drift: MetricDriftConfig = field(default_factory=MetricDriftConfig)
    export_sanity: ExportSanityConfig = field(
        default_factory=ExportSanityConfig
    )


def default_config() -> LintConfig:
    """The configuration for *this* repository: every encoder/decoder
    pair of the HTTP wire schema, both metric catalogs, and the
    concurrency-sensitive subtrees."""
    envelope_vk = frozenset({"v", "kind"})
    protocol = "src/repro/server/protocol.py"
    results = "src/repro/client/results.py"
    wire = WireParityConfig(
        dict_pairs=(
            DictPair(protocol, "encode_query_stats", results, "decode_query_stats"),
            DictPair(protocol, "encode_batch_stats", results, "decode_batch_stats"),
            DictPair(protocol, "encode_journey", results, "decode_journey", envelope_vk),
            DictPair(protocol, "encode_profile", results, "decode_profile", envelope_vk),
            DictPair(protocol, "encode_batch", results, "decode_batch", envelope_vk),
            DictPair(
                protocol, "encode_multicriteria",
                results, "decode_multicriteria", envelope_vk,
            ),
            DictPair(protocol, "encode_via", results, "decode_via", envelope_vk),
            DictPair(
                protocol, "encode_min_transfers",
                results, "decode_min_transfers", envelope_vk,
            ),
            DictPair(
                "src/repro/server/registry.py", "describe", results, "decode_info"
            ),
            DictPair(
                "src/repro/server/app.py",
                "_swap_apply",
                results,
                "decode_delay_update",
                frozenset({"v", "mode"}),
            ),
        ),
        request_pairs=(
            RequestPair(
                "src/repro/client/wire.py", "profile_body",
                protocol, ("_PROFILE_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "journey_body",
                protocol, ("_JOURNEY_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "batch_body",
                protocol, ("_BATCH_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "multicriteria_body",
                protocol, ("_MULTICRITERIA_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "via_body",
                protocol, ("_VIA_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "min_transfers_body",
                protocol, ("_MIN_TRANSFERS_FIELDS",),
            ),
            RequestPair(
                "src/repro/client/wire.py", "delays_body",
                protocol, ("_DELAY_FIELDS", "_DELAY_ITEM_FIELDS"),
            ),
        ),
    )
    metrics = MetricDriftConfig(
        pairs=(
            MetricDocPair("docs/SERVER.md", ("src/repro/server/metrics.py",)),
            MetricDocPair("docs/FLEET.md", ("src/repro/fleet/metrics.py",)),
            MetricDocPair("docs/STREAMS.md", ("src/repro/streams/metrics.py",)),
        )
    )
    return LintConfig(wire_parity=wire, metric_drift=metrics)
