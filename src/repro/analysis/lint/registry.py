"""Rule registry: name → rule class.

Rules self-register at import time via :func:`register`; the CLI and
engine resolve them by name through :func:`get_rules`.  A rule is any
class with ``NAME``/``DESCRIPTION`` class attributes and a
``run(project, config) -> list[Finding]`` method — the registry keeps
the framework open for repo-specific additions without touching the
engine.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Type

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project


class Rule(Protocol):
    """Structural interface every lint rule satisfies."""

    NAME: str
    DESCRIPTION: str

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        ...


_RULES: dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Class decorator adding ``cls`` to the registry (keyed by its
    ``NAME``).  Re-registering a name is a programming error."""
    name = cls.NAME
    if name in _RULES and _RULES[name] is not cls:
        raise ValueError(f"lint rule {name!r} is already registered")
    _RULES[name] = cls
    return cls


def rule_names() -> list[str]:
    _ensure_builtin_rules()
    return sorted(_RULES)


def get_rules(names: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the named rules (all registered rules when
    ``names`` is ``None``).  Unknown names raise ``KeyError`` with the
    known set in the message."""
    _ensure_builtin_rules()
    if names is None:
        selected = sorted(_RULES)
    else:
        selected = list(names)
    rules = []
    for name in selected:
        if name not in _RULES:
            raise KeyError(
                f"unknown lint rule {name!r} (known: {', '.join(sorted(_RULES))})"
            )
        rules.append(_RULES[name]())
    return rules


def describe_rules() -> list[tuple[str, str]]:
    """(name, description) for every registered rule, sorted."""
    _ensure_builtin_rules()
    return [(name, _RULES[name].DESCRIPTION) for name in sorted(_RULES)]


def _ensure_builtin_rules() -> None:
    """Import the built-in rule modules so their ``@register``
    decorators have run (idempotent)."""
    from repro.analysis.lint import rules  # noqa: F401
