"""repro.analysis.lint — repo-aware static analysis (``repro lint``).

An AST-based framework with a rule registry, per-rule configuration,
``file:line`` findings with line-independent fingerprints, inline
suppressions, and committed-baseline support.  The five built-in rules
(ASYNC-BLOCK, LOCK-GUARD, WIRE-PARITY, METRIC-DRIFT, EXPORT-SANITY)
machine-check the concurrency and wire-schema invariants the runtime
modules state informally — see docs/ANALYSIS.md for the catalog.

Programmatic use::

    from repro.analysis.lint import Project, default_config, run_lint
    report = run_lint(Project("."), default_config())
    for finding in report.findings:
        print(finding.render())
"""

from repro.analysis.lint.baseline import (
    BaselineError,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.lint.config import LintConfig, default_config
from repro.analysis.lint.engine import LintReport, run_lint
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import describe_rules, get_rules, rule_names

__all__ = [
    "BaselineError",
    "Finding",
    "LintConfig",
    "LintReport",
    "Project",
    "default_config",
    "describe_rules",
    "get_rules",
    "load_baseline",
    "rule_names",
    "run_lint",
    "split_by_baseline",
    "write_baseline",
]
