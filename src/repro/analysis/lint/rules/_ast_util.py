"""Small AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → fully-qualified name, from every import statement.

    ``import subprocess as sp`` → ``{"sp": "subprocess"}``;
    ``from time import sleep as nap`` → ``{"nap": "time.sleep"}``.
    Relative imports keep their bare module path (good enough for
    matching the stdlib blocking set, which is always absolute).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Fully-qualified name of the callee, import aliases applied.

    A dotted callee whose head is *not* an import of this module
    resolves to ``None``: ``requests.get(...)`` on a local dict named
    ``requests`` must not match the ``requests`` HTTP library.  Bare
    names pass through (builtins like ``open``, from-imports resolve
    via the alias map)."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in aliases:
        resolved = aliases[head]
        return f"{resolved}.{rest}" if rest else resolved
    return None if rest else name


def iter_direct_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Calls lexically inside ``func``'s own body — nested ``def``s,
    ``async def``s and ``lambda``s are *not* descended into, so a bare
    callable handed to ``run_in_executor`` never counts as a call made
    by the enclosing coroutine."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def module_functions(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method in the module, keyed by bare name (last
    definition wins — rules use this for conservative name-based call
    resolution within one module)."""
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
    return functions


def find_function(
    tree: ast.Module, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """First function or method named ``name`` anywhere in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def literal_dict_keys(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, int]:
    """String keys produced by ``func``: dict-literal keys, ``dict(k=…)``
    keywords, and ``obj["k"] = …`` subscript assignments — each mapped
    to the line it first appears on."""
    keys: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "dict":
                for kw in node.keywords:
                    if kw.arg is not None:
                        keys.setdefault(kw.arg, node.lineno)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.setdefault(target.slice.value, target.lineno)
    return keys


def read_dict_keys(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, int]:
    """String keys ``func`` reads: ``obj["k"]`` subscript loads and
    ``obj.get("k", …)`` calls, mapped to first line of use."""
    keys: dict[str, int] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.setdefault(node.slice.value, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node.lineno)
    return keys


def set_constant(tree: ast.Module, name: str) -> tuple[set[str], int] | None:
    """Value of a module-level ``NAME = {"a", "b"}`` / ``frozenset({…})``
    string-set constant, plus its line — ``None`` if absent or not a
    literal string set."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) == 1
        ):
            value = value.args[0]
        if isinstance(value, ast.Set):
            items = set()
            for elt in value.elts:
                if not (
                    isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ):
                    return None
                items.add(elt.value)
            return items, node.lineno
    return None
