"""METRIC-DRIFT — docs and ``snapshot()`` payloads name the same metrics.

The doc-side catalog is *marked*: only backticked identifiers between
``<!-- lint:metrics -->`` and ``<!-- /lint:metrics -->`` count, so the
rest of the document can mention response fields (``swap_seconds``,
``pause_seconds`` …) without tripping the rule.  The code side is every
string key of a dict literal inside any function named ``snapshot`` in
the configured metrics modules, filtered to metric-shaped names
(``*_total``, ``*_seconds``, ``*_ms``, ``inflight``, …).

Both directions are violations: an undocumented metric rots the
operator docs, a documented-but-gone metric breaks dashboards.  A doc
configured for an existing metrics module that lacks the marker region
entirely is itself a finding — otherwise deleting the markers would
disable the rule silently.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.config import LintConfig, MetricDriftConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules._ast_util import literal_dict_keys

_REGION_OPEN = "<!-- lint:metrics -->"
_REGION_CLOSE = "<!-- /lint:metrics -->"
_BACKTICKED = re.compile(r"`([a-z][a-z0-9_]*)`")


@register
class MetricDriftRule:
    NAME = "METRIC-DRIFT"
    DESCRIPTION = (
        "Every metric in the docs' marked catalog exists in the metrics "
        "modules' snapshot() payloads, and vice versa."
    )

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for pair in config.metric_drift.pairs:
            findings.extend(self._check_pair(project, pair, config.metric_drift))
        return findings

    def _check_pair(
        self, project: Project, pair, cfg: MetricDriftConfig
    ) -> list[Finding]:
        code: dict[str, tuple[str, int]] = {}
        any_module = False
        for module_path in pair.module_paths:
            tree = project.tree(module_path)
            if tree is None:
                continue
            any_module = True
            for node in ast.walk(tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "snapshot"
                ):
                    for key, lineno in literal_dict_keys(node).items():
                        if _is_metric(key, cfg):
                            code.setdefault(key, (module_path, lineno))
        if not any_module or not project.exists(pair.doc_path):
            return []

        doc_lines = project.lines(pair.doc_path)
        documented, region_found = _documented_metrics(doc_lines, cfg)
        if not region_found:
            return [
                Finding(
                    path=pair.doc_path,
                    line=1,
                    rule=self.NAME,
                    symbol="missing-marker",
                    message=(
                        f"{pair.doc_path} documents a metrics module but has "
                        f"no `{_REGION_OPEN}` … `{_REGION_CLOSE}` catalog "
                        f"region (see docs/ANALYSIS.md)"
                    ),
                )
            ]

        findings: list[Finding] = []
        for name in sorted(set(code) - set(documented)):
            module_path, lineno = code[name]
            findings.append(
                Finding(
                    path=module_path,
                    line=lineno,
                    rule=self.NAME,
                    symbol=f"{name}:undocumented",
                    message=(
                        f"metric `{name}` is exported by snapshot() but "
                        f"missing from the catalog in {pair.doc_path}"
                    ),
                )
            )
        for name in sorted(set(documented) - set(code)):
            findings.append(
                Finding(
                    path=pair.doc_path,
                    line=documented[name],
                    rule=self.NAME,
                    symbol=f"{name}:unknown",
                    message=(
                        f"{pair.doc_path} documents metric `{name}` which no "
                        f"snapshot() in "
                        f"{', '.join(pair.module_paths)} produces"
                    ),
                )
            )
        return findings


def _is_metric(name: str, cfg: MetricDriftConfig) -> bool:
    if name in cfg.exact_names:
        return True
    return any(name.endswith(suffix) for suffix in cfg.suffixes)


def _documented_metrics(
    lines: list[str], cfg: MetricDriftConfig
) -> tuple[dict[str, int], bool]:
    documented: dict[str, int] = {}
    in_region = False
    region_found = False
    for lineno, text in enumerate(lines, start=1):
        if _REGION_OPEN in text:
            in_region = True
            region_found = True
            continue
        if _REGION_CLOSE in text:
            in_region = False
            continue
        if in_region:
            for name in _BACKTICKED.findall(text):
                if _is_metric(name, cfg):
                    documented.setdefault(name, lineno)
    return documented, region_found
