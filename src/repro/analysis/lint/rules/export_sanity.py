"""EXPORT-SANITY — ``__all__`` tells the truth.

For every module that declares a literal ``__all__``:

* every listed name must be bound at module top level (a typo'd or
  since-deleted export raises ``AttributeError`` only at
  ``from m import *`` time — lint catches it statically);
* duplicates are flagged;
* every *public* top-level ``def``/``class`` (no leading underscore)
  must be listed — a module that declares an export surface commits to
  keeping it complete.  Imported names and plain assignments are
  exempt from the coverage check (re-export modules list them
  explicitly when intended).

Modules without ``__all__`` or with a computed one are skipped, as are
modules using ``from x import *`` (bindings unknowable statically).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import register


@register
class ExportSanityRule:
    NAME = "EXPORT-SANITY"
    DESCRIPTION = (
        "__all__ entries are bound at top level, duplicate-free, and "
        "cover every public top-level def/class."
    )

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for root in config.export_sanity.roots:
            for relpath in project.iter_python(root):
                findings.extend(self._check_module(project, relpath))
        return findings

    def _check_module(self, project: Project, relpath: str) -> list[Finding]:
        tree = project.tree(relpath)
        if tree is None:
            return []
        declared = _literal_all(tree)
        if declared is None:
            return []
        names, all_lineno = declared
        bound, defs, has_star = _top_level_bindings(tree)

        findings: list[Finding] = []
        seen: set[str] = set()
        for name in names:
            if name in seen:
                findings.append(
                    Finding(
                        path=relpath,
                        line=all_lineno,
                        rule=self.NAME,
                        symbol=f"{name}:duplicate",
                        message=f"__all__ lists {name!r} more than once",
                    )
                )
            seen.add(name)
            if not has_star and name not in bound:
                findings.append(
                    Finding(
                        path=relpath,
                        line=all_lineno,
                        rule=self.NAME,
                        symbol=f"{name}:unbound",
                        message=(
                            f"__all__ exports {name!r} but the module never "
                            f"binds it — `from {_module_of(relpath)} import *` "
                            f"would raise AttributeError"
                        ),
                    )
                )
        for name, lineno in defs.items():
            if not name.startswith("_") and name not in seen:
                findings.append(
                    Finding(
                        path=relpath,
                        line=lineno,
                        rule=self.NAME,
                        symbol=f"{name}:uncovered",
                        message=(
                            f"public top-level `{name}` is missing from "
                            f"__all__ (add it, or prefix it with `_`)"
                        ),
                    )
                )
        return findings


def _module_of(relpath: str) -> str:
    parts = relpath.removesuffix(".py").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _literal_all(tree: ast.Module) -> tuple[list[str], int] | None:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None  # computed __all__ — not statically checkable
        names: list[str] = []
        for elt in node.value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.append(elt.value)
        return names, node.lineno
    return None


def _top_level_bindings(
    tree: ast.Module,
) -> tuple[set[str], dict[str, int], bool]:
    """(all bound names, public-coverage-relevant defs/classes with
    their lines, saw-import-star).  Descends into top-level ``if``/
    ``try`` blocks (version/optional-dependency guards)."""
    bound: set[str] = set()
    defs: dict[str, int] = {}
    has_star = False

    def scan(body) -> None:
        nonlocal has_star
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
                defs.setdefault(node.name, node.lineno)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                scan(node.body)
                scan(node.orelse)
            elif isinstance(node, ast.Try):
                scan(node.body)
                for handler in node.handlers:
                    scan(handler.body)
                scan(node.orelse)
                scan(node.finalbody)

    scan(tree.body)
    return bound, defs, has_star
