"""ASYNC-BLOCK — no blocking calls reachable from ``async def``.

The server and fleet run on a single event loop; one ``time.sleep`` or
``subprocess.run`` on that loop stalls every in-flight request.  This
rule resolves import aliases, then walks a conservative *module-local
call graph*: a coroutine is flagged both for blocking calls in its own
body and for blocking calls in any sync helper it (transitively)
invokes from the loop.

Only ``Call`` nodes create edges/findings, so the sanctioned escape
hatch — handing a bare callable or ``lambda`` to
``loop.run_in_executor(...)`` — is naturally exempt: the blocking call
happens on a worker thread, and neither a bare reference nor a lambda
body is a call made *by* the coroutine.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules._ast_util import (
    import_aliases,
    iter_direct_calls,
    module_functions,
    resolve_call_target,
)


@register
class AsyncBlockRule:
    NAME = "ASYNC-BLOCK"
    DESCRIPTION = (
        "No time.sleep/subprocess/blocking-socket calls reachable from "
        "async def bodies in the event-loop subtrees (server/, fleet/)."
    )

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        cfg = config.async_block
        for root in cfg.roots:
            for relpath in project.iter_python(root):
                findings.extend(self._check_module(project, relpath, cfg))
        return findings

    def _check_module(self, project, relpath, cfg) -> list[Finding]:
        tree = project.tree(relpath)
        if tree is None:
            return []
        aliases = import_aliases(tree)
        functions = module_functions(tree)

        # Per function: the blocking calls it makes directly, and the
        # module-local functions it calls by name.
        blocking: dict[str, list[tuple[int, str]]] = {}
        callees: dict[str, set[str]] = {}
        for name, func in functions.items():
            blocking[name] = []
            callees[name] = set()
            for call in iter_direct_calls(func):
                target = resolve_call_target(call, aliases)
                if target in cfg.blocking_calls:
                    blocking[name].append((call.lineno, target))
                local = self._local_callee(call, functions)
                if local is not None:
                    callees[name].add(local)

        findings: list[Finding] = []
        for name, func in functions.items():
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for reached in self._reachable(name, callees):
                for lineno, target in blocking[reached]:
                    via = "" if reached == name else f" (via `{reached}`)"
                    findings.append(
                        Finding(
                            path=relpath,
                            line=lineno,
                            rule=self.NAME,
                            symbol=f"{name}->{target}@{reached}",
                            message=(
                                f"blocking call `{target}` is reachable from "
                                f"`async def {name}`{via}; move it behind "
                                f"run_in_executor or use the asyncio equivalent"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _local_callee(call: ast.Call, functions: dict) -> str | None:
        """Name of the module-local function/method this call resolves
        to (conservative: by bare name; ``self.f(...)``/``cls.f(...)``
        count, arbitrary-object methods do not)."""
        func = call.func
        if isinstance(func, ast.Name) and func.id in functions:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and func.attr in functions
        ):
            return func.attr
        return None

    @staticmethod
    def _reachable(start: str, callees: dict[str, set[str]]) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            for nxt in callees.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen
