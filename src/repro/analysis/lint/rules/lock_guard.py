"""LOCK-GUARD — annotated attributes only touched under their lock.

The convention (docs/ANALYSIS.md) is one trailing comment on the
attribute's initialising assignment::

    self._entries: OrderedDict[...] = OrderedDict()  # guarded-by: _lock
    self.requests_total = 0  # guarded-by: loop

Every later access ``recv.<attr>`` in the *same module* must then sit
inside ``with recv.<lock>:`` / ``async with recv.<lock>:`` — receiver
names must match, so ``entry._prepared`` needs ``entry._swap_lock``
held, not some other entry's lock.  The function containing the
annotation (usually ``__init__``) is exempt: construction happens
before the object is shared.

The pseudo-lock ``loop`` declares *event-loop confinement* instead of
a mutex: accesses are fine anywhere in straight-line code (the loop
serialises them) but must not be captured into a nested ``def`` or
``lambda`` — deferred callables may run on executor threads.

Guard scope is deliberately the annotating module; cross-module
accesses (e.g. the fleet swap coordinator poking gateway internals)
are covered by annotating the accessor module or by review.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules._ast_util import dotted_name

_ANNOTATION_RE = re.compile(
    r"self\.(\w+)\s*(?::[^=#]*)?=.*#\s*guarded-by:\s*([A-Za-z_]\w*)"
)

LOOP_GUARD = "loop"


@register
class LockGuardRule:
    NAME = "LOCK-GUARD"
    DESCRIPTION = (
        "Attributes annotated `# guarded-by: <lock>` are only accessed "
        "with that lock held on the same receiver (or, for `loop`, "
        "never from a deferred callable)."
    )

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for root in config.lock_guard.roots:
            for relpath in project.iter_python(root):
                findings.extend(self._check_module(project, relpath))
        return findings

    def _check_module(self, project: Project, relpath: str) -> list[Finding]:
        tree = project.tree(relpath)
        if tree is None:
            return []
        guards: dict[str, tuple[str, int]] = {}
        for lineno, text in enumerate(project.lines(relpath), start=1):
            match = _ANNOTATION_RE.search(text)
            if match:
                guards[match.group(1)] = (match.group(2), lineno)
        if not guards:
            return []
        declaring = {
            attr: _enclosing_function(tree, lineno)
            for attr, (_, lineno) in guards.items()
        }
        checker = _AccessChecker(relpath, guards, declaring, self.NAME)
        checker.visit_body(tree.body, held=frozenset(), funcs=(), deferred=0)
        return checker.findings


def _enclosing_function(tree: ast.Module, lineno: int):
    """Innermost function whose span contains ``lineno``."""
    best = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = node.end_lineno or node.lineno
            if node.lineno <= lineno <= end:
                if best is None or node.lineno > best.lineno:
                    best = node
    return best


class _AccessChecker:
    """Recursive walk tracking held locks, the function stack, and
    deferred-callable nesting."""

    def __init__(self, path, guards, declaring, rule_name):
        self.path = path
        self.guards = guards
        self.declaring = declaring
        self.rule_name = rule_name
        self.findings: list[Finding] = []

    def visit_body(self, body, *, held, funcs, deferred):
        for node in body:
            self._visit(node, held=held, funcs=funcs, deferred=deferred)

    def _visit(self, node, *, held, funcs, deferred):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = deferred + 1 if funcs else deferred
            self.visit_body(
                node.body, held=held, funcs=funcs + (node,), deferred=nested
            )
            return
        if isinstance(node, ast.Lambda):
            self._visit(node.body, held=held, funcs=funcs, deferred=deferred + 1)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                name = dotted_name(item.context_expr)
                if name:
                    acquired.add(name)
                self._visit(
                    item.context_expr, held=held, funcs=funcs, deferred=deferred
                )
            self.visit_body(
                node.body, held=frozenset(acquired), funcs=funcs, deferred=deferred
            )
            return
        if isinstance(node, ast.Attribute):
            self._check_access(node, held=held, funcs=funcs, deferred=deferred)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held=held, funcs=funcs, deferred=deferred)

    def _check_access(self, node: ast.Attribute, *, held, funcs, deferred):
        if node.attr not in self.guards or not isinstance(node.value, ast.Name):
            return
        receiver = node.value.id
        lock, _ = self.guards[node.attr]
        current = funcs[-1] if funcs else None
        if current is not None and current is self.declaring.get(node.attr):
            return  # construction in the declaring method is exempt
        func_name = current.name if current is not None else "<module>"
        if lock == LOOP_GUARD:
            if deferred > 0:
                self.findings.append(
                    Finding(
                        path=self.path,
                        line=node.lineno,
                        rule=self.rule_name,
                        symbol=f"{node.attr}@{func_name}",
                        message=(
                            f"`{receiver}.{node.attr}` is loop-confined "
                            f"(guarded-by: loop) but is captured in a nested "
                            f"callable that may run off the event loop"
                        ),
                    )
                )
            return
        if f"{receiver}.{lock}" not in held:
            self.findings.append(
                Finding(
                    path=self.path,
                    line=node.lineno,
                    rule=self.rule_name,
                    symbol=f"{node.attr}@{func_name}",
                    message=(
                        f"`{receiver}.{node.attr}` is guarded by "
                        f"`{receiver}.{lock}` but is accessed in "
                        f"`{func_name}` without holding it"
                    ),
                )
            )
