"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.lint.registry`; the engine triggers that import
lazily, so adding a rule module here (plus its import below) is the
whole integration.
"""

from repro.analysis.lint.rules import (  # noqa: F401
    async_block,
    export_sanity,
    lock_guard,
    metric_drift,
    wire_parity,
)

__all__ = [
    "async_block",
    "export_sanity",
    "lock_guard",
    "metric_drift",
    "wire_parity",
]
