"""WIRE-PARITY — the HTTP wire schema cannot silently drift.

Two pair kinds, both configured in :mod:`..config`:

* **Response pairs** (:class:`~repro.analysis.lint.config.DictPair`):
  the string keys a server-side encoder *produces* (dict literals,
  ``dict(k=…)``, ``body["k"] = …``) must exactly match the keys the
  client-side decoder *reads* (``payload["k"]``, ``payload.get("k")``),
  modulo the declared envelope keys (``v``/``kind`` markers the
  decoder validates elsewhere or ignores).

* **Request pairs** (:class:`~repro.analysis.lint.config.RequestPair`):
  every key a client request renderer produces must be in the server's
  allowed-field frozenset constants, so a renamed request field fails
  lint before it 400s in production.

A pair whose file or function is absent under the analysed root is
skipped — the same default config therefore runs over the real repo
and over the miniature fixture repos.
"""

from __future__ import annotations

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.model import Finding
from repro.analysis.lint.project import Project
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules._ast_util import (
    find_function,
    literal_dict_keys,
    read_dict_keys,
    set_constant,
)


@register
class WireParityRule:
    NAME = "WIRE-PARITY"
    DESCRIPTION = (
        "Field-name parity between server protocol encoders and client "
        "decoders, and client request bodies vs server allowed-field sets."
    )

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for pair in config.wire_parity.dict_pairs:
            findings.extend(self._check_dict_pair(project, pair))
        for pair in config.wire_parity.request_pairs:
            findings.extend(self._check_request_pair(project, pair))
        return findings

    def _function(self, project: Project, path: str, name: str):
        tree = project.tree(path)
        if tree is None:
            return None
        return find_function(tree, name)

    def _check_dict_pair(self, project: Project, pair) -> list[Finding]:
        encoder = self._function(project, pair.encoder_path, pair.encoder_func)
        decoder = self._function(project, pair.decoder_path, pair.decoder_func)
        if encoder is None or decoder is None:
            return []
        produced = literal_dict_keys(encoder)
        consumed = read_dict_keys(decoder)
        findings: list[Finding] = []
        pair_id = f"{pair.encoder_func}<->{pair.decoder_func}"
        for key in sorted(set(produced) - set(consumed) - pair.envelope):
            findings.append(
                Finding(
                    path=pair.encoder_path,
                    line=produced[key],
                    rule=self.NAME,
                    symbol=f"{pair_id}:{key}:unread",
                    message=(
                        f"`{pair.encoder_func}` produces field {key!r} but "
                        f"`{pair.decoder_func}` "
                        f"({pair.decoder_path}) never reads it"
                    ),
                )
            )
        for key in sorted(set(consumed) - set(produced) - pair.envelope):
            findings.append(
                Finding(
                    path=pair.decoder_path,
                    line=consumed[key],
                    rule=self.NAME,
                    symbol=f"{pair_id}:{key}:unproduced",
                    message=(
                        f"`{pair.decoder_func}` reads field {key!r} but "
                        f"`{pair.encoder_func}` "
                        f"({pair.encoder_path}) never produces it"
                    ),
                )
            )
        return findings

    def _check_request_pair(self, project: Project, pair) -> list[Finding]:
        renderer = self._function(
            project, pair.renderer_path, pair.renderer_func
        )
        schema_tree = project.tree(pair.schema_path)
        if renderer is None or schema_tree is None:
            return []
        allowed: set[str] = set()
        resolved_any = False
        for const in pair.schema_consts:
            value = set_constant(schema_tree, const)
            if value is not None:
                allowed |= value[0]
                resolved_any = True
        if not resolved_any:
            return []
        produced = literal_dict_keys(renderer)
        findings: list[Finding] = []
        for key in sorted(set(produced) - allowed):
            findings.append(
                Finding(
                    path=pair.renderer_path,
                    line=produced[key],
                    rule=self.NAME,
                    symbol=f"{pair.renderer_func}:{key}:rejected",
                    message=(
                        f"`{pair.renderer_func}` sends field {key!r} which is "
                        f"not in {'/'.join(pair.schema_consts)} "
                        f"({pair.schema_path}) — the server would 400"
                    ),
                )
            )
        return findings
