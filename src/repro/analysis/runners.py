"""Experiment runners for the paper's evaluation artifacts (§5).

All measured query paths run through the
:class:`~repro.service.TransitService` facade — one prepared dataset
per configuration, queried many times — so the numbers reported here
are the numbers the production entry point produces.  Work and time
accounting follow the paper:

* *Settled Conns* — queue extractions, summed over all cores; for LC,
  the summed sizes of the function labels taken from the queue.
* *Time* — for parallel runs, the **simulated-cores** wall clock
  ``max_t(thread time) + merge time`` (DESIGN.md §3 documents why this
  substitutes the paper's 8-core Xeon measurements); for LC, plain
  wall clock.
* *Speed-up* — time of the 1-core run over the p-core run (Table 1) or
  of the no-table run over the table-pruned run (Table 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import fmean

from repro.baselines.label_correcting import label_correcting_profile
from repro.graph.td_model import TDGraph, build_td_graph
from repro.service import ProfileRequest, ServiceConfig, TransitService
from repro.synthetic.instances import make_instance
from repro.synthetic.workloads import random_sources, random_station_pairs


@dataclass(slots=True)
class OneToAllCell:
    """One (instance, p) cell of Table 1."""

    instance: str
    num_cores: int
    settled_mean: float
    time_mean: float  # seconds, simulated-cores
    speedup: float  # over the 1-core run


@dataclass(slots=True)
class LCCell:
    """The label-correcting comparator row of Table 1."""

    instance: str
    settled_mean: float
    time_mean: float  # seconds


@dataclass(slots=True)
class Table1Result:
    instance: str
    cells: list[OneToAllCell]
    lc: LCCell | None


def _prepare(instance: str, scale: str, seed: int) -> TDGraph:
    return build_td_graph(make_instance(instance, scale, seed))


def run_table1(
    instance: str,
    *,
    scale: str = "small",
    num_queries: int = 5,
    cores: tuple[int, ...] = (1, 2, 4, 8),
    include_lc: bool = True,
    strategy: str = "equal-connections",
    kernel: str = "python",
    seed: int = 0,
    graph: TDGraph | None = None,
) -> Table1Result:
    """One-to-all profile queries, CS on each core count vs LC.

    One :class:`TransitService` is prepared for the instance; the core
    sweep issues :class:`ProfileRequest`\\ s with per-request thread
    overrides against it (prepare once, query many).
    """
    if graph is None:
        graph = _prepare(instance, scale, seed)
    service = TransitService.from_graph(
        graph, ServiceConfig(kernel=kernel, strategy=strategy)
    )
    sources = random_sources(graph.timetable, num_queries, seed=seed + 1)

    cells: list[OneToAllCell] = []
    base_time: float | None = None
    for p in cores:
        settled: list[int] = []
        times: list[float] = []
        for source in sources:
            result = service.profile(ProfileRequest(source, num_threads=p))
            settled.append(result.stats.settled_connections)
            times.append(result.stats.simulated_seconds)
        mean_time = fmean(times)
        if base_time is None:
            base_time = mean_time
        cells.append(
            OneToAllCell(
                instance=instance,
                num_cores=p,
                settled_mean=fmean(settled),
                time_mean=mean_time,
                speedup=base_time / mean_time if mean_time else float("inf"),
            )
        )

    lc_cell: LCCell | None = None
    if include_lc:
        lc_settled: list[int] = []
        lc_times: list[float] = []
        for source in sources:
            t0 = time.perf_counter()
            # Scalar mode: the per-connection-point cost model of the
            # paper's C++ LC (numpy batching would distort the time
            # comparison; see the LC docstring and EXPERIMENTS.md).
            lc = label_correcting_profile(graph, source, vectorized=False)
            lc_times.append(time.perf_counter() - t0)
            lc_settled.append(lc.settled_connections)
        lc_cell = LCCell(
            instance=instance,
            settled_mean=fmean(lc_settled),
            time_mean=fmean(lc_times),
        )

    return Table1Result(instance=instance, cells=cells, lc=lc_cell)


@dataclass(slots=True)
class Table2Row:
    """One row of Table 2: a transfer-station selection for an instance."""

    instance: str
    selection: str  # "0.0%", "5.0%", "deg > 2", ...
    num_transfer: int
    prepro_seconds: float
    table_mib: float
    settled_mean: float
    time_mean: float  # seconds, simulated-cores
    speedup: float  # over the stopping-criterion-only row


def run_table2(
    instance: str,
    *,
    scale: str = "small",
    num_queries: int = 10,
    fractions: tuple[float, ...] = (0.0, 0.01, 0.025, 0.05, 0.10, 0.20, 0.30),
    include_degree_rule: bool = True,
    min_degree: int = 2,
    num_cores: int = 8,
    kernel: str = "python",
    seed: int = 0,
    graph: TDGraph | None = None,
) -> list[Table2Row]:
    """Station-to-station queries with distance-table pruning, sweeping
    the transfer-station fraction (plus the ``deg > k`` rule).

    Each selection is one :class:`TransitService` configuration over
    the same prebuilt graph; preprocessing time and table size come
    from the facade's prepared artifacts."""
    if graph is None:
        graph = _prepare(instance, scale, seed)
    pairs = random_station_pairs(graph.timetable, num_queries, seed=seed + 2)

    selections: list[tuple[str, object]] = [
        (f"{fraction * 100:.1f}%", fraction) for fraction in fractions
    ]
    if include_degree_rule:
        selections.append((f"deg > {min_degree}", "degree"))

    base_config = ServiceConfig(kernel=kernel, num_threads=num_cores)
    rows: list[Table2Row] = []
    base_time: float | None = None
    for label, spec in selections:
        if spec == 0.0:
            config = base_config
        elif spec == "degree":
            config = base_config.with_overrides(
                use_distance_table=True,
                transfer_selection="degree",
                min_degree=min_degree,
            )
        else:
            config = base_config.with_overrides(
                use_distance_table=True,
                transfer_selection="contraction",
                transfer_fraction=float(spec),
            )
        service = TransitService.from_graph(graph, config)
        table = service.table
        num_transfer = service.prepare_stats.num_transfer_stations
        if table is None:
            prepro, mib, num_transfer = 0.0, 0.0, 0
        else:
            prepro, mib = table.build_seconds, table.size_mib()

        settled: list[int] = []
        times: list[float] = []
        for s, t in pairs:
            result = service.journey(s, t)
            settled.append(result.stats.settled_connections)
            times.append(result.stats.simulated_seconds)
        mean_time = fmean(times)
        if base_time is None:
            base_time = mean_time
        rows.append(
            Table2Row(
                instance=instance,
                selection=label,
                num_transfer=num_transfer,
                prepro_seconds=prepro,
                table_mib=mib,
                settled_mean=fmean(settled),
                time_mean=mean_time,
                speedup=base_time / mean_time if mean_time else float("inf"),
            )
        )
    return rows


@dataclass(slots=True)
class ScalabilityPoint:
    instance: str
    num_cores: int
    settled_mean: float
    time_mean: float
    speedup: float
    settled_growth: float  # settled / settled at p=1


def run_scalability_series(
    instance: str,
    *,
    scale: str = "small",
    num_queries: int = 5,
    max_cores: int = 8,
    strategy: str = "equal-connections",
    seed: int = 0,
    graph: TDGraph | None = None,
) -> list[ScalabilityPoint]:
    """The in-text §5.1 series: speed-up and settled-work growth vs p,
    including the rail anomaly (F-scal)."""
    if graph is None:
        graph = _prepare(instance, scale, seed)
    result = run_table1(
        instance,
        scale=scale,
        num_queries=num_queries,
        cores=tuple(range(1, max_cores + 1)),
        include_lc=False,
        strategy=strategy,
        seed=seed,
        graph=graph,
    )
    base_settled = result.cells[0].settled_mean or 1.0
    return [
        ScalabilityPoint(
            instance=instance,
            num_cores=cell.num_cores,
            settled_mean=cell.settled_mean,
            time_mean=cell.time_mean,
            speedup=cell.speedup,
            settled_growth=cell.settled_mean / base_settled,
        )
        for cell in result.cells
    ]
