"""Experiment harness: runners regenerating every table/figure of the
paper's evaluation (§5) plus formatting helpers.

The runners return plain dataclasses so benchmarks, the CLI and the
EXPERIMENTS.md generator share one implementation.
"""

from repro.analysis.runners import (
    OneToAllCell,
    Table1Result,
    Table2Row,
    run_scalability_series,
    run_table1,
    run_table2,
)
from repro.analysis.formatting import format_table, render_table1, render_table2

__all__ = [
    "OneToAllCell",
    "Table1Result",
    "Table2Row",
    "run_table1",
    "run_table2",
    "run_scalability_series",
    "format_table",
    "render_table1",
    "render_table2",
]
