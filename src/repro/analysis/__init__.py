"""Analysis tooling: the experiment harness and the static-analysis
suite.

The *experiment harness* (:mod:`repro.analysis.runners`,
:mod:`repro.analysis.formatting`) regenerates every table/figure of
the paper's evaluation (§5); the runners return plain dataclasses so
benchmarks, the CLI and the EXPERIMENTS.md generator share one
implementation.

The *static-analysis suite* (:mod:`repro.analysis.lint`, CLI
``repro lint``) machine-checks the repo's concurrency, wire-schema and
export invariants — see docs/ANALYSIS.md.
"""

from repro.analysis.runners import (
    OneToAllCell,
    Table1Result,
    Table2Row,
    run_scalability_series,
    run_table1,
    run_table2,
)
from repro.analysis.formatting import format_table, render_table1, render_table2
from repro.analysis.lint import (
    Finding,
    LintConfig,
    LintReport,
    Project,
    default_config,
    run_lint,
)

__all__ = [
    "OneToAllCell",
    "Table1Result",
    "Table2Row",
    "run_table1",
    "run_table2",
    "run_scalability_series",
    "format_table",
    "render_table1",
    "render_table2",
    "Finding",
    "LintConfig",
    "LintReport",
    "Project",
    "default_config",
    "run_lint",
]
