"""Typed request/response model of the :class:`TransitService` facade.

Requests are small frozen dataclasses — cheap to build, hashable, and
safe to log or ship across processes.  Responses pair the answer (a
reduced :class:`~repro.functions.algebra.Profile`, journey legs) with
per-query :class:`QueryStats`, the accounting every benchmark and the
CLI read from one place.

The correspondence with the underlying engines:

===========================  ==============================================
request                      engine path
===========================  ==============================================
:class:`ProfileRequest`      :func:`~repro.core.parallel.parallel_profile_search`
:class:`JourneyRequest`      :meth:`~repro.query.table_query.StationToStationEngine.query`
:class:`BatchRequest`        :class:`~repro.query.batch.BatchQueryEngine`
:class:`MulticriteriaRequest`  :func:`~repro.core.multicriteria.mc_profile_search`
:class:`ViaRequest`          two chained :meth:`TransitService.journey` legs
:class:`MinTransfersRequest`   :func:`~repro.core.multicriteria.mc_profile_search`
===========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.parallel import ParallelProfileResult
from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME
from repro.query.batch import BatchStats


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ProfileRequest:
    """One-to-all profile search from ``source`` over a full period.

    ``num_threads`` overrides the service config's per-query core count
    for this request only (used by the scaling benchmarks, which sweep
    p over one prepared dataset).
    """

    source: int
    num_threads: int | None = None


@dataclass(frozen=True, slots=True)
class JourneyRequest:
    """Station-to-station query.

    Without ``departure`` the answer is the full reduced profile (all
    best connections over the period).  With ``departure`` the service
    additionally evaluates the profile at that time and reconstructs
    the concrete journey legs.
    """

    source: int
    target: int
    departure: int | None = None


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """A batched workload: many journeys and/or many profile searches.

    Execution is distributed over the service's configured pool
    backend; answers come back in submission order and are identical
    to issuing the requests one at a time.
    """

    journeys: tuple[JourneyRequest, ...] = ()
    profiles: tuple[ProfileRequest, ...] = ()

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[int, int]]
    ) -> "BatchRequest":
        """Station-to-station workload from raw (source, target) pairs."""
        return cls(
            journeys=tuple(JourneyRequest(s, t) for s, t in pairs)
        )

    @classmethod
    def from_sources(cls, sources: Sequence[int]) -> "BatchRequest":
        """One-to-all workload from raw source stations."""
        return cls(profiles=tuple(ProfileRequest(s) for s in sources))

    def __len__(self) -> int:
        return len(self.journeys) + len(self.profiles)


@dataclass(frozen=True, slots=True)
class MulticriteriaRequest:
    """Pareto query (paper §6): every non-dominated
    (transfers, arrival) trade-off for travelling ``source`` →
    ``target`` departing at or after ``departure``, bounded by
    ``max_transfers``.
    """

    source: int
    target: int
    departure: int
    max_transfers: int = 5


@dataclass(frozen=True, slots=True)
class ViaRequest:
    """Station-to-station journey constrained to pass through ``via``:
    the earliest arrival at ``target`` among journeys that first reach
    ``via`` as early as possible (two chained earliest-arrival legs).
    """

    source: int
    via: int
    target: int
    departure: int


@dataclass(frozen=True, slots=True)
class MinTransfersRequest:
    """Transfer-minimizing journey: among journeys departing at or
    after ``departure`` with at most ``max_transfers`` transfers, the
    one with the fewest transfers (ties broken by earliest arrival —
    the first entry of the Pareto front).
    """

    source: int
    target: int
    departure: int
    max_transfers: int = 5


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class QueryStats:
    """Per-query work and time accounting, uniform across query paths.

    ``simulated_seconds`` is the paper's simulated-cores wall clock
    (slowest thread + merge); ``total_seconds`` the real wall clock of
    the call.  ``classification`` is set for journeys only (trivial /
    table / local / global); the pruning counters are non-zero only
    when a distance table participated.  ``cache_hit`` is ``True`` when
    the answer was served from the service's
    :class:`~repro.service.cache.LRUResultCache` instead of a search
    (the timing fields then describe the *original* computation, not
    the hit) — server metrics and callers distinguish cached answers
    through it.
    """

    kind: str  # "profile" | "journey" | "multicriteria" | "via" | "min_transfers"
    kernel: str
    num_threads: int
    settled_connections: int
    simulated_seconds: float
    total_seconds: float
    classification: str | None = None
    table_prunes: int = 0
    connection_stops: int = 0
    cache_hit: bool = False


@dataclass(frozen=True, slots=True)
class JourneyLeg:
    """One leg of a reconstructed journey.

    ``departure`` is the time you must be at ``from_station`` ready to
    travel (waiting for the leg's train is included in the leg);
    ``arrival`` the time you reach ``to_station``.
    """

    from_station: int
    to_station: int
    departure: int
    arrival: int

    @property
    def duration(self) -> int:
        return self.arrival - self.departure


@dataclass(slots=True)
class JourneyResult:
    """Answer to a :class:`JourneyRequest`.

    ``profile`` always holds the full reduced profile.  When the
    request carried a departure time, ``departure``/``arrival`` hold
    the evaluated earliest arrival (``arrival`` is
    :data:`~repro.functions.piecewise.INF_TIME` when unreachable) and
    ``legs`` the reconstructed station-level itinerary (``None`` when
    no departure was asked for or the target is unreachable).
    """

    source: int
    target: int
    profile: Profile
    stats: QueryStats
    departure: int | None = None
    arrival: int | None = None
    legs: tuple[JourneyLeg, ...] | None = None

    @property
    def reachable(self) -> bool:
        if self.arrival is not None:
            return self.arrival < INF_TIME
        return len(self.profile) > 0 or self.source == self.target

    def earliest_arrival(self, tau: int) -> int:
        if self.source == self.target:
            return tau
        return self.profile.earliest_arrival(tau)


@dataclass(slots=True)
class ProfileResult:
    """Answer to a :class:`ProfileRequest`: all best connections from
    ``source`` to every station, plus accounting."""

    source: int
    stats: QueryStats
    #: The underlying merged result (kept whole: label matrices are
    #: shared, profiles are materialized per target on demand).
    raw: ParallelProfileResult = field(repr=False)

    def profile(self, station: int) -> Profile:
        """Reduced profile ``dist(source, station, ·)``."""
        return self.raw.profile(station)

    def earliest_arrival(self, station: int, tau: int) -> int:
        if station == self.source:
            return tau
        return self.profile(station).earliest_arrival(tau)


@dataclass(frozen=True, slots=True)
class ParetoOption:
    """One non-dominated (transfers, arrival) trade-off."""

    transfers: int
    arrival: int


@dataclass(slots=True)
class MulticriteriaResult:
    """Answer to a :class:`MulticriteriaRequest`.

    ``options`` is the Pareto front ordered by increasing transfer
    count and strictly decreasing arrival (every extra transfer buys a
    strictly earlier arrival); empty when ``target`` is unreachable
    within the transfer budget.  ``legs`` is the itinerary of the
    fastest option when the unconstrained reconstruction achieves its
    arrival within the budget, else ``None``.
    """

    source: int
    target: int
    departure: int
    max_transfers: int
    options: tuple[ParetoOption, ...]
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None

    @property
    def reachable(self) -> bool:
        return len(self.options) > 0

    @property
    def best_arrival(self) -> int:
        """Earliest arrival over the whole front (INF when empty)."""
        return self.options[-1].arrival if self.options else INF_TIME


@dataclass(slots=True)
class ViaResult:
    """Answer to a :class:`ViaRequest`.

    ``via_arrival`` is the earliest arrival at the via station
    (:data:`~repro.functions.piecewise.INF_TIME` when unreachable);
    ``arrival`` the final arrival at ``target`` after continuing from
    the via station at ``via_arrival``.  ``legs`` chains both legs'
    itineraries (``None`` when either hop is unreachable).
    """

    source: int
    via: int
    target: int
    departure: int
    via_arrival: int
    arrival: int
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None

    @property
    def reachable(self) -> bool:
        return self.arrival < INF_TIME


@dataclass(slots=True)
class MinTransfersResult:
    """Answer to a :class:`MinTransfersRequest`.

    ``transfers`` is the minimum transfer count of any journey within
    the budget (``None`` when unreachable); ``arrival`` the earliest
    arrival achievable with exactly that many transfers.  ``legs`` is
    the reconstructed itinerary when the unconstrained earliest-arrival
    journey already uses the minimum transfer count, else ``None``.
    """

    source: int
    target: int
    departure: int
    max_transfers: int
    transfers: int | None
    arrival: int
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None

    @property
    def reachable(self) -> bool:
        return self.transfers is not None


@dataclass(slots=True)
class BatchResponse:
    """Answer to a :class:`BatchRequest`.

    ``journeys``/``profiles`` are in submission order; ``stats``
    aggregates throughput over the whole batch (journeys and profile
    searches combined).
    """

    journeys: list[JourneyResult]
    profiles: list[ProfileResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.journeys) + len(self.profiles)
