"""The :class:`TransitService` facade — prepare once, query many.

One service instance owns every prepared artifact of one dataset (the
time-dependent graph, the station graph, the packed arrays, the
transfer stations and distance table) and answers every query shape of
the paper through a typed request/response model:

* :meth:`TransitService.profile` — one-to-all profile search (§3);
* :meth:`TransitService.journey` — station-to-station query with
  stopping criterion and distance-table pruning (§4), optionally with
  concrete journey legs at a departure time;
* :meth:`TransitService.batch` — batched workloads distributed over a
  worker pool (the traffic-serving shape);
* :meth:`TransitService.multicriteria` — the Pareto front of
  (transfers, arrival) trade-offs (§6);
* :meth:`TransitService.via` — source → via → target journeys as two
  chained earliest-arrival legs;
* :meth:`TransitService.min_transfers` — the fewest-transfers journey
  within a transfer budget;
* :meth:`TransitService.apply_delays` — the fully dynamic scenario
  (§5.1): a new service for the delayed timetable that re-derives only
  travel-time-dependent artifacts and shares the rest;
* :meth:`TransitService.save` / :meth:`TransitService.load` — persist
  the prepared artifacts to a :mod:`repro.store` directory and
  warm-start later processes from it without rebuilding anything;
* answers are additionally memoized per service in an LRU result
  cache (:mod:`repro.service.cache`, ``config.result_cache_size``).

The facade delegates to the same engines the pre-facade entry points
used (:func:`~repro.core.parallel.parallel_profile_search`,
:class:`~repro.query.table_query.StationToStationEngine`,
:class:`~repro.query.batch.BatchQueryEngine`), injecting the shared
artifacts — so answers are bitwise-identical to the historical paths
(``tests/service/test_facade.py`` pins this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from threading import Lock
from typing import Sequence

from repro.core.multicriteria import mc_profile_search
from repro.core.parallel import parallel_profile_search
from repro.functions.piecewise import INF_TIME
from repro.query.batch import BatchQueryEngine, BatchStats
from repro.query.distance_table import DistanceTable
from repro.query.table_query import (
    StationToStationEngine,
    StationToStationResult,
)
from repro.service.cache import CacheStats, LRUResultCache
from repro.service.config import RUNTIME_FIELDS, ServiceConfig
from repro.service.journeys import reconstruct_legs
from repro.service.model import (
    BatchRequest,
    BatchResponse,
    JourneyRequest,
    JourneyResult,
    MinTransfersRequest,
    MinTransfersResult,
    MulticriteriaRequest,
    MulticriteriaResult,
    ParetoOption,
    ProfileRequest,
    ProfileResult,
    QueryStats,
    ViaRequest,
    ViaResult,
)
from repro.service.prepare import (
    PreparedDataset,
    PrepareStats,
    prepare_dataset,
    replan_dataset,
)
from repro.timetable.delays import Delay, apply_delays as _delay_timetable
from repro.timetable.types import Timetable


@dataclass(frozen=True, slots=True)
class _McSearchKey:
    """Internal result-cache key for one shared multi-criteria
    one-to-all search: every multicriteria / min-transfers request for
    the same (source, budget) — whatever its target or departure —
    reads the same :class:`~repro.core.multicriteria.McProfileResult`.
    """

    source: int
    max_transfers: int


def _mark_cache_hit(result):
    """A shallow copy of a cached answer whose :class:`QueryStats`
    carry ``cache_hit=True``.

    The heavy payloads (profiles, label matrices, legs) are shared
    with the cache entry — only the small stats/result shells are
    copied — so callers can distinguish cached answers without the
    stored entry ever being mutated (it keeps ``cache_hit=False`` and
    its original timings).
    """
    if isinstance(result, BatchResponse):
        return BatchResponse(
            journeys=[_mark_cache_hit(j) for j in result.journeys],
            profiles=[_mark_cache_hit(p) for p in result.profiles],
            stats=result.stats,
        )
    return replace(result, stats=replace(result.stats, cache_hit=True))


class TransitService:
    """Facade over one prepared dataset (see module docstring).

    Construction eagerly runs the prepare-once pipeline; every query
    method afterwards only searches.  A service is immutable: delay
    updates return a *new* service (:meth:`apply_delays`).
    """

    def __init__(
        self,
        timetable: Timetable,
        config: ServiceConfig | None = None,
        *,
        prepared: PreparedDataset | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        if prepared is None:
            prepared = prepare_dataset(timetable, self.config)
        self.prepared = prepared
        cfg = self.config
        # The one station-to-station engine every journey (single or
        # batched-serial) goes through; construction is cheap because
        # all artifacts are injected.
        self._engine = StationToStationEngine(
            prepared.graph,
            prepared.table,
            num_threads=cfg.num_threads,
            strategy=cfg.strategy,
            stopping=cfg.stopping,
            table_pruning=cfg.table_pruning,
            target_pruning=cfg.target_pruning,
            queue=cfg.queue,
            kernel=cfg.kernel,
            arrays=prepared.arrays,
            station_graph=prepared.station_graph,
        )
        self._batch_engine: BatchQueryEngine | None = None
        # Guards the lazy batch-engine construction: concurrent first
        # batches (server worker threads) must share one engine, not
        # race two setups.
        self._batch_lock = Lock()
        # Per-service LRU over answers; requests are frozen dataclasses
        # and the service is immutable, so entries never go stale.  A
        # delayed service (apply_delays) is a new instance and thus
        # starts cold — the invalidation the dynamic scenario needs.
        self._result_cache = LRUResultCache(cfg.result_cache_size)

    @classmethod
    def from_graph(
        cls, graph, config: ServiceConfig | None = None
    ) -> "TransitService":
        """Build a service over an already-built time-dependent graph
        (benchmarks sweeping many configs over one dataset skip the
        repeated graph build this way)."""
        config = config if config is not None else ServiceConfig()
        prepared = prepare_dataset(graph.timetable, config, graph=graph)
        return cls(graph.timetable, config, prepared=prepared)

    # -- persistence (repro.store) -------------------------------------

    def save(self, path: str | Path) -> Path:
        """Serialize every prepared artifact to a store directory.

        A later process warm-starts from it with :meth:`load`, paying
        none of the build cost again (``docs/API.md``, "Persistence
        and warm starts").  Returns the store path.
        """
        # Imported lazily: repro.store depends on the service layer's
        # types, so a module-level import would be circular.
        from repro.store import save_dataset

        # The service's config, not prepared.config: runtime overrides
        # applied after preparation must survive the round-trip.
        return save_dataset(self.prepared, path, config=self.config)

    @classmethod
    def load(
        cls, path: str | Path, *, config: ServiceConfig | None = None
    ) -> "TransitService":
        """Warm-start a service from a store written by :meth:`save`.

        No builder runs — the graph is hydrated from the packed
        buffers (memory-mapped read-only) and the distance table is
        deserialized; answers are bitwise-identical to a cold prepare
        under the stored config
        (``tests/store/test_store_roundtrip.py``).  ``config``, when
        given, asserts the store was prepared under that
        configuration's *preparation recipe* (runtime-only fields may
        differ — see :data:`~repro.service.config.RUNTIME_FIELDS`);
        the stored config governs either way.  Raises
        :class:`repro.store.StoreError` on a missing/corrupt store, a
        format-version bump, or a recipe mismatch.
        """
        from repro.store import load_dataset

        prepared = load_dataset(path, expected_config=config)
        return cls(prepared.timetable, prepared.config, prepared=prepared)

    def with_runtime_overrides(self, **changes) -> "TransitService":
        """A sibling service over the *same* prepared artifacts with
        runtime-only config changes (:data:`RUNTIME_FIELDS`: thread
        count, pool backend/workers, pruning toggles, cache size, …).

        Nothing is rebuilt — the new service shares this one's
        :class:`PreparedDataset` — so fields that shape preparation
        (``kernel``, the distance-table knobs) are rejected with
        ``ValueError``: those need a fresh prepare, not an override.
        """
        illegal = set(changes) - RUNTIME_FIELDS
        if illegal:
            raise ValueError(
                f"not runtime-overridable: {sorted(illegal)} "
                f"(allowed: {sorted(RUNTIME_FIELDS)})"
            )
        config = self.config.with_overrides(**changes)
        return TransitService(
            self.timetable, config, prepared=self.prepared
        )

    # -- convenient read-only views ------------------------------------

    @property
    def timetable(self) -> Timetable:
        return self.prepared.timetable

    @property
    def graph(self):
        return self.prepared.graph

    @property
    def table(self) -> DistanceTable | None:
        return self.prepared.table

    @property
    def prepare_stats(self) -> PrepareStats:
        """Timing/size accounting of the prepare-once pipeline."""
        return self.prepared.stats

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting of the per-service result cache."""
        return self._result_cache.stats

    # -- one-to-all profiles -------------------------------------------

    def profile(
        self, request: ProfileRequest | int, /
    ) -> ProfileResult:
        """Answer a :class:`ProfileRequest` (or a raw source station)."""
        req = (
            ProfileRequest(request) if isinstance(request, int) else request
        )
        cached = self._result_cache.get(req)
        if cached is not None:
            return _mark_cache_hit(cached)
        cfg = self.config
        prepared = self.prepared
        num_threads = (
            req.num_threads if req.num_threads is not None else cfg.num_threads
        )
        t0 = time.perf_counter()
        raw = parallel_profile_search(
            prepared.graph,
            req.source,
            num_threads,
            strategy=cfg.strategy,
            backend="serial",
            self_pruning=cfg.self_pruning,
            queue=cfg.queue,
            kernel=cfg.kernel,
            arrays=prepared.arrays,
        )
        total = time.perf_counter() - t0
        stats = QueryStats(
            kind="profile",
            kernel=cfg.kernel,
            num_threads=num_threads,
            settled_connections=raw.stats.settled_connections,
            simulated_seconds=raw.stats.simulated_time,
            total_seconds=total,
        )
        result = ProfileResult(source=req.source, stats=stats, raw=raw)
        self._result_cache.put(req, result)
        return result

    # -- station-to-station journeys -----------------------------------

    def journey(
        self,
        request: JourneyRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> JourneyResult:
        """Answer a :class:`JourneyRequest` (or raw source/target)."""
        if isinstance(request, JourneyRequest):
            req = request
        else:
            if target is None:
                raise TypeError("journey(source, target) needs a target")
            req = JourneyRequest(request, target, departure)
        cached = self._result_cache.get(req)
        if cached is not None:
            return _mark_cache_hit(cached)
        res = self._engine.query(req.source, req.target)
        result = self._wrap_journey(req, res)
        self._result_cache.put(req, result)
        return result

    def journey_many(
        self, requests: Sequence[JourneyRequest]
    ) -> list[JourneyResult]:
        """Answer many journey requests with per-request caching.

        The serving layer's micro-batched dispatch path
        (:mod:`repro.server.executor`): every request consults the
        result cache exactly like :meth:`journey` (hits come back
        marked ``cache_hit``), the misses run as one
        :class:`BatchQueryEngine` pass, and each fresh answer is
        cached under its own :class:`JourneyRequest` key — so grouping
        never disables the cache that repeated single journeys rely
        on.  Answers are identical to calling :meth:`journey` once per
        request, in order.
        """
        results: list[JourneyResult | None] = [None] * len(requests)
        misses: list[tuple[int, JourneyRequest]] = []
        for i, req in enumerate(requests):
            cached = self._result_cache.get(req)
            if cached is not None:
                results[i] = _mark_cache_hit(cached)
            else:
                misses.append((i, req))
        if misses:
            raw = self._batch().query_many(
                [(req.source, req.target) for _, req in misses]
            )
            for (i, req), res in zip(misses, raw):
                result = self._wrap_journey(req, res)
                self._result_cache.put(req, result)
                results[i] = result
        return results

    # -- batched workloads ---------------------------------------------

    def batch(
        self, request: BatchRequest | Sequence[tuple[int, int]], /
    ) -> BatchResponse:
        """Answer a :class:`BatchRequest` (or raw (source, target)
        pairs) on the configured pool backend."""
        if not isinstance(request, BatchRequest):
            request = BatchRequest.from_pairs(request)
        cached = self._result_cache.get(request)
        if cached is not None:
            return _mark_cache_hit(cached)
        engine = self._batch()
        journeys: list[JourneyResult] = []
        profiles: list[ProfileResult] = []
        parts: list[BatchStats] = []
        if request.journeys:
            raw = engine.query_many(
                [(j.source, j.target) for j in request.journeys]
            )
            journeys = [
                self._wrap_journey(req, res)
                for req, res in zip(request.journeys, raw)
            ]
            parts.append(raw.stats)
        if request.profiles:
            raw = engine.profile_many(
                [p.source for p in request.profiles],
                num_threads=[p.num_threads for p in request.profiles],
            )
            for req, res in zip(request.profiles, raw):
                stats = QueryStats(
                    kind="profile",
                    kernel=self.config.kernel,
                    num_threads=(
                        req.num_threads
                        if req.num_threads is not None
                        else self.config.num_threads
                    ),
                    settled_connections=res.stats.settled_connections,
                    simulated_seconds=res.stats.simulated_time,
                    total_seconds=res.stats.total_time,
                )
                profiles.append(
                    ProfileResult(source=req.source, stats=stats, raw=res)
                )
            parts.append(raw.stats)
        response = BatchResponse(
            journeys=journeys,
            profiles=profiles,
            stats=self._merge_batch_stats(parts),
        )
        self._result_cache.put(request, response)
        return response

    # -- the query zoo: multicriteria / via / min-transfers ------------

    def multicriteria(
        self,
        request: MulticriteriaRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MulticriteriaResult:
        """Answer a :class:`MulticriteriaRequest` (or raw arguments):
        the Pareto front of (transfers, arrival) trade-offs (§6)."""
        if isinstance(request, MulticriteriaRequest):
            req = request
        else:
            if target is None or departure is None:
                raise TypeError(
                    "multicriteria(source, target, departure=...) needs "
                    "a target and a departure"
                )
            req = MulticriteriaRequest(request, target, departure, max_transfers)
        cached = self._result_cache.get(req)
        if cached is not None:
            return _mark_cache_hit(cached)
        result = self._run_multicriteria(req)
        self._result_cache.put(req, result)
        return result

    def multicriteria_many(
        self, requests: Sequence[MulticriteriaRequest]
    ) -> list[MulticriteriaResult]:
        """Answer many multicriteria requests with per-request caching.

        The serving layer's micro-batched dispatch path for this shape:
        requests sharing a (source, budget) pair reuse one underlying
        one-to-all search (the :class:`_McSearchKey` entry), so a
        grouped window costs one search per distinct source instead of
        one per request.  Answers are identical to calling
        :meth:`multicriteria` once per request, in order.
        """
        results: list[MulticriteriaResult | None] = [None] * len(requests)
        for i, req in enumerate(requests):
            cached = self._result_cache.get(req)
            if cached is not None:
                results[i] = _mark_cache_hit(cached)
            else:
                result = self._run_multicriteria(req)
                self._result_cache.put(req, result)
                results[i] = result
        return results

    def via(
        self,
        request: ViaRequest | int,
        via: int | None = None,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> ViaResult:
        """Answer a :class:`ViaRequest` (or raw arguments): two chained
        earliest-arrival journeys, source → via → target.

        The legs reuse :meth:`journey` wholesale (each hop is cached
        under its own :class:`JourneyRequest` key), so answers are by
        construction those of the two chained station-to-station
        queries the parity oracle runs.
        """
        if isinstance(request, ViaRequest):
            req = request
        else:
            if via is None or target is None or departure is None:
                raise TypeError(
                    "via(source, via, target, departure=...) needs a "
                    "via, a target and a departure"
                )
            req = ViaRequest(request, via, target, departure)
        cached = self._result_cache.get(req)
        if cached is not None:
            return _mark_cache_hit(cached)
        t0 = time.perf_counter()
        parts: list[QueryStats] = []
        if req.source == req.via:
            legs_first: tuple | None = ()
            via_arrival = req.departure
        else:
            first = self.journey(JourneyRequest(req.source, req.via, req.departure))
            parts.append(first.stats)
            legs_first = first.legs
            via_arrival = first.arrival if first.arrival is not None else INF_TIME
        if via_arrival >= INF_TIME:
            arrival = INF_TIME
            legs = None
        elif req.via == req.target:
            arrival = via_arrival
            legs = legs_first
        else:
            second = self.journey(
                JourneyRequest(req.via, req.target, via_arrival)
            )
            parts.append(second.stats)
            arrival = second.arrival if second.arrival is not None else INF_TIME
            if legs_first is None or second.legs is None:
                legs = None
            else:
                legs = tuple(legs_first) + tuple(second.legs)
        total = time.perf_counter() - t0
        stats = QueryStats(
            kind="via",
            kernel=self.config.kernel,
            num_threads=self.config.num_threads,
            settled_connections=sum(p.settled_connections for p in parts),
            simulated_seconds=sum(p.simulated_seconds for p in parts),
            total_seconds=total,
            table_prunes=sum(p.table_prunes for p in parts),
            connection_stops=sum(p.connection_stops for p in parts),
        )
        result = ViaResult(
            source=req.source,
            via=req.via,
            target=req.target,
            departure=req.departure,
            via_arrival=via_arrival,
            arrival=arrival,
            stats=stats,
            legs=legs,
        )
        self._result_cache.put(req, result)
        return result

    def min_transfers(
        self,
        request: MinTransfersRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MinTransfersResult:
        """Answer a :class:`MinTransfersRequest` (or raw arguments):
        the fewest-transfers journey within the budget — the first
        entry of the Pareto front."""
        if isinstance(request, MinTransfersRequest):
            req = request
        else:
            if target is None or departure is None:
                raise TypeError(
                    "min_transfers(source, target, departure=...) needs "
                    "a target and a departure"
                )
            req = MinTransfersRequest(request, target, departure, max_transfers)
        cached = self._result_cache.get(req)
        if cached is not None:
            return _mark_cache_hit(cached)
        t0 = time.perf_counter()
        if req.source == req.target:
            transfers: int | None = 0
            arrival = req.departure
            legs: tuple | None = ()
            settled = 0
        else:
            raw = self._mc_search(req.source, req.max_transfers)
            settled = raw.stats.settled
            front = raw.pareto_front(req.target, req.departure)
            if not front:
                transfers, arrival, legs = None, INF_TIME, None
            else:
                transfers, arrival = front[0]
                recon, recon_arrival = self._recon_legs(
                    req.source, req.target, req.departure
                )
                legs = (
                    recon
                    if recon
                    and recon_arrival == arrival
                    and len(recon) - 1 == transfers
                    else None
                )
        total = time.perf_counter() - t0
        result = MinTransfersResult(
            source=req.source,
            target=req.target,
            departure=req.departure,
            max_transfers=req.max_transfers,
            transfers=transfers,
            arrival=arrival,
            stats=self._mc_stats("min_transfers", settled, total),
            legs=legs,
        )
        self._result_cache.put(req, result)
        return result

    # -- delay replanning ----------------------------------------------

    def apply_delays(
        self,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        mode: str = "full",
    ) -> "TransitService":
        """A new service for the delayed timetable (§5.1).

        Only travel-time-dependent artifacts are re-derived (graph,
        packed arrays, distance table).  Delayed trains keep their
        routes, so the station graph and the transfer-station
        selection are *shared* with this service — answers are still
        exactly those of a cold service built from the delayed
        timetable (``tests/service/test_delay_replanning.py``).

        ``mode`` selects how the travel-time artifacts are re-derived:

        * ``"full"`` (default, the oracle) — cold rebuild of graph,
          packed arrays and distance table via :func:`prepare_dataset`.
        * ``"incremental"`` — delta replan via :func:`replan_dataset`:
          only the travel-time functions of routes carrying a delayed
          train are rebuilt, the packed arrays are slice-patched, and
          only the distance-table rows whose searches can observe a
          changed edge are recomputed.  Pinned bitwise-equal to the
          full rebuild (``tests/streams/test_incremental_equivalence.py``).

        The returned service starts with an **empty result cache**:
        answers cached before the delays can never be served for the
        delayed timetable (``tests/service/test_result_cache.py``).
        This service and its cache stay valid for the original
        timetable.
        """
        if mode not in ("full", "incremental"):
            raise ValueError(
                f"mode must be 'full' or 'incremental', got {mode!r}"
            )
        delays = list(delays)
        delayed = _delay_timetable(
            self.timetable, delays, slack_per_leg=slack_per_leg
        )
        if mode == "incremental":
            prepared = replan_dataset(
                self.prepared, delayed, {d.train for d in delays}
            )
        else:
            prepared = prepare_dataset(
                delayed,
                self.config,
                station_graph=self.prepared.station_graph,
                transfer_stations=self.prepared.transfer_stations,
            )
        return TransitService(delayed, self.config, prepared=prepared)

    # -- internals ------------------------------------------------------

    def _batch(self) -> BatchQueryEngine:
        engine = self._batch_engine
        if engine is None:
            with self._batch_lock:
                if self._batch_engine is None:
                    cfg = self.config
                    prepared = self.prepared
                    self._batch_engine = BatchQueryEngine(
                        prepared.graph,
                        prepared.table,
                        kernel=cfg.kernel,
                        backend=cfg.backend,
                        workers=cfg.workers,
                        num_threads=cfg.num_threads,
                        strategy=cfg.strategy,
                        stopping=cfg.stopping,
                        table_pruning=cfg.table_pruning,
                        target_pruning=cfg.target_pruning,
                        queue=cfg.queue,
                        arrays=prepared.arrays,
                        station_graph=prepared.station_graph,
                    )
                engine = self._batch_engine
        return engine

    def _mc_search(self, source: int, max_transfers: int):
        """The shared multi-criteria one-to-all search, memoized in the
        result cache under :class:`_McSearchKey` — so any mix of
        multicriteria / min-transfers requests over one source pays one
        search."""
        key = _McSearchKey(source, max_transfers)
        raw = self._result_cache.get(key)
        if raw is None:
            raw = mc_profile_search(
                self.prepared.graph,
                source,
                max_transfers=max_transfers,
                self_pruning=self.config.self_pruning,
                queue=self.config.queue,
            )
            self._result_cache.put(key, raw)
        return raw

    def _run_multicriteria(self, req: MulticriteriaRequest) -> MulticriteriaResult:
        t0 = time.perf_counter()
        if req.source == req.target:
            options = (ParetoOption(0, req.departure),)
            legs: tuple | None = ()
            settled = 0
        else:
            raw = self._mc_search(req.source, req.max_transfers)
            settled = raw.stats.settled
            options = tuple(
                ParetoOption(k, arr)
                for k, arr in raw.pareto_front(req.target, req.departure)
            )
            legs = None
            if options:
                recon, recon_arrival = self._recon_legs(
                    req.source, req.target, req.departure
                )
                if (
                    recon
                    and recon_arrival == options[-1].arrival
                    and len(recon) - 1 <= req.max_transfers
                ):
                    legs = recon
        total = time.perf_counter() - t0
        return MulticriteriaResult(
            source=req.source,
            target=req.target,
            departure=req.departure,
            max_transfers=req.max_transfers,
            options=options,
            stats=self._mc_stats("multicriteria", settled, total),
            legs=legs,
        )

    def _mc_stats(self, kind: str, settled: int, total: float) -> QueryStats:
        # The multi-criteria engine is the sequential §6 search: no
        # flat-kernel variant, no parallel driver — accounted as one
        # python thread whatever the service's journey configuration.
        return QueryStats(
            kind=kind,
            kernel="python",
            num_threads=1,
            settled_connections=settled,
            simulated_seconds=total,
            total_seconds=total,
        )

    def _recon_legs(self, source: int, target: int, departure: int):
        return reconstruct_legs(
            self.prepared.graph,
            source,
            target,
            departure,
            queue=self.config.queue,
        )

    def _wrap_journey(
        self, req: JourneyRequest, res: StationToStationResult
    ) -> JourneyResult:
        stats = QueryStats(
            kind="journey",
            kernel=self.config.kernel,
            num_threads=self.config.num_threads,
            settled_connections=res.settled_connections,
            simulated_seconds=res.simulated_time,
            total_seconds=res.total_time,
            classification=res.classification,
            table_prunes=res.table_prunes,
            connection_stops=res.connection_stops,
        )
        legs = None
        arrival = None
        if req.departure is not None:
            legs, arrival = reconstruct_legs(
                self.prepared.graph,
                req.source,
                req.target,
                req.departure,
                queue=self.config.queue,
            )
        return JourneyResult(
            source=req.source,
            target=req.target,
            profile=res.profile,
            stats=stats,
            departure=req.departure,
            arrival=arrival,
            legs=legs,
        )

    def _merge_batch_stats(self, parts: list[BatchStats]) -> BatchStats:
        engine = self._batch()
        if not parts:
            return BatchStats(
                num_queries=0,
                backend="serial",
                kernel=self.config.kernel,
                num_workers=1,
                setup_seconds=engine.setup_seconds,
                total_seconds=0.0,
            )
        if len(parts) == 1:
            return parts[0]
        # Journeys and profile searches ran as two sequential pool
        # passes: queries and wall time add up; the backend/worker
        # fields follow the wider (non-short-circuited) pass.
        main = max(parts, key=lambda s: s.num_workers)
        return BatchStats(
            num_queries=sum(s.num_queries for s in parts),
            backend=main.backend,
            kernel=main.kernel,
            num_workers=main.num_workers,
            setup_seconds=engine.setup_seconds,
            total_seconds=sum(s.total_seconds for s in parts),
        )
