"""LRU cache over query answers (the serving-layer hot path).

Profile, journey and batch requests are small frozen dataclasses —
hashable by construction — so a repeated request can be answered from
memory without touching a kernel.  One :class:`LRUResultCache` belongs
to one :class:`~repro.service.facade.TransitService`; because a service
is immutable, every cached answer stays valid for the service's whole
lifetime.  Delay replanning returns a *new* service with an *empty*
cache (:meth:`TransitService.apply_delays`), which is exactly the
invalidation the dynamic scenario needs: answers computed before a
delay can never leak into the delayed service.

The facade answers a hit with a *shallow copy* of the stored entry
whose :class:`~repro.service.model.QueryStats` carry
``cache_hit=True`` — the heavy payloads (profiles, label matrices,
legs) are shared by reference and must be treated as read-only; the
stored entry itself is never mutated and keeps its original timings.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Hashable


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time accounting of one result cache."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUResultCache:
    """Bounded least-recently-used result cache.

    ``maxsize=0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op).  Thread-safe: batch fan-outs may issue
    queries from pool threads.
    """

    __slots__ = ("_maxsize", "_entries", "_lock", "_hits", "_misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()  # guarded-by: _lock
        self._lock = Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock

    def get(self, key: Hashable):
        """The cached answer for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, value) -> None:
        if self._maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        # Under the lock like every other reader: pool threads mutate
        # _entries via put() eviction, and an OrderedDict mid-resize
        # must never be observed (CPython dict reads are not atomic
        # against concurrent structural mutation).
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self._maxsize,
            )
