"""Journey-leg reconstruction for :class:`JourneyRequest` answers.

Profile searches return travel-time *functions*, not itineraries: the
label matrices hold arrival times, no parent pointers.  For an actual
journey at a concrete departure time the facade runs the paper's §2
time-query (:func:`repro.baselines.time_query.time_query` — the
implementation every profile search is verified against at each
departure anchor) with parent tracking, then collapses the node path —
station and route nodes of the realistic model — into station-level
legs.

Leg semantics: ``leg.departure`` is the moment you are at
``from_station`` ready to travel (arrival there for later legs, the
requested departure for the first), so waiting and the minimum
transfer time are part of the leg and consecutive legs chain:
``legs[i].arrival == legs[i + 1].departure``.
"""

from __future__ import annotations

from repro.baselines.time_query import time_query
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.service.model import JourneyLeg


def reconstruct_legs(
    graph: TDGraph,
    source: int,
    target: int,
    departure: int,
    *,
    queue: str = "binary",
) -> tuple[tuple[JourneyLeg, ...] | None, int]:
    """Return ``(legs, arrival)`` for the earliest journey.

    ``legs`` is ``None`` when the target is unreachable (``arrival``
    is then :data:`INF_TIME`); an empty tuple when ``source ==
    target``.
    """
    if source == target:
        return (), departure

    result = time_query(
        graph,
        source,
        departure,
        target=target,
        queue=queue,
        track_parents=True,
    )
    if result.arrival[target] >= INF_TIME:
        return None, INF_TIME

    # Collapse the node path at station nodes: one leg per alighting.
    path = result.path_to(target)
    arrival = result.arrival
    legs: list[JourneyLeg] = []
    leg_start_node = source
    for node in path[1:]:
        if graph.is_station_node(node):
            legs.append(
                JourneyLeg(
                    from_station=graph.station_of(leg_start_node),
                    to_station=graph.station_of(node),
                    departure=arrival[leg_start_node],
                    arrival=arrival[node],
                )
            )
            leg_start_node = node
    return tuple(legs), arrival[target]
