"""Prepare-once artifact construction for :class:`TransitService`.

The paper's pipeline is *one dataset prepared once, queried many
times*: timetable → time-dependent graph → (optionally) transfer
stations and the profile distance table.  :func:`prepare_dataset`
performs that pipeline exactly once and returns a
:class:`PreparedDataset` snapshot owning every shared artifact, with
:class:`PrepareStats` timing and size accounting for benchmarks.

Delay replanning (:meth:`TransitService.apply_delays`) re-derives only
the artifacts delays can affect.  Delayed trains keep their routes, so
the station graph and the transfer-station selection (a pure function
of the station graph) are *shared* with the original dataset; the
time-dependent graph, the packed arrays and the distance table carry
travel times and are rebuilt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.station_graph import StationGraph, build_station_graph
from repro.graph.td_arrays import TDGraphArrays, packed_arrays
from repro.graph.td_model import TDGraph, build_td_graph
from repro.graph.td_patch import (
    patch_td_arrays,
    patch_td_graph,
    stations_reaching,
)
from repro.query.distance_table import (
    DistanceTable,
    build_distance_table,
    patch_distance_table,
)
from repro.query.transfer_selection import select_transfer_stations
from repro.service.config import ServiceConfig
from repro.timetable.types import Timetable


@dataclass(frozen=True, slots=True)
class PrepareStats:
    """Wall-clock and size accounting of one preparation run.

    All times in seconds.  ``pack_seconds`` and ``packed_bytes`` are
    zero for the ``python`` kernel (nothing is packed);
    ``selection_seconds``/``table_seconds``/``table_mib`` are zero
    when the distance table is off.  ``shared_station_graph`` records
    whether the station graph (and transfer selection) were inherited
    from a prior service instead of rebuilt (delay replanning).
    ``loaded_from_store`` marks a warm start from the artifact store
    (:mod:`repro.store`): nothing was built — ``graph_seconds`` is then
    the object-graph *hydration* time and every other stage is zero.
    """

    graph_seconds: float
    station_graph_seconds: float
    pack_seconds: float
    selection_seconds: float
    table_seconds: float
    total_seconds: float
    num_stations: int
    num_nodes: int
    num_edges: int
    num_connections: int
    packed_bytes: int
    num_transfer_stations: int
    table_mib: float
    shared_station_graph: bool = False
    loaded_from_store: bool = False
    #: True when this dataset was produced by the incremental delta
    #: replan (:func:`replan_dataset`) instead of a full rebuild.
    incremental: bool = False
    #: Route legs whose travel-time function was rebuilt (incremental
    #: replans only; zero for full builds).
    rebuilt_legs: int = 0
    #: Distance-table rows recomputed (incremental replans only).
    patched_table_rows: int = 0


@dataclass
class PreparedDataset:
    """Immutable snapshot of every shared artifact of one dataset.

    Engines never rebuild any of these: the facade injects them into
    :class:`~repro.query.table_query.StationToStationEngine`,
    :class:`~repro.query.batch.BatchQueryEngine` and
    :func:`~repro.core.parallel.parallel_profile_search`, so packing,
    station-graph construction and table building happen at most once
    per service instance (``tests/service/test_facade.py`` pins this
    with call counters).
    """

    timetable: Timetable
    config: ServiceConfig
    graph: TDGraph
    station_graph: StationGraph
    #: Packed flat-array twin of ``graph``; ``None`` for the ``python``
    #: kernel, which walks the object graph directly.
    arrays: TDGraphArrays | None
    #: Sorted transfer-station ids (``None`` when the table is off).
    transfer_stations: np.ndarray | None
    table: DistanceTable | None
    stats: PrepareStats = field(repr=False)


def prepare_dataset(
    timetable: Timetable,
    config: ServiceConfig,
    *,
    graph: TDGraph | None = None,
    station_graph: StationGraph | None = None,
    transfer_stations: np.ndarray | None = None,
) -> PreparedDataset:
    """Run the prepare-once pipeline for ``(timetable, config)``.

    ``station_graph``/``transfer_stations`` inject artifacts surviving
    a delay update (topology-only state); ``graph`` injects an
    already-built time-dependent graph (benchmarks sweeping configs
    over one dataset).  Pass none of them for a cold build.
    """
    t_start = time.perf_counter()

    t0 = time.perf_counter()
    if graph is None:
        graph = build_td_graph(timetable)
    graph_seconds = time.perf_counter() - t0

    shared_station_graph = station_graph is not None
    t0 = time.perf_counter()
    if station_graph is None:
        station_graph = build_station_graph(timetable)
    station_graph_seconds = time.perf_counter() - t0

    arrays: TDGraphArrays | None = None
    pack_seconds = 0.0
    packed_bytes = 0
    if config.kernel == "flat":
        t0 = time.perf_counter()
        arrays = packed_arrays(graph)
        # Build the kernel-side list mirrors here so every later query
        # measures search work, not a one-time cache fill.
        arrays.kernel_adjacency()
        pack_seconds = time.perf_counter() - t0
        packed_bytes = arrays.nbytes()

    selection_seconds = 0.0
    table_seconds = 0.0
    table: DistanceTable | None = None
    table_mib = 0.0
    if config.use_distance_table:
        t0 = time.perf_counter()
        if transfer_stations is None:
            transfer_stations = select_transfer_stations(
                timetable,
                method=config.transfer_selection,
                fraction=config.transfer_fraction,
                min_degree=config.min_degree,
                station_graph=station_graph,
            )
        selection_seconds = time.perf_counter() - t0
        if transfer_stations.size:
            t0 = time.perf_counter()
            table = build_distance_table(
                graph,
                transfer_stations,
                num_threads=config.num_threads,
                strategy=config.strategy,
                kernel=config.kernel,
                arrays=arrays,
            )
            table_seconds = time.perf_counter() - t0
            table_mib = table.size_mib()
    else:
        transfer_stations = None

    stats = PrepareStats(
        graph_seconds=graph_seconds,
        station_graph_seconds=station_graph_seconds,
        pack_seconds=pack_seconds,
        selection_seconds=selection_seconds,
        table_seconds=table_seconds,
        total_seconds=time.perf_counter() - t_start,
        num_stations=timetable.num_stations,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_connections=len(timetable.connections),
        packed_bytes=packed_bytes,
        num_transfer_stations=(
            0 if transfer_stations is None else int(transfer_stations.size)
        ),
        table_mib=table_mib,
        shared_station_graph=shared_station_graph,
    )
    return PreparedDataset(
        timetable=timetable,
        config=config,
        graph=graph,
        station_graph=station_graph,
        arrays=arrays,
        transfer_stations=transfer_stations,
        table=table,
        stats=stats,
    )


def replan_dataset(
    prepared: PreparedDataset,
    delayed: Timetable,
    touched_trains: set[int],
) -> PreparedDataset:
    """Incremental delta replan: a :class:`PreparedDataset` for the
    delayed timetable, patched from ``prepared`` instead of rebuilt.

    ``delayed`` must be ``apply_delays(prepared.timetable, batch)`` and
    ``touched_trains`` the trains that batch names.  Only the
    travel-time functions of routes carrying a touched train are
    rebuilt (:func:`~repro.graph.td_patch.patch_td_graph`), the packed
    arrays are slice-patched, and — when a table is configured — only
    the rows whose source can reach a changed edge are recomputed
    (:func:`~repro.query.distance_table.patch_distance_table`).  The
    result is value-identical to ``prepare_dataset(delayed, config,
    station_graph=..., transfer_stations=...)``; the full rebuild
    remains the oracle (``tests/streams/test_incremental_equivalence.py``).
    """
    config = prepared.config
    t_start = time.perf_counter()

    t0 = time.perf_counter()
    graph, patch = patch_td_graph(prepared.graph, delayed, touched_trains)
    graph_seconds = time.perf_counter() - t0

    arrays: TDGraphArrays | None = None
    pack_seconds = 0.0
    packed_bytes = 0
    if prepared.arrays is not None:
        t0 = time.perf_counter()
        arrays = patch_td_arrays(prepared.arrays, graph, patch)
        arrays.kernel_adjacency()
        pack_seconds = time.perf_counter() - t0
        packed_bytes = arrays.nbytes()

    table: DistanceTable | None = None
    table_seconds = 0.0
    table_mib = 0.0
    patched_rows = 0
    if prepared.table is not None:
        t0 = time.perf_counter()
        affected = stations_reaching(
            prepared.station_graph,
            patch.trigger_stations | patch.changed_stations,
        )
        table = patch_distance_table(
            prepared.table,
            graph,
            affected,
            num_threads=config.num_threads,
            strategy=config.strategy,
            kernel=config.kernel,
            arrays=arrays,
        )
        patched_rows = sum(
            1 for s in table.transfer_stations if affected[int(s)]
        )
        table_seconds = time.perf_counter() - t0
        table_mib = table.size_mib()

    stats = PrepareStats(
        graph_seconds=graph_seconds,
        station_graph_seconds=0.0,
        pack_seconds=pack_seconds,
        selection_seconds=0.0,
        table_seconds=table_seconds,
        total_seconds=time.perf_counter() - t_start,
        num_stations=delayed.num_stations,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_connections=len(delayed.connections),
        packed_bytes=packed_bytes,
        num_transfer_stations=prepared.stats.num_transfer_stations,
        table_mib=table_mib,
        shared_station_graph=True,
        incremental=True,
        rebuilt_legs=patch.rebuilt_legs,
        patched_table_rows=patched_rows,
    )
    return PreparedDataset(
        timetable=delayed,
        config=config,
        graph=graph,
        station_graph=prepared.station_graph,
        arrays=arrays,
        transfer_stations=prepared.transfer_stations,
        table=table,
        stats=stats,
    )
