"""Typed configuration of a :class:`~repro.service.TransitService`.

One :class:`ServiceConfig` fixes *everything* that shapes prepared
artifacts and query execution — kernel, batch backend, per-query core
count, partition strategy, transfer-station selection, distance table
on/off — so that a service instance is reproducible from ``(timetable,
config)`` alone and two services with equal configs answer identically.

All fields are validated eagerly at construction; an invalid
combination fails before any preparation work starts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.parallel import KERNELS
from repro.core.partition import PARTITION_STRATEGIES
from repro.pq import QUEUE_FACTORIES
from repro.query.batch import BATCH_BACKENDS

#: Valid ``transfer_selection`` values (see
#: :func:`repro.query.transfer_selection.select_transfer_stations`).
SELECTION_METHODS = ("contraction", "degree")

#: Config fields that shape query *execution* only, never the prepared
#: artifacts: changing one over an existing :class:`PreparedDataset`
#: (``TransitService.with_runtime_overrides``) is always sound.  Every
#: other field changes what preparation produces (kernel packs arrays,
#: the transfer knobs pick ``S_trans``, …) and requires a fresh
#: prepare — and hence a fresh artifact store.  ``num_threads`` and
#: ``strategy`` also steer the distance-table *build*, but only its
#: parallelism/partitioning, never the stored profiles.
RUNTIME_FIELDS = frozenset(
    {
        "num_threads",
        "strategy",
        "queue",
        "backend",
        "workers",
        "result_cache_size",
        "stopping",
        "table_pruning",
        "target_pruning",
        "self_pruning",
    }
)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Everything a :class:`TransitService` needs beyond the timetable.

    Query execution
    ---------------
    kernel
        Per-subset search implementation, one of
        :data:`~repro.core.parallel.KERNELS` (``flat`` is the
        production default: identical answers, several times faster).
    num_threads
        Per-query connection partitioning (paper §3.2 simulated cores).
        Also the core count used to build the distance table.
    strategy
        Partition strategy, a
        :data:`~repro.core.partition.PARTITION_STRATEGIES` key.
    queue
        Priority queue of the ``python`` kernel (ignored by ``flat``).
    backend / workers
        How batched workloads distribute whole queries over a pool
        (:data:`~repro.query.batch.BATCH_BACKENDS`).
    result_cache_size
        Capacity of the per-service LRU cache over profile / journey /
        batch answers (:mod:`repro.service.cache`); ``0`` disables
        caching.  Runtime-only: it never shapes prepared artifacts.

    Prepared artifacts
    ------------------
    use_distance_table
        Build the transfer-station distance table at preparation time
        (paper §4); off by default because the table pays off only on
        query-heavy workloads.
    transfer_selection / transfer_fraction / min_degree
        How ``S_trans`` is chosen when the table is on: ``contraction``
        keeps the ``transfer_fraction`` share of stations surviving
        station-graph contraction longest, ``degree`` keeps stations of
        degree > ``min_degree``.

    Pruning toggles
    ---------------
    ``stopping`` (Theorem 2), ``table_pruning`` (Theorem 3),
    ``target_pruning`` (Theorem 4), ``self_pruning`` (§3.1) — on by
    default, exposed for ablations.
    """

    kernel: str = "flat"
    num_threads: int = 1
    strategy: str = "equal-connections"
    queue: str = "binary"
    backend: str = "serial"
    workers: int = 4
    result_cache_size: int = 128
    use_distance_table: bool = False
    transfer_selection: str = "contraction"
    transfer_fraction: float = 0.05
    min_degree: int = 2
    stopping: bool = True
    table_pruning: bool = True
    target_pruning: bool = True
    self_pruning: bool = True

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from {KERNELS}"
            )
        if self.backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {BATCH_BACKENDS}"
            )
        if self.strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {self.strategy!r}; "
                f"choose from {sorted(PARTITION_STRATEGIES)}"
            )
        if self.queue not in QUEUE_FACTORIES:
            raise ValueError(
                f"unknown queue {self.queue!r}; "
                f"choose from {sorted(QUEUE_FACTORIES)}"
            )
        if self.transfer_selection not in SELECTION_METHODS:
            raise ValueError(
                f"unknown transfer selection {self.transfer_selection!r}; "
                f"choose from {SELECTION_METHODS}"
            )
        if self.num_threads < 1:
            raise ValueError(
                f"need at least one thread, got {self.num_threads}"
            )
        if self.workers < 1:
            raise ValueError(
                f"need at least one worker, got {self.workers}"
            )
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be non-negative, "
                f"got {self.result_cache_size}"
            )
        if not (0.0 <= self.transfer_fraction <= 1.0):
            raise ValueError(
                f"transfer_fraction must be within [0, 1], "
                f"got {self.transfer_fraction}"
            )
        if self.min_degree < 0:
            raise ValueError(
                f"min_degree must be non-negative, got {self.min_degree}"
            )

    def with_overrides(self, **changes) -> "ServiceConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)
