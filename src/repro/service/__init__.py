"""Service layer: the prepare-once / query-many facade (ROADMAP north
star — the seam every scaling feature plugs into).

* :mod:`repro.service.config` — :class:`ServiceConfig`, the typed,
  eagerly validated knob set.
* :mod:`repro.service.prepare` — :func:`prepare_dataset` and the
  :class:`PreparedDataset` artifact snapshot with
  :class:`PrepareStats` accounting.
* :mod:`repro.service.model` — typed requests
  (:class:`ProfileRequest`, :class:`JourneyRequest`,
  :class:`BatchRequest`) and responses (:class:`ProfileResult`,
  :class:`JourneyResult`, :class:`BatchResponse`, :class:`QueryStats`,
  :class:`JourneyLeg`).
* :mod:`repro.service.journeys` — leg reconstruction for concrete
  departure times.
* :mod:`repro.service.cache` — the per-service LRU result cache
  (:class:`LRUResultCache`, :class:`CacheStats`).
* :mod:`repro.service.facade` — :class:`TransitService` itself,
  including persistence (``save``/``load`` over :mod:`repro.store`).

See ``docs/API.md`` for the lifecycle walk-through.
"""

from repro.service.cache import CacheStats, LRUResultCache
from repro.service.config import (
    RUNTIME_FIELDS,
    SELECTION_METHODS,
    ServiceConfig,
)
from repro.service.facade import TransitService
from repro.service.journeys import reconstruct_legs
from repro.service.model import (
    BatchRequest,
    BatchResponse,
    JourneyLeg,
    JourneyRequest,
    JourneyResult,
    MinTransfersRequest,
    MinTransfersResult,
    MulticriteriaRequest,
    MulticriteriaResult,
    ParetoOption,
    ProfileRequest,
    ProfileResult,
    QueryStats,
    ViaRequest,
    ViaResult,
)
from repro.service.prepare import (
    PreparedDataset,
    PrepareStats,
    prepare_dataset,
)

__all__ = [
    "RUNTIME_FIELDS",
    "SELECTION_METHODS",
    "ServiceConfig",
    "CacheStats",
    "LRUResultCache",
    "TransitService",
    "reconstruct_legs",
    "BatchRequest",
    "BatchResponse",
    "JourneyLeg",
    "JourneyRequest",
    "JourneyResult",
    "MinTransfersRequest",
    "MinTransfersResult",
    "MulticriteriaRequest",
    "MulticriteriaResult",
    "ParetoOption",
    "ProfileRequest",
    "ProfileResult",
    "QueryStats",
    "ViaRequest",
    "ViaResult",
    "PreparedDataset",
    "PrepareStats",
    "prepare_dataset",
]
