"""Core timetable data types (paper §2).

A periodic timetable is ``(C, S, Z, Π, T)``:

* ``S`` — stations, each with a minimum transfer time ``T(S)``;
* ``Z`` — trains;
* ``C`` — elementary connections ``c = (Z, S_dep, S_arr, τ_dep, τ_arr)``;
* ``Π = {0..π−1}`` — discrete time points.

Stations, trains and connections are identified by dense integer ids so
the graph layer can use flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.timetable.periodic import DAY_MINUTES, delta, format_time


@dataclass(frozen=True, slots=True)
class Station:
    """A station ``S ∈ S`` with its minimum transfer time ``T(S)``.

    ``transfer_time`` is the number of minutes required to change
    between trains at this station.
    """

    id: int
    name: str
    transfer_time: int = 5

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"station id must be non-negative, got {self.id}")
        if self.transfer_time < 0:
            raise ValueError(
                f"transfer time must be non-negative, got {self.transfer_time}"
            )


@dataclass(frozen=True, slots=True)
class Train:
    """A train ``Z ∈ Z``.  Trains sharing a station sequence form a route."""

    id: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"train id must be non-negative, got {self.id}")


@dataclass(frozen=True, slots=True)
class Connection:
    """An elementary connection ``c = (Z, S_dep, S_arr, τ_dep, τ_arr)``.

    ``dep_time ∈ Π`` while ``arr_time ∈ N0`` may exceed the period
    (a train arriving after midnight).  ``arr_time ≥ dep_time`` always
    holds in the stored (absolute) form.
    """

    train: int
    dep_station: int
    arr_station: int
    dep_time: int
    arr_time: int

    def __post_init__(self) -> None:
        if self.dep_time < 0:
            raise ValueError(f"departure time must be ≥ 0, got {self.dep_time}")
        if self.arr_time < self.dep_time:
            raise ValueError(
                f"arrival {self.arr_time} precedes departure {self.dep_time}"
            )
        if self.dep_station == self.arr_station:
            raise ValueError(
                f"self-loop connection at station {self.dep_station}"
            )

    @property
    def duration(self) -> int:
        """Travel time ``Δ(τ_dep, τ_arr)`` of this connection."""
        return self.arr_time - self.dep_time

    def describe(self) -> str:
        """Human-readable one-liner used by examples and the CLI."""
        return (
            f"train {self.train}: station {self.dep_station} "
            f"{format_time(self.dep_time)} -> station {self.arr_station} "
            f"{format_time(self.arr_time)}"
        )


@dataclass(frozen=True, slots=True)
class Route:
    """A route: the equivalence class of trains sharing a station sequence.

    ``stations`` is the ordered station-id sequence; ``trains`` the ids of
    member trains.
    """

    id: int
    stations: tuple[int, ...]
    trains: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.stations) < 2:
            raise ValueError(
                f"route {self.id} must visit at least 2 stations, "
                f"got {len(self.stations)}"
            )
        if not self.trains:
            raise ValueError(f"route {self.id} has no trains")

    @property
    def num_legs(self) -> int:
        """Number of consecutive station pairs along the route."""
        return len(self.stations) - 1


@dataclass(slots=True)
class Timetable:
    """A full periodic timetable ``(C, S, Z, Π, T)``.

    ``stations`` and ``trains`` are indexed by their dense ids;
    ``connections`` is unordered on construction (the graph builder sorts
    per edge).  ``period`` is the periodicity ``π``.
    """

    stations: list[Station]
    trains: list[Train]
    connections: list[Connection]
    period: int = DAY_MINUTES
    name: str = "unnamed"
    _conn_by_dep_station: dict[int, list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_stations(self) -> int:
        return len(self.stations)

    @property
    def num_trains(self) -> int:
        return len(self.trains)

    @property
    def num_connections(self) -> int:
        return len(self.connections)

    def transfer_time(self, station: int) -> int:
        """Minimum transfer time ``T(S)`` at the given station."""
        return self.stations[station].transfer_time

    def delta(self, tau1: int, tau2: int) -> int:
        """Cyclic length ``Δ(τ1, τ2)`` under this timetable's period."""
        return delta(tau1, tau2, self.period)

    def outgoing_connections(self, station: int) -> list[Connection]:
        """``conn(S)``: all elementary connections departing ``station``,
        ordered non-decreasingly by departure time (paper §3.1).

        The per-station index is built lazily on first use and cached.
        """
        if self._conn_by_dep_station is None:
            index: dict[int, list[int]] = {}
            order = sorted(
                range(len(self.connections)),
                key=lambda k: (
                    self.connections[k].dep_time,
                    self.connections[k].arr_time,
                    k,
                ),
            )
            for k in order:
                index.setdefault(self.connections[k].dep_station, []).append(k)
            self._conn_by_dep_station = index
        ids = self._conn_by_dep_station.get(station, [])
        return [self.connections[k] for k in ids]

    def connections_per_station(self) -> float:
        """Density figure the paper uses to contrast bus vs rail networks."""
        if not self.stations:
            return 0.0
        return len(self.connections) / len(self.stations)

    def station_pairs(self) -> Iterator[tuple[int, int]]:
        """Distinct ordered station pairs served by at least one connection."""
        seen: set[tuple[int, int]] = set()
        for c in self.connections:
            pair = (c.dep_station, c.arr_station)
            if pair not in seen:
                seen.add(pair)
                yield pair

    def summary(self) -> str:
        """Multi-line summary used by the CLI's ``info`` command."""
        return (
            f"timetable {self.name!r}: {self.num_stations} stations, "
            f"{self.num_trains} trains, {self.num_connections} connections, "
            f"period {self.period} min, "
            f"{self.connections_per_station():.1f} connections/station"
        )


def stations_of(connections: Sequence[Connection]) -> set[int]:
    """All station ids touched by a set of connections."""
    out: set[int] = set()
    for c in connections:
        out.add(c.dep_station)
        out.add(c.arr_station)
    return out
