"""GTFS-like feed reader and writer.

The paper sources its city networks from Google Transit Data Feeds
(GTFS).  Real feeds are not redistributable here, so this module speaks
a minimal, faithful subset of GTFS — ``stops.txt``, ``trips.txt`` and
``stop_times.txt`` as CSV files in a directory — which both real feeds
and our synthetic generators can produce.

Subset semantics:

* ``stops.txt``: ``stop_id,stop_name[,min_transfer_time]`` — transfer
  time in minutes (GTFS proper puts this in ``transfers.txt``; we accept
  the inline column for self-containment, defaulting to 5).
* ``trips.txt``: ``trip_id[,trip_name]``.
* ``stop_times.txt``: ``trip_id,stop_sequence,stop_id,departure_time``
  with ``HH:MM[:SS]`` times; hours may exceed 23 for after-midnight
  stops, as in real GTFS.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.timetable.periodic import DAY_MINUTES, format_time, parse_time
from repro.timetable.builder import TimetableBuilder
from repro.timetable.types import Timetable


def load_gtfs(directory: str | Path, *, period: int = DAY_MINUTES, name: str | None = None) -> Timetable:
    """Load a GTFS-like feed directory into a :class:`Timetable`."""
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"GTFS directory not found: {root}")
    for required in ("stops.txt", "trips.txt", "stop_times.txt"):
        if not (root / required).exists():
            raise FileNotFoundError(f"missing {required} in {root}")

    builder = TimetableBuilder(period=period, name=name or root.name)

    stop_ids: dict[str, int] = {}
    with open(root / "stops.txt", newline="") as handle:
        for row in csv.DictReader(handle):
            transfer = int(row.get("min_transfer_time") or 5)
            stop_ids[row["stop_id"]] = builder.add_station(
                row.get("stop_name") or row["stop_id"], transfer_time=transfer
            )

    trip_names: dict[str, str] = {}
    with open(root / "trips.txt", newline="") as handle:
        for row in csv.DictReader(handle):
            trip_names[row["trip_id"]] = row.get("trip_name") or row["trip_id"]

    stop_times: dict[str, list[tuple[int, int, int]]] = {}
    with open(root / "stop_times.txt", newline="") as handle:
        for row in csv.DictReader(handle):
            trip_id = row["trip_id"]
            if trip_id not in trip_names:
                raise ValueError(f"stop_times references unknown trip {trip_id!r}")
            stop_id = row["stop_id"]
            if stop_id not in stop_ids:
                raise ValueError(f"stop_times references unknown stop {stop_id!r}")
            stop_times.setdefault(trip_id, []).append(
                (
                    int(row["stop_sequence"]),
                    stop_ids[stop_id],
                    parse_time(row["departure_time"]),
                )
            )

    for trip_id in sorted(stop_times):
        entries = sorted(stop_times[trip_id])
        stops = [(station, tau) for _seq, station, tau in entries]
        builder.add_trip(stops, name=trip_names[trip_id])

    return builder.build()


def save_gtfs(timetable: Timetable, directory: str | Path) -> None:
    """Write a timetable as a GTFS-like feed directory.

    Round-trips through :func:`load_gtfs` (up to dwell-time folding: a
    trip's intermediate arrival and departure coincide).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    with open(root / "stops.txt", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["stop_id", "stop_name", "min_transfer_time"])
        for station in timetable.stations:
            writer.writerow([f"S{station.id}", station.name, station.transfer_time])

    with open(root / "trips.txt", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trip_id", "trip_name"])
        for train in timetable.trains:
            writer.writerow([f"T{train.id}", train.name])

    by_train: dict[int, list] = {}
    for c in timetable.connections:
        by_train.setdefault(c.train, []).append(c)

    with open(root / "stop_times.txt", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trip_id", "stop_sequence", "stop_id", "departure_time"])
        for train_id in sorted(by_train):
            # Connections are stored in travel order (see
            # repro.timetable.routes); a trip crossing midnight has
            # smaller *normalized* departures on its late legs, so we
            # lift each onto a monotone absolute clock before writing.
            conns = by_train[train_id]
            seq = 0
            clock = conns[0].dep_time
            for c in conns:
                dep_abs = clock + (c.dep_time - clock) % timetable.period
                writer.writerow(
                    [f"T{train_id}", seq, f"S{c.dep_station}", format_time(dep_abs)]
                )
                seq += 1
                clock = dep_abs + c.duration
            last = conns[-1]
            writer.writerow(
                [f"T{train_id}", seq, f"S{last.arr_station}", format_time(clock)]
            )
