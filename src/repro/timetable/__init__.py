"""Periodic timetable model (paper §2).

A periodic timetable is a tuple ``(C, S, Z, Π, T)``: elementary
connections, stations, trains, discrete time points, and per-station
minimum transfer times.  This package provides the data model, periodic
time arithmetic, route partitioning, validation, a fluent builder, and
GTFS-like CSV input/output.
"""

from repro.timetable.periodic import (
    DAY_MINUTES,
    PeriodicTime,
    delta,
    format_time,
    normalize,
    parse_time,
)
from repro.timetable.types import (
    Connection,
    Route,
    Station,
    Timetable,
    Train,
)
from repro.timetable.routes import partition_routes
from repro.timetable.builder import TimetableBuilder
from repro.timetable.delays import Delay, apply_delays, train_lateness_profile
from repro.timetable.validation import (
    TimetableError,
    validate_timetable,
)

__all__ = [
    "DAY_MINUTES",
    "PeriodicTime",
    "delta",
    "normalize",
    "parse_time",
    "format_time",
    "Station",
    "Train",
    "Connection",
    "Route",
    "Timetable",
    "partition_routes",
    "TimetableBuilder",
    "Delay",
    "apply_delays",
    "train_lateness_profile",
    "TimetableError",
    "validate_timetable",
]
