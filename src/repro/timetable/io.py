"""Binary-ish JSON serialization of timetables.

A compact single-file format used for caching generated instances and
shipping fixtures between test processes.  GTFS-like directories remain
the interchange format (:mod:`repro.timetable.gtfs`); this one is for
speed and exactness (no time re-parsing).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.timetable.types import Connection, Station, Timetable, Train

FORMAT_VERSION = 1


def timetable_to_dict(timetable: Timetable) -> dict:
    """Lossless dict form of a timetable (JSON-serializable)."""
    return {
        "format_version": FORMAT_VERSION,
        "name": timetable.name,
        "period": timetable.period,
        "stations": [
            [s.id, s.name, s.transfer_time] for s in timetable.stations
        ],
        "trains": [[t.id, t.name] for t in timetable.trains],
        "connections": [
            [c.train, c.dep_station, c.arr_station, c.dep_time, c.arr_time]
            for c in timetable.connections
        ],
    }


def timetable_from_dict(data: dict) -> Timetable:
    """Inverse of :func:`timetable_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported timetable format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return Timetable(
        stations=[
            Station(id=sid, name=name, transfer_time=transfer)
            for sid, name, transfer in data["stations"]
        ],
        trains=[Train(id=tid, name=name) for tid, name in data["trains"]],
        connections=[
            Connection(
                train=train,
                dep_station=dep_station,
                arr_station=arr_station,
                dep_time=dep_time,
                arr_time=arr_time,
            )
            for train, dep_station, arr_station, dep_time, arr_time in data[
                "connections"
            ]
        ],
        period=data["period"],
        name=data.get("name", "unnamed"),
    )


def save_timetable(timetable: Timetable, path: str | Path) -> None:
    """Write a timetable to a JSON file."""
    Path(path).write_text(json.dumps(timetable_to_dict(timetable)))


def load_timetable(path: str | Path) -> Timetable:
    """Read a timetable from a JSON file written by :func:`save_timetable`."""
    return timetable_from_dict(json.loads(Path(path).read_text()))
