"""Delay injection — the fully dynamic scenario (paper §5.1).

The paper notes that because SPCS needs *no preprocessing*, it "can
directly be used in a fully dynamic scenario as discussed in [20]"
(Müller-Hannemann, Schnee, Frede: on-trip timetable information under
delays).  This module provides that scenario: apply primary delays to
trains and obtain an updated timetable on which any query runs
unchanged.

Semantics:

* a **primary delay** hits one train at one of its stops: every
  departure/arrival from that stop onward shifts by the delay;
* optional **slack recovery**: each subsequent leg may catch up
  ``slack`` minutes (padding in real schedules), shrinking the delay
  downstream;
* delayed trains keep their route (same station sequence), so the graph
  topology is unchanged — only route-edge travel-time functions differ,
  which is why no preprocessing has to be repeated;
* a delayed train may overtake or be overtaken by its siblings: the
  resulting leg can violate FIFO, which the search stack handles (the
  edge evaluation takes the lower envelope; see
  ``tests/core/test_robustness.py``).

Composition rule (pinned by ``tests/timetable/test_delays.py``):

* **Within one batch**, the order of the ``delays`` list never
  matters: each leg sums the minutes of every delay anchored at it
  (addition commutes), and only then applies slack downstream.  Two
  delays on the *same train* — even at the same stop — are additive.
* **Across batches**, lateness resets per call: applying batch A then
  batch B to the result equals one combined batch **iff no batch
  carries slack** (``slack_per_leg == 0``), because slack's
  ``max(0, late - slack)`` clamp is non-linear in the accumulated
  lateness.  Slack-free batches therefore coalesce exactly —
  bitwise — which is what lets the fleet gateway collapse a replay
  log into one bounded catch-up post
  (:func:`repro.fleet.catchup.coalesce_delay_log`); a slack-bearing
  batch is a sequencing barrier and must be replayed in place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timetable.types import Connection, Timetable


@dataclass(frozen=True, slots=True)
class Delay:
    """A primary delay: ``train`` is late by ``minutes`` starting at its
    ``from_stop``-th departure (0 = the train's first departure)."""

    train: int
    minutes: int
    from_stop: int = 0

    def __post_init__(self) -> None:
        if self.minutes < 0:
            raise ValueError(f"delay must be non-negative, got {self.minutes}")
        if self.from_stop < 0:
            raise ValueError(f"from_stop must be non-negative, got {self.from_stop}")


def apply_delays(
    timetable: Timetable,
    delays: list[Delay] | tuple[Delay, ...],
    *,
    slack_per_leg: int = 0,
) -> Timetable:
    """Return a new timetable with the given primary delays applied.

    ``slack_per_leg`` minutes of the remaining delay are recovered on
    every leg after the delayed stop (never below zero).  Every delay
    is validated against its train's run: ``from_stop`` must name one
    of the train's actual departures (a delay at or past the last leg
    would silently change nothing).  The input timetable is not
    modified.  Connections keep their travel order;
    departures are re-normalized into ``Π`` by the Connection layer's
    wrap-aware semantics (a heavily delayed night train simply wraps
    into the next period, as in reality).
    """
    if slack_per_leg < 0:
        raise ValueError(f"slack must be non-negative, got {slack_per_leg}")
    run_length: dict[int, int] = {}
    for c in timetable.connections:
        run_length[c.train] = run_length.get(c.train, 0) + 1
    for delay in delays:
        if not (0 <= delay.train < timetable.num_trains):
            raise ValueError(f"unknown train {delay.train}")
        # A train with k legs departs at stops 0..k-1; a from_stop at or
        # past the last departure would silently delay nothing.
        legs = run_length.get(delay.train, 0)
        if delay.from_stop >= legs:
            where = f"stops 0..{legs - 1}" if legs else "no connections"
            raise ValueError(
                f"from_stop {delay.from_stop} out of range for train "
                f"{delay.train} ({where})"
            )

    pending: dict[int, list[Delay]] = {}
    for delay in delays:
        pending.setdefault(delay.train, []).append(delay)

    # Track, per train, the index of the connection being emitted and the
    # current accumulated lateness.
    progress: dict[int, int] = {}
    lateness: dict[int, int] = {}

    new_connections: list[Connection] = []
    for c in timetable.connections:
        stop_index = progress.get(c.train, 0)
        progress[c.train] = stop_index + 1

        # Recover slack on carried lateness first (a leg can only catch
        # up delay it already has), then add delays starting here.
        late = lateness.get(c.train, 0)
        if late > 0 and slack_per_leg:
            late = max(0, late - slack_per_leg)
        for delay in pending.get(c.train, ()):
            if delay.from_stop == stop_index:
                late += delay.minutes
        lateness[c.train] = late

        if late == 0:
            new_connections.append(c)
            continue
        dep = c.dep_time + late
        new_connections.append(
            Connection(
                train=c.train,
                dep_station=c.dep_station,
                arr_station=c.arr_station,
                dep_time=dep % timetable.period,
                arr_time=dep % timetable.period + c.duration,
            )
        )

    return Timetable(
        stations=list(timetable.stations),
        trains=list(timetable.trains),
        connections=new_connections,
        period=timetable.period,
        name=f"{timetable.name}+delays",
    )


def train_lateness_profile(
    timetable: Timetable, delayed: Timetable, train: int
) -> list[int]:
    """Per-leg lateness of ``train`` between two timetables (minutes).

    Useful diagnostics for tests and the example: entry ``k`` is the
    departure shift of the train's ``k``-th leg (wrap-aware).
    """
    before = [c for c in timetable.connections if c.train == train]
    after = [c for c in delayed.connections if c.train == train]
    if len(before) != len(after):
        raise ValueError("timetables disagree on the train's run length")
    period = timetable.period
    return [
        (a.dep_time - b.dep_time) % period for a, b in zip(after, before)
    ]
