"""Timetable validation.

Checks the structural invariants the algorithms rely on: dense ids,
times inside the period for departures, chainable train runs, and the
FIFO property of every route edge (paper §2 notes all evaluated
networks are FIFO).
"""

from __future__ import annotations

from repro.timetable.routes import connections_by_route_leg, partition_routes
from repro.timetable.types import Timetable


class TimetableError(ValueError):
    """Raised when a timetable violates a structural invariant."""


def validate_timetable(timetable: Timetable, *, require_fifo: bool = True) -> None:
    """Validate a timetable, raising :class:`TimetableError` on violation.

    Checks:

    * station/train ids are dense and match list positions;
    * connection endpoints reference existing stations and trains;
    * departure times lie in ``Π``; durations are positive and < period;
    * each train's connections form a simple chain in time;
    * (optionally) every route edge fulfils the FIFO property: a later
      departure on the same leg never arrives strictly earlier.
    """
    if timetable.period <= 0:
        raise TimetableError(f"period must be positive, got {timetable.period}")

    for idx, station in enumerate(timetable.stations):
        if station.id != idx:
            raise TimetableError(
                f"station at position {idx} has id {station.id}; ids must be dense"
            )
    for idx, train in enumerate(timetable.trains):
        if train.id != idx:
            raise TimetableError(
                f"train at position {idx} has id {train.id}; ids must be dense"
            )

    num_stations = timetable.num_stations
    num_trains = timetable.num_trains
    for c in timetable.connections:
        if not (0 <= c.dep_station < num_stations):
            raise TimetableError(f"connection departs unknown station: {c}")
        if not (0 <= c.arr_station < num_stations):
            raise TimetableError(f"connection arrives at unknown station: {c}")
        if not (0 <= c.train < num_trains):
            raise TimetableError(f"connection references unknown train: {c}")
        if not (0 <= c.dep_time < timetable.period):
            raise TimetableError(
                f"departure time {c.dep_time} outside Π=[0,{timetable.period}): {c}"
            )
        if c.duration <= 0:
            raise TimetableError(f"non-positive duration: {c}")
        if c.duration >= timetable.period:
            raise TimetableError(
                f"duration {c.duration} ≥ period {timetable.period}: {c}"
            )

    # Chainability (raises ValueError with a precise message on failure).
    try:
        routes = partition_routes(timetable)
        legs = connections_by_route_leg(timetable, routes)
    except ValueError as exc:
        raise TimetableError(str(exc)) from None

    if require_fifo:
        for (route_id, leg), conns in legs.items():
            for earlier, later in zip(conns, conns[1:]):
                if later.arr_time < earlier.arr_time:
                    raise TimetableError(
                        f"route {route_id} leg {leg} violates FIFO: "
                        f"{later} overtakes {earlier}"
                    )


def is_valid(timetable: Timetable, *, require_fifo: bool = True) -> bool:
    """Boolean convenience wrapper around :func:`validate_timetable`."""
    try:
        validate_timetable(timetable, require_fifo=require_fifo)
    except TimetableError:
        return False
    return True
