"""Periodic time arithmetic (paper §2).

The timetable operates on a finite set of discrete time points
``Π = {0, ..., π − 1}`` (think of a day's minutes).  Durations and
arrival times may exceed ``π`` (a train arriving after midnight), so two
kinds of values coexist:

* *time points* in ``Π`` — departure times within the period;
* *absolute times* in ``N0`` — arrival labels along a path, unbounded.

The length between two time points is the cyclic difference

    Δ(τ1, τ2) = τ2 − τ1        if τ2 ≥ τ1
                π + τ2 − τ1    otherwise

which is **not** symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default periodicity: one day in minutes.
DAY_MINUTES = 1440

#: Sentinel for "unreachable" arrival labels.  Chosen so that adding any
#: realistic duration never overflows int64 in numpy arrays.
INF_TIME = 2**62


def normalize(tau: int, period: int = DAY_MINUTES) -> int:
    """Reduce an absolute time to its time point in ``Π``.

    >>> normalize(1500)
    60
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    return tau % period


def delta(tau1: int, tau2: int, period: int = DAY_MINUTES) -> int:
    """Cyclic length ``Δ(τ1, τ2)`` between two time points (paper §2).

    Both arguments are reduced mod ``period`` first so absolute times may
    be passed directly.  The result is in ``[0, period)``.

    >>> delta(100, 160)
    60
    >>> delta(1400, 20)   # wraps past midnight
    60
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    return (tau2 - tau1) % period


def parse_time(text: str, period: int = DAY_MINUTES) -> int:
    """Parse ``"HH:MM"`` (or ``"HH:MM:SS"``, seconds discarded) to minutes.

    Hours ≥ 24 are allowed, matching GTFS conventions for after-midnight
    trips; the returned value is *not* normalized.  The seconds field,
    when present, is validated (numeric, in ``[0, 60)``) even though it
    does not contribute to the minute resolution — a malformed field
    means corrupt input, not sub-minute precision to drop.

    >>> parse_time("08:30")
    510
    >>> parse_time("25:15")
    1515
    >>> parse_time("08:30:45")
    510
    """
    parts = text.strip().split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"cannot parse time {text!r}; expected HH:MM[:SS]")
    try:
        hours, minutes = int(parts[0]), int(parts[1])
        seconds = int(parts[2]) if len(parts) == 3 else 0
    except ValueError as exc:
        raise ValueError(f"cannot parse time {text!r}: {exc}") from None
    if not 0 <= minutes < 60:
        raise ValueError(f"minutes out of range in {text!r}")
    if not 0 <= seconds < 60:
        raise ValueError(f"seconds out of range in {text!r}")
    if hours < 0:
        raise ValueError(f"negative hours in {text!r}")
    return hours * 60 + minutes


def format_time(tau: int) -> str:
    """Render minutes as ``"HH:MM"`` (hours may exceed 23).

    >>> format_time(510)
    '08:30'
    """
    if tau < 0:
        raise ValueError(f"cannot format negative time {tau}")
    return f"{tau // 60:02d}:{tau % 60:02d}"


@dataclass(frozen=True, slots=True)
class PeriodicTime:
    """A time point bound to a periodicity, with cyclic operators.

    A convenience wrapper used by examples and the CLI; the hot
    algorithm paths use plain ints for speed.
    """

    value: int
    period: int = DAY_MINUTES

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        object.__setattr__(self, "value", self.value % self.period)

    def until(self, other: "PeriodicTime | int") -> int:
        """Cyclic distance from self to ``other`` (``Δ(self, other)``)."""
        other_value = other.value if isinstance(other, PeriodicTime) else other
        return delta(self.value, other_value, self.period)

    def shifted(self, minutes: int) -> "PeriodicTime":
        """Return this time advanced by ``minutes`` (mod period)."""
        return PeriodicTime(self.value + minutes, self.period)

    def __str__(self) -> str:
        return format_time(self.value)
