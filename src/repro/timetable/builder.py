"""Fluent construction of timetables.

:class:`TimetableBuilder` assigns dense ids, supports named stations,
and offers ``add_trip`` to lay down a whole train run at once — the
primary way tests, examples and the synthetic generators create
timetables.
"""

from __future__ import annotations

from typing import Sequence

from repro.timetable.periodic import DAY_MINUTES
from repro.timetable.types import Connection, Station, Timetable, Train
from repro.timetable.validation import validate_timetable


class TimetableBuilder:
    """Incrementally build a :class:`~repro.timetable.types.Timetable`.

    Example::

        builder = TimetableBuilder(name="toy")
        a = builder.add_station("A", transfer_time=2)
        b = builder.add_station("B")
        builder.add_trip([(a, 480), (b, 495)], name="bus-1")
        timetable = builder.build()
    """

    def __init__(self, *, period: int = DAY_MINUTES, name: str = "unnamed") -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._period = period
        self._name = name
        self._stations: list[Station] = []
        self._station_ids: dict[str, int] = {}
        self._trains: list[Train] = []
        self._connections: list[Connection] = []

    @property
    def num_stations(self) -> int:
        return len(self._stations)

    @property
    def num_trains(self) -> int:
        return len(self._trains)

    def iter_connections(self):
        """Read-only view of the connections added so far (generators use
        this to reason about connectivity before building)."""
        return iter(self._connections)

    def add_station(self, name: str | None = None, *, transfer_time: int = 5) -> int:
        """Register a station; returns its dense id.

        Re-adding an existing name returns the existing id (the transfer
        time must then agree).
        """
        if name is None:
            name = f"station-{len(self._stations)}"
        if name in self._station_ids:
            sid = self._station_ids[name]
            if self._stations[sid].transfer_time != transfer_time:
                raise ValueError(
                    f"station {name!r} already exists with transfer time "
                    f"{self._stations[sid].transfer_time}, got {transfer_time}"
                )
            return sid
        station = Station(id=len(self._stations), name=name, transfer_time=transfer_time)
        self._stations.append(station)
        self._station_ids[name] = station.id
        return station.id

    def station_id(self, name: str) -> int:
        """Look up a station id by name."""
        try:
            return self._station_ids[name]
        except KeyError:
            raise KeyError(f"unknown station {name!r}") from None

    def add_train(self, name: str = "") -> int:
        """Register a train; returns its dense id."""
        train = Train(id=len(self._trains), name=name or f"train-{len(self._trains)}")
        self._trains.append(train)
        return train.id

    def add_connection(
        self, train: int, dep_station: int, arr_station: int, dep_time: int, arr_time: int
    ) -> None:
        """Add a single elementary connection.

        ``dep_time`` is normalized into ``Π``; ``arr_time`` is shifted by
        the same amount so the duration is preserved.
        """
        if not (0 <= train < len(self._trains)):
            raise ValueError(f"unknown train id {train}")
        for station in (dep_station, arr_station):
            if not (0 <= station < len(self._stations)):
                raise ValueError(f"unknown station id {station}")
        shift = (dep_time % self._period) - dep_time
        self._connections.append(
            Connection(
                train=train,
                dep_station=dep_station,
                arr_station=arr_station,
                dep_time=dep_time + shift,
                arr_time=arr_time + shift,
            )
        )

    def add_trip(self, stops: Sequence[tuple[int, int]], *, name: str = "") -> int:
        """Lay down a full train run.

        ``stops`` is a sequence of ``(station_id, time)`` pairs; the train
        departs each stop at its listed time and arrives at the next stop
        at that stop's time.  Dwell time at intermediate stops is folded
        into the leg (the realistic model attaches transfer costs at
        stations, not on route legs).  Returns the new train's id.
        """
        if len(stops) < 2:
            raise ValueError(f"a trip needs at least 2 stops, got {len(stops)}")
        train = self.add_train(name)
        for (s1, t1), (s2, t2) in zip(stops, stops[1:]):
            if t2 <= t1:
                raise ValueError(
                    f"trip {name!r} does not move forward in time: "
                    f"{t1} -> {t2} between stations {s1} and {s2}"
                )
            self.add_connection(train, s1, s2, t1, t2)
        return train

    def build(self, *, validate: bool = True, require_fifo: bool = True) -> Timetable:
        """Finalize into an immutable-ish :class:`Timetable`."""
        timetable = Timetable(
            stations=list(self._stations),
            trains=list(self._trains),
            connections=list(self._connections),
            period=self._period,
            name=self._name,
        )
        if validate:
            validate_timetable(timetable, require_fifo=require_fifo)
        return timetable
