"""Route partitioning (paper §2).

The set ``Z`` of trains is partitioned into *routes*: two trains are
equivalent iff they run through the same sequence of stations.  Route
nodes in the realistic time-dependent model correspond 1:1 to
(route, station) pairs produced here.

Ordering invariant: a train's elementary connections appear in **travel
order** in ``Timetable.connections`` (the builder and all loaders emit
them this way).  Departure times are periodic (``τ_dep ∈ Π``), so a
trip crossing midnight has a *smaller* normalized departure on its late
legs — travel order cannot be reconstructed by sorting on time points,
which is why the list order is authoritative.  Chain consistency is
verified with wrap-aware arithmetic.
"""

from __future__ import annotations

from collections import defaultdict

from repro.timetable.types import Connection, Route, Timetable


def train_station_sequences(
    timetable: Timetable,
) -> dict[int, tuple[int, ...]]:
    """Each train's ordered station sequence, from its connections in
    travel (list) order.

    Raises ``ValueError`` if a train's connections do not form a single
    station-chained run that moves forward in (wrap-aware) time.
    """
    by_train: dict[int, list[Connection]] = defaultdict(list)
    for c in timetable.connections:
        by_train[c.train].append(c)

    period = timetable.period
    sequences: dict[int, tuple[int, ...]] = {}
    for train_id, conns in by_train.items():
        seq = [conns[0].dep_station]
        # Unwrapped absolute clock along the run.
        clock = conns[0].dep_time
        for c in conns:
            if c.dep_station != seq[-1]:
                raise ValueError(
                    f"train {train_id} departs station {c.dep_station} but "
                    f"its previous stop was {seq[-1]}"
                )
            # Lift the periodic departure onto the unwrapped clock: the
            # next departure is the first occurrence of its time point
            # at or after the previous arrival.
            dep_abs = clock + (c.dep_time - clock) % period
            clock = dep_abs + c.duration
            seq.append(c.arr_station)
        sequences[train_id] = tuple(seq)
    return sequences


def partition_routes(timetable: Timetable) -> list[Route]:
    """Partition trains into routes by identical station sequences.

    Returns routes with dense ids ``0..r−1``, deterministically ordered by
    (sequence, first member train id) so repeated runs agree exactly.
    """
    sequences = train_station_sequences(timetable)
    groups: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for train_id in sorted(sequences):
        groups[sequences[train_id]].append(train_id)

    routes: list[Route] = []
    for seq in sorted(groups, key=lambda s: (s, groups[s][0])):
        routes.append(
            Route(id=len(routes), stations=seq, trains=tuple(groups[seq]))
        )
    return routes


def connections_by_route_leg(
    timetable: Timetable, routes: list[Route]
) -> dict[tuple[int, int], list[Connection]]:
    """Group elementary connections onto route legs.

    Key ``(route_id, leg_index)`` identifies the edge between the
    ``leg_index``-th and ``leg_index+1``-th station of the route; the
    value lists that leg's elementary connections, sorted by departure
    time point.  A train's k-th connection (in travel order) lands on
    leg k of its route.
    """
    route_of_train: dict[int, Route] = {}
    for route in routes:
        for train_id in route.trains:
            route_of_train[train_id] = route

    legs: dict[tuple[int, int], list[Connection]] = defaultdict(list)
    progress: dict[int, int] = defaultdict(int)
    for c in timetable.connections:
        route = route_of_train.get(c.train)
        if route is None:
            raise ValueError(f"connection references unknown train {c.train}")
        leg = progress[c.train]
        if leg >= route.num_legs or route.stations[leg] != c.dep_station:
            raise ValueError(
                f"connection {c} does not match route {route.id} at leg {leg}"
            )
        legs[(route.id, leg)].append(c)
        progress[c.train] += 1

    for conns in legs.values():
        conns.sort(key=lambda c: (c.dep_time, c.arr_time))
    return dict(legs)
