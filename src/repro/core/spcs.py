"""Self-pruning connection-setting profile search (paper §3.1).

One queue item per (node, connection-index) pair, keyed by arrival
time.  For each outgoing connection of the source the classic
label-setting property holds — *connection-setting* — so every pair is
settled at most once.  *Self-pruning* kills connection ``i`` at node
``v`` as soon as a later connection ``j > i`` has already settled ``v``
(it departs no earlier and arrives no later; Theorem 1).

The same routine implements the station-to-station machinery of §4
through two optional hooks:

* ``target`` — enables the stopping criterion (Theorem 2): per-target
  max settled index ``Tm``; every queue entry with ``i ≤ Tm`` is pruned.
* ``pruner`` — an object receiving settle events and deciding distance-
  table pruning (Theorems 3/4); see :mod:`repro.query.table_query`.
  Verdicts are the integer codes :data:`PRUNE_NONE` /
  :data:`PRUNE_NODE` / :data:`PRUNE_CONNECTION`, so any kernel that
  speaks integers can drive the same hook objects.

This module is the **reference implementation**: object-graph
adjacency, dataclass results, an addressable queue — optimized for
clarity and for being obviously equal to the paper's pseudocode.  The
performance twin is :mod:`repro.core.spcs_kernel`, which runs the same
algorithm over the packed flat-array graph
(:mod:`repro.graph.td_arrays`) with preallocated int64 label vectors
and a C heap; ``kernel="flat"`` in
:func:`~repro.core.parallel.parallel_profile_search` and the query
engines selects it.  ``tests/core/test_kernel_equivalence.py`` holds
the two implementations (and the label-correcting baseline) equal on
randomized instances; ``docs/KERNEL.md`` documents the layout and the
hook-to-verdict-code mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph
from repro.pq import QUEUE_FACTORIES


#: Pruner verdicts (see :class:`SettlePruner`).
PRUNE_NONE = 0  #: relax the node's edges normally
PRUNE_NODE = 1  #: drop this (node, connection) entry (Theorem 3)
PRUNE_CONNECTION = 2  #: stop the whole connection's search (Theorem 4)


class SettlePruner(Protocol):
    """Hook interface for distance-table pruning (paper §4).

    ``on_settle`` is called for every *live* settle event with the node,
    the global connection index, the arrival time, and
    ``ancestry_complete`` — True iff every remaining queue item of this
    connection already has a transfer station as ancestor, the validity
    condition of the γ lower bound in Theorem 4.  The verdict is one of
    the ``PRUNE_*`` codes above.  When returning
    :data:`PRUNE_CONNECTION`, the pruner is responsible for recording
    the final arrival at the target for this connection.
    """

    def on_settle(
        self, node: int, conn_index: int, arrival: int, ancestry_complete: bool
    ) -> int: ...


@dataclass(slots=True)
class SPCSStats:
    """Operation counters for one SPCS run (the paper's work measures)."""

    settled_connections: int = 0
    pruned_self: int = 0
    pruned_stopping: int = 0
    pruned_table: int = 0
    queue_pushes: int = 0
    relaxed_edges: int = 0


@dataclass(slots=True)
class SPCSResult:
    """Outcome of one (possibly partial) SPCS run.

    ``labels[u, k]`` is the final arrival at node ``u`` for the k-th
    connection *of this run's subset* (global index ``conn_indices[k]``);
    ``INF_TIME`` marks pruned or unreachable combinations.
    """

    source: int
    conn_indices: np.ndarray
    conn_deps: np.ndarray
    labels: np.ndarray
    stats: SPCSStats
    period: int

    def profile(self, station: int) -> Profile:
        """Reduced profile ``dist(S, station, ·)`` from this run alone."""
        return Profile.from_raw(self.conn_deps, self.labels[station], self.period)

    def arrival_vector(self, station: int) -> np.ndarray:
        """Raw per-connection arrivals at a station (this run's subset)."""
        return self.labels[station]


def spcs_profile_search(
    graph: TDGraph,
    source: int,
    *,
    connection_subset: Sequence[int] | None = None,
    self_pruning: bool = True,
    target: int | None = None,
    pruner: "SettlePruner | None" = None,
    transfer_stations: "np.ndarray | None" = None,
    queue: str = "binary",
) -> SPCSResult:
    """Run SPCS from station ``source``.

    Parameters
    ----------
    connection_subset:
        Global indices into ``conn(source)`` this run handles (a
        parallel thread's share).  Must be sorted ascending; defaults to
        all outgoing connections.
    self_pruning:
        Disable to measure the effect of Theorem 1 (ablation A-sp).
    target:
        Target *station* enabling the stopping criterion (§4).
    pruner:
        Distance-table pruning hook (§4); only sensible with ``target``.
    transfer_stations:
        Boolean mask over stations (``S_trans``).  When given together
        with ``pruner``, transfer-station ancestry is tracked per queue
        item so the pruner can apply target pruning (Theorem 4).
    queue:
        Priority-queue implementation name (see :mod:`repro.pq`).
    """
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if target is not None and not graph.is_station_node(target):
        raise ValueError(f"target must be a station node, got {target}")

    timetable = graph.timetable
    all_conns = timetable.outgoing_connections(source)
    if connection_subset is None:
        subset = list(range(len(all_conns)))
    else:
        subset = list(connection_subset)
        if any(subset[k] >= subset[k + 1] for k in range(len(subset) - 1)):
            raise ValueError("connection_subset must be strictly ascending")
        if subset and not (0 <= subset[0] and subset[-1] < len(all_conns)):
            raise ValueError(
                f"connection_subset out of range [0, {len(all_conns)})"
            )

    num_local = len(subset)
    num_nodes = graph.num_nodes
    conn_indices = np.asarray(subset, dtype=np.int64)
    conn_deps = np.asarray(
        [all_conns[g].dep_time for g in subset], dtype=np.int64
    )

    labels = np.full((num_nodes, num_local), INF_TIME, dtype=np.int64)
    stats = SPCSStats()
    result = SPCSResult(
        source=source,
        conn_indices=conn_indices,
        conn_deps=conn_deps,
        labels=labels,
        stats=stats,
        period=timetable.period,
    )
    if num_local == 0:
        return result

    # maxconn(v): highest *global* connection index settled at v so far.
    maxconn = np.full(num_nodes, -1, dtype=np.int64)
    settled = np.zeros((num_nodes, num_local), dtype=bool)
    pq = QUEUE_FACTORIES[queue]()
    adjacency = graph.adjacency

    # Queue items encode (node, local index) as node * num_local + k so
    # keys stay plain ints for every queue implementation.
    for k, g in enumerate(subset):
        c = all_conns[g]
        node = graph.source_route_node(c)
        item = node * num_local + k
        if c.dep_time < labels[node, k]:
            labels[node, k] = c.dep_time
            pq.push(item, c.dep_time)
            stats.queue_pushes += 1

    # Stopping criterion state (Theorem 2): highest global index settled
    # at the target station; entries with smaller-or-equal index prune.
    t_max = -1
    # Connections cut off by target pruning (Theorem 4).
    conn_stopped = np.zeros(num_local, dtype=bool) if pruner is not None else None
    # Transfer-station ancestry per tentative path (Theorem 4 validity):
    # anc[v, k] — the best-known path to (v, k) settled at a transfer
    # station on the way; no_anc_in_queue[k] — queue items still lacking
    # such an ancestor.  γ is a feasible lower bound once it hits zero.
    track_ancestry = pruner is not None and transfer_stations is not None
    if track_ancestry:
        anc = np.zeros((num_nodes, num_local), dtype=bool)
        no_anc_in_queue = np.zeros(num_local, dtype=np.int64)
        no_anc_in_queue[:] = 1  # one seed item per connection, no ancestor yet
        node_is_transfer = np.asarray(transfer_stations, dtype=bool)[
            np.asarray(graph.node_station, dtype=np.int64)
        ]

    while pq:
        item, key = pq.pop()
        node, k = divmod(item, num_local)
        if settled[node, k] or key > labels[node, k]:
            continue  # stale entry (lazy queues only)
        settled[node, k] = True
        stats.settled_connections += 1
        g = int(conn_indices[k])
        if track_ancestry and not anc[node, k]:
            no_anc_in_queue[k] -= 1

        if target is not None and g <= t_max:
            stats.pruned_stopping += 1
            labels[node, k] = INF_TIME
            continue
        if conn_stopped is not None and conn_stopped[k]:
            stats.pruned_stopping += 1
            labels[node, k] = INF_TIME
            continue

        if self_pruning:
            if g <= maxconn[node]:
                # A later connection reached this node no later: the
                # current one cannot contribute a Pareto-optimal point.
                stats.pruned_self += 1
                labels[node, k] = INF_TIME
                continue
            maxconn[node] = g
        # Without self-pruning we still record the label (key) and relax.
        labels[node, k] = key

        if target is not None and node == target and g > t_max:
            t_max = g

        if pruner is not None:
            ancestry_complete = bool(
                track_ancestry and no_anc_in_queue[k] == 0
            )
            verdict = pruner.on_settle(node, g, key, ancestry_complete)
            if verdict == PRUNE_NODE:
                stats.pruned_table += 1
                continue
            if verdict == PRUNE_CONNECTION:
                conn_stopped[k] = True
                continue

        if track_ancestry:
            push_anc = bool(anc[node, k] or node_is_transfer[node])
        for edge in adjacency[node]:
            stats.relaxed_edges += 1
            t_next = edge.arrival(key)
            head = edge.target
            if t_next < labels[head, k] and not settled[head, k]:
                was_queued = labels[head, k] < INF_TIME
                labels[head, k] = t_next
                if pq.push(head * num_local + k, t_next):
                    stats.queue_pushes += 1
                if track_ancestry:
                    if was_queued:
                        # Decrease-key may flip the path's ancestry bit.
                        if anc[head, k] != push_anc:
                            no_anc_in_queue[k] += 1 if not push_anc else -1
                            anc[head, k] = push_anc
                    else:
                        anc[head, k] = push_anc
                        if not push_anc:
                            no_anc_in_queue[k] += 1

    # Self-pruned / stopped entries carry INF_TIME already; entries never
    # reached stay INF_TIME.  Target pruning may have recorded better
    # arrivals with the pruner; the caller folds those in (§4).
    return result
