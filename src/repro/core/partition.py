"""Partitioning ``conn(S)`` over processors (paper §3.2).

The speed-up of the parallel algorithm hinges on balancing the threads'
work.  The paper proposes two simple heuristics and mentions k-means:

* **equal time-slots** — split the period ``Π`` into ``p`` equal
  intervals; unbalanced under rush hours and night breaks;
* **equal number of connections** — split ``conn(S)`` into ``p``
  contiguous runs of (nearly) equal cardinality; the paper's default;
* **k-means** — 1-D Lloyd clustering on departure times; the paper
  found the improvement insignificant (we include it to reproduce
  that).

Every strategy returns a list of ``p`` sorted, disjoint global-index
lists covering ``0..n−1`` (some possibly empty).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def _as_dep_array(conn_deps: Sequence[int] | np.ndarray) -> np.ndarray:
    deps = np.asarray(conn_deps, dtype=np.int64)
    if deps.ndim != 1:
        raise ValueError(f"expected 1-D departure vector, got shape {deps.shape}")
    if deps.size and (np.diff(deps) < 0).any():
        raise ValueError("departure times must be non-decreasing")
    return deps


def _validate_threads(num_threads: int) -> None:
    if num_threads < 1:
        raise ValueError(f"need at least one thread, got {num_threads}")


def partition_equal_connections(
    conn_deps: Sequence[int] | np.ndarray, num_threads: int, period: int = 1440
) -> list[list[int]]:
    """Split into ``p`` contiguous runs of equal cardinality (±1)."""
    _validate_threads(num_threads)
    deps = _as_dep_array(conn_deps)
    n = deps.size
    bounds = np.linspace(0, n, num_threads + 1).astype(np.int64)
    return [
        list(range(int(bounds[t]), int(bounds[t + 1])))
        for t in range(num_threads)
    ]


def partition_equal_time_slots(
    conn_deps: Sequence[int] | np.ndarray, num_threads: int, period: int = 1440
) -> list[list[int]]:
    """Split ``Π`` into ``p`` equal intervals; assign by departure time."""
    _validate_threads(num_threads)
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    deps = _as_dep_array(conn_deps)
    # Interval t covers [t·π/p, (t+1)·π/p).
    slot = (deps * num_threads) // period
    slot = np.clip(slot, 0, num_threads - 1)
    return [
        np.nonzero(slot == t)[0].tolist() for t in range(num_threads)
    ]


def partition_kmeans(
    conn_deps: Sequence[int] | np.ndarray,
    num_threads: int,
    period: int = 1440,
    *,
    max_iterations: int = 50,
) -> list[list[int]]:
    """1-D k-means (Lloyd) on departure times.

    Because the input is sorted, clusters are contiguous runs; we run
    Lloyd's iteration on interval boundaries.  Deterministic: initial
    centroids are the equal-cardinality run means.
    """
    _validate_threads(num_threads)
    deps = _as_dep_array(conn_deps)
    n = deps.size
    if n == 0 or num_threads == 1:
        return partition_equal_connections(deps, num_threads, period)
    k = min(num_threads, n)
    # Initialize boundaries from the equal-cardinality split.
    bounds = np.linspace(0, n, k + 1).astype(np.int64)
    for _ in range(max_iterations):
        centroids = np.empty(k, dtype=np.float64)
        for t in range(k):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            centroids[t] = deps[lo:hi].mean() if hi > lo else np.float64(
                deps[min(lo, n - 1)]
            )
        # Re-assign: boundary between cluster t and t+1 sits at the
        # midpoint of their centroids (1-D Voronoi).
        new_bounds = bounds.copy()
        for t in range(k - 1):
            midpoint = (centroids[t] + centroids[t + 1]) / 2.0
            new_bounds[t + 1] = np.searchsorted(deps, midpoint, side="left")
        new_bounds[0], new_bounds[k] = 0, n
        new_bounds = np.maximum.accumulate(new_bounds)
        if (new_bounds == bounds).all():
            break
        bounds = new_bounds
    parts = [
        list(range(int(bounds[t]), int(bounds[t + 1]))) for t in range(k)
    ]
    parts.extend([] for _ in range(num_threads - k))
    return parts


PARTITION_STRATEGIES: dict[
    str, Callable[[Sequence[int], int, int], list[list[int]]]
] = {
    "equal-connections": partition_equal_connections,
    "equal-time-slots": partition_equal_time_slots,
    "kmeans": partition_kmeans,
}


def partition_balance(parts: list[list[int]]) -> float:
    """Imbalance figure: max part size / mean part size (1.0 = perfect).

    Used by the partition-balance bench (F-part).
    """
    sizes = [len(p) for p in parts]
    if not sizes or sum(sizes) == 0:
        return 1.0
    mean = sum(sizes) / len(sizes)
    return max(sizes) / mean if mean else float("inf")
