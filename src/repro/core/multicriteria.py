"""Multi-criteria SPCS: arrival time + number of transfers (paper §6).

The paper's future-work challenge: *"incorporate multi-criteria
connections, e. g., minimizing the number of transfers.  The main
challenge here is to keep up the connection-setting property and to
find efficient criteria for self-pruning."*

This module answers it for the (arrival time, #transfers) criterion
pair by layering the connection index with a transfer count:

* a queue item is ``(node, connection i, transfers k)``, keyed by
  arrival time — **connection-setting extends**: each triple settles at
  most once;
* boarding edges (station → route node) increment ``k``; the first
  boarding at the source is free, matching the single-criterion
  seeding;
* **self-pruning extends**: let ``maxconn(v, k)`` be the highest
  connection index settled at ``v`` with at most ``k`` transfers.  A
  settle of ``(v, i, k)`` is pruned iff ``maxconn(v, k) ≥ i`` —
  strictly greater means a later-departing connection reached ``v`` no
  later with no more transfers (the paper's Theorem 1 argument, per
  layer); equality means the *same* connection already reached ``v``
  with fewer transfers and no later arrival (transfer-dominance).

The result stores, per (node, connection, transfer budget), the final
arrival; per-station **Pareto profiles** are read off by reducing each
transfer layer and stacking the fronts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.functions.piecewise import INF_TIME
from repro.functions.reduction import reduction_mask
from repro.graph.td_model import TDGraph
from repro.pq import QUEUE_FACTORIES

__all__ = ["McProfileResult", "McSPCSStats", "mc_profile_search"]


@dataclass(slots=True)
class McSPCSStats:
    settled: int = 0
    pruned: int = 0
    queue_pushes: int = 0


@dataclass(slots=True)
class McProfileResult:
    """Labels of a multi-criteria one-to-all profile search.

    ``labels[u, i, k]`` — earliest arrival at node ``u`` starting with
    the ``i``-th outgoing connection and using at most ``k`` transfers
    (``INF_TIME`` if impossible or pruned as dominated).
    """

    source: int
    conn_deps: np.ndarray
    max_transfers: int
    labels: np.ndarray
    stats: McSPCSStats
    period: int

    def arrival(self, station: int, tau: int, max_transfers: int) -> int:
        """Earliest arrival at ``station`` departing at/after ``tau``
        with at most ``max_transfers`` transfers."""
        k = min(max_transfers, self.max_transfers)
        deps = self.conn_deps
        if deps.size == 0:
            return INF_TIME
        layer = np.minimum.accumulate(
            self.labels[station, :, k][::-1]
        )[::-1]  # suffix minima: best arrival over anchors ≥ index
        tau_mod = tau % self.period
        base = tau - tau_mod
        idx = int(np.searchsorted(deps, tau_mod, side="left"))
        tomorrow = self.period + int(layer[0]) if layer[0] < INF_TIME else INF_TIME
        today = int(layer[idx]) if idx < deps.size else INF_TIME
        best = min(today, tomorrow)
        return base + best if best < INF_TIME else INF_TIME

    def pareto_front(self, station: int, tau: int) -> list[tuple[int, int]]:
        """Non-dominated (transfers, arrival) pairs for departing at or
        after ``tau``."""
        front: list[tuple[int, int]] = []
        best = INF_TIME
        for k in range(self.max_transfers + 1):
            arrival = self.arrival(station, tau, k)
            if arrival < best:
                front.append((k, arrival))
                best = arrival
        return front

    def profile_points(
        self, station: int, max_transfers: int
    ) -> list[tuple[int, int]]:
        """Reduced connection points of ``dist_{≤k}(S, station, ·)``."""
        k = min(max_transfers, self.max_transfers)
        arrivals = self.labels[station, :, k]
        mask = reduction_mask(arrivals)
        return [
            (int(dep), int(arr - dep))
            for dep, arr, keep in zip(self.conn_deps, arrivals, mask)
            if keep
        ]


def mc_profile_search(
    graph: TDGraph,
    source: int,
    *,
    max_transfers: int = 5,
    self_pruning: bool = True,
    queue: str = "binary",
) -> McProfileResult:
    """Multi-criteria one-to-all profile search from ``source``."""
    if not graph.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if max_transfers < 0:
        raise ValueError(f"max_transfers must be ≥ 0, got {max_transfers}")

    timetable = graph.timetable
    conns = timetable.outgoing_connections(source)
    num_conns = len(conns)
    layers = max_transfers + 1
    num_nodes = graph.num_nodes
    conn_deps = np.asarray([c.dep_time for c in conns], dtype=np.int64)

    labels = np.full((num_nodes, num_conns, layers), INF_TIME, dtype=np.int64)
    stats = McSPCSStats()
    result = McProfileResult(
        source=source,
        conn_deps=conn_deps,
        max_transfers=max_transfers,
        labels=labels,
        stats=stats,
        period=timetable.period,
    )
    if num_conns == 0:
        return result

    # maxconn[v, k]: highest connection index settled at v with ≤ k
    # transfers (running maximum over layers is maintained on settle).
    maxconn = np.full((num_nodes, layers), -1, dtype=np.int64)
    settled = np.zeros((num_nodes, num_conns, layers), dtype=bool)
    is_station = [graph.is_station_node(u) for u in range(num_nodes)]
    adjacency = graph.adjacency
    pq = QUEUE_FACTORIES[queue]()

    def encode(node: int, i: int, k: int) -> int:
        return (node * num_conns + i) * layers + k

    for i, c in enumerate(conns):
        node = graph.source_route_node(c)
        if c.dep_time < labels[node, i, 0]:
            labels[node, i, 0] = c.dep_time
            pq.push(encode(node, i, 0), c.dep_time)
            stats.queue_pushes += 1

    while pq:
        item, key = pq.pop()
        rest, k = divmod(item, layers)
        node, i = divmod(rest, num_conns)
        if settled[node, i, k] or key > labels[node, i, k]:
            continue
        settled[node, i, k] = True
        stats.settled += 1

        if self_pruning and maxconn[node, k] >= i:
            # Dominated: a later (or the same) connection reached this
            # node no later using no more transfers.
            stats.pruned += 1
            labels[node, i, k] = INF_TIME
            continue
        if self_pruning:
            # This settle dominates every higher transfer budget too.
            np.maximum(maxconn[node, k:], i, out=maxconn[node, k:])
        labels[node, i, k] = key

        boarding_from_station = is_station[node]
        for edge in adjacency[node]:
            k_next = k + 1 if (edge.ttf is None and boarding_from_station) else k
            if k_next >= layers:
                continue
            t_next = edge.arrival(key)
            head = edge.target
            if t_next < labels[head, i, k_next] and not settled[head, i, k_next]:
                labels[head, i, k_next] = t_next
                if pq.push(encode(head, i, k_next), t_next):
                    stats.queue_pushes += 1

    # Fill upward: an arrival achieved with k transfers is achievable
    # with any larger budget (query convenience; dominance-pruned INF
    # entries inherit the better lower-layer value).
    np.minimum.accumulate(labels, axis=2, out=labels)
    return result
