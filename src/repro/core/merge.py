"""Merging per-thread SPCS results (paper §3.2).

After the ``p`` threads finish, a master thread merges the per-thread
labels ``arr_t(v, ·)`` into a common label ``arr(v, ·)`` in global
connection order.  The merged label is *not* necessarily FIFO — threads
cannot self-prune each other's connections — so profiles are obtained
through connection reduction (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.spcs import SPCSResult
from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME


@dataclass(slots=True)
class MergedProfileResult:
    """Common labels of a full (parallel) one-to-all profile search.

    ``labels[u, i]`` — arrival at node ``u`` starting with the ``i``-th
    outgoing connection (global order); ``INF_TIME`` where pruned or
    unreachable.
    """

    source: int
    conn_deps: np.ndarray
    labels: np.ndarray
    period: int

    def profile(self, station: int) -> Profile:
        """Reduced profile ``dist(S, station, ·)``."""
        return Profile.from_raw(self.conn_deps, self.labels[station], self.period)

    def earliest_arrival(self, station: int, tau: int) -> int:
        """Convenience: evaluate the reduced profile at time ``tau``."""
        return self.profile(station).earliest_arrival(tau)

    @property
    def num_connections(self) -> int:
        return int(self.conn_deps.size)


def merge_thread_results(
    results: Sequence[SPCSResult], num_connections: int
) -> MergedProfileResult:
    """Merge per-thread label matrices into global connection order.

    ``num_connections`` is ``|conn(S)|``; each thread contributes the
    columns listed in its ``conn_indices``.  Thread subsets must be
    disjoint; uncovered columns stay ``INF_TIME`` (legal — the driver
    may run a restricted query).
    """
    if not results:
        raise ValueError("merge requires at least one thread result")
    source = results[0].source
    period = results[0].period
    num_nodes = results[0].labels.shape[0]
    for r in results[1:]:
        if r.source != source:
            raise ValueError("thread results disagree on the source station")
        if r.labels.shape[0] != num_nodes or r.period != period:
            raise ValueError("thread results disagree on the graph")

    labels = np.full((num_nodes, num_connections), INF_TIME, dtype=np.int64)
    conn_deps = np.zeros(num_connections, dtype=np.int64)
    covered = np.zeros(num_connections, dtype=bool)
    for r in results:
        idx = r.conn_indices
        if idx.size == 0:
            continue
        if covered[idx].any():
            raise ValueError("thread connection subsets overlap")
        covered[idx] = True
        labels[:, idx] = r.labels
        conn_deps[idx] = r.conn_deps

    # Anchors of uncovered columns are unknown; mark monotone-safe values
    # by forward-filling so Profile construction stays valid (their
    # arrivals are INF_TIME and vanish under reduction anyway).
    if not covered.all():
        last = 0
        for i in range(num_connections):
            if covered[i]:
                last = int(conn_deps[i])
            else:
                conn_deps[i] = last
        conn_deps = np.maximum.accumulate(conn_deps)

    return MergedProfileResult(
        source=source, conn_deps=conn_deps, labels=labels, period=period
    )
