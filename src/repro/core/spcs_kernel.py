"""Flat-array SPCS kernel (paper §3.1/§4, HPC form).

Same algorithm as :func:`repro.core.spcs.spcs_profile_search` — one
queue item per (node, connection) pair, connection-setting,
self-pruning, the stopping criterion and the pruner hook — but engineered
for interpreter throughput instead of readability:

* the graph is a :class:`~repro.graph.td_arrays.TDGraphArrays` pack;
  adjacency, travel-time functions and labels live in flat arrays and
  Python-list mirrors, never in per-edge/per-label objects;
* labels, settled flags and ancestry bits are preallocated flat
  vectors indexed by ``node * num_local + k`` — no tuple construction
  or 2-D numpy scalar indexing in the loop;
* the queue is C-implemented :mod:`heapq` with lazy deletion (stale
  entries are skipped when their key exceeds the current label);
* travel-time evaluation is inlined: FIFO legs take the
  next-departure fast path, non-FIFO legs fall back to the cyclic
  two-pass scan of :meth:`TravelTimeFunction.arrival`.

Hooks keep their integer-verdict protocol: a
:class:`~repro.core.spcs.SettlePruner` receives the same
``on_settle(node, conn_index, arrival, ancestry_complete)`` events and
answers with ``PRUNE_NONE`` / ``PRUNE_NODE`` / ``PRUNE_CONNECTION``, so
the distance-table machinery of :mod:`repro.query.table_query` runs on
either implementation unchanged.

Equivalence contract: for every input the kernel produces the same
reduced profiles (and therefore the same earliest arrivals) as the
object-graph SPCS.  Raw labels may differ on exact arrival-time ties —
the two queues break ties differently, and which of two equal-arrival
connections self-prunes the other is order-dependent — but reduction
collapses both variants to the identical profile.
``tests/core/test_kernel_equivalence.py`` enforces this against the
pure-Python SPCS and the label-correcting oracle on randomized
instances; the pure-Python path stays as the reference implementation.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from repro.core.spcs import (
    PRUNE_CONNECTION,
    PRUNE_NODE,
    SettlePruner,
    SPCSResult,
    SPCSStats,
    spcs_profile_search,
)
from repro.functions.piecewise import INF_TIME
from repro.graph.td_arrays import TDGraphArrays
from repro.graph.td_model import TDGraph


def run_spcs_search(
    graph: TDGraph,
    arrays: TDGraphArrays | None,
    source: int,
    *,
    connection_subset: Sequence[int] | None = None,
    self_pruning: bool = True,
    target: int | None = None,
    pruner: "SettlePruner | None" = None,
    transfer_stations: "np.ndarray | None" = None,
    queue: str = "binary",
) -> SPCSResult:
    """Dispatch one SPCS run: flat kernel when ``arrays`` is given,
    otherwise the reference implementation (``queue`` applies only
    there).  The single dispatch point shared by the parallel driver,
    its fork workers and the station-to-station engine."""
    if arrays is not None:
        return spcs_kernel_search(
            arrays,
            source,
            connection_subset=connection_subset,
            self_pruning=self_pruning,
            target=target,
            pruner=pruner,
            transfer_stations=transfer_stations,
        )
    return spcs_profile_search(
        graph,
        source,
        connection_subset=connection_subset,
        self_pruning=self_pruning,
        target=target,
        pruner=pruner,
        transfer_stations=transfer_stations,
        queue=queue,
    )


def spcs_kernel_search(
    arrays: TDGraphArrays,
    source: int,
    *,
    connection_subset: Sequence[int] | None = None,
    self_pruning: bool = True,
    target: int | None = None,
    pruner: "SettlePruner | None" = None,
    transfer_stations: "np.ndarray | None" = None,
) -> SPCSResult:
    """Run the flat-array SPCS from station ``source``.

    Parameters mirror :func:`~repro.core.spcs.spcs_profile_search`
    (minus ``queue`` — the kernel always uses the lazy C heap); see
    there for semantics.  ``arrays`` is produced by
    :func:`~repro.graph.td_arrays.pack_td_graph`.
    """
    if not arrays.is_station_node(source):
        raise ValueError(f"source must be a station node, got {source}")
    if target is not None and not arrays.is_station_node(target):
        raise ValueError(f"target must be a station node, got {target}")

    conn_lo = int(arrays.conn_indptr[source])
    num_conns = int(arrays.conn_indptr[source + 1]) - conn_lo
    if connection_subset is None:
        subset = list(range(num_conns))
    else:
        subset = list(connection_subset)
        if any(subset[k] >= subset[k + 1] for k in range(len(subset) - 1)):
            raise ValueError("connection_subset must be strictly ascending")
        if subset and not (0 <= subset[0] and subset[-1] < num_conns):
            raise ValueError(f"connection_subset out of range [0, {num_conns})")

    num_local = len(subset)
    num_nodes = arrays.num_nodes
    period = arrays.period
    all_deps = arrays.conn_dep
    all_starts = arrays.conn_start
    conn_indices = np.asarray(subset, dtype=np.int64)
    conn_deps = np.asarray(
        [all_deps[conn_lo + g] for g in subset], dtype=np.int64
    )

    stats = SPCSStats()
    if num_local == 0:
        return SPCSResult(
            source=source,
            conn_indices=conn_indices,
            conn_deps=conn_deps,
            labels=np.full((num_nodes, 0), INF_TIME, dtype=np.int64),
            stats=stats,
            period=period,
        )

    INF = INF_TIME
    size = num_nodes * num_local
    # Heap entries are ``(key, -item)``: on equal arrival keys the
    # *later* connection (larger local index) settles first, so
    # self-pruning can kill the earlier one before it relaxes its edges
    # — with ascending tie-break Theorem 1 would never fire on ties and
    # the search visits measurably more pairs.
    labels = [INF] * size
    settled = bytearray(size)
    maxconn = [-1] * num_nodes
    globals_of = [int(g) for g in subset]
    adjacency = arrays.kernel_adjacency()
    heap: list[tuple[int, int]] = []

    settled_n = pruned_self = pruned_stop = pruned_table = 0
    pushes = relaxed = 0

    for k, g in enumerate(subset):
        dep = int(all_deps[conn_lo + g])
        node = int(all_starts[conn_lo + g])
        item = node * num_local + k
        if dep < labels[item]:
            labels[item] = dep
            heappush(heap, (dep, -item))
            pushes += 1

    # Stopping criterion state (Theorem 2) and target-pruned connections
    # (Theorem 4), exactly as in the reference implementation.
    t_max = -1
    conn_stopped = bytearray(num_local) if pruner is not None else None

    track_ancestry = pruner is not None and transfer_stations is not None
    if track_ancestry:
        anc = bytearray(size)
        no_anc_in_queue = [1] * num_local
        station_mask = np.asarray(transfer_stations, dtype=bool)
        node_is_transfer = station_mask[
            np.asarray(arrays.node_station, dtype=np.int64)
        ].tolist()

    while heap:
        key, item = heappop(heap)
        item = -item
        if settled[item] or key > labels[item]:
            continue  # stale lazy-heap entry
        settled[item] = 1
        settled_n += 1
        node, k = divmod(item, num_local)
        g = globals_of[k]
        if track_ancestry and not anc[item]:
            no_anc_in_queue[k] -= 1

        if target is not None and g <= t_max:
            pruned_stop += 1
            labels[item] = INF
            continue
        if conn_stopped is not None and conn_stopped[k]:
            pruned_stop += 1
            labels[item] = INF
            continue

        if self_pruning:
            if g <= maxconn[node]:
                pruned_self += 1
                labels[item] = INF
                continue
            maxconn[node] = g
        labels[item] = key

        if target is not None and node == target and g > t_max:
            t_max = g

        if pruner is not None:
            ancestry_complete = bool(
                track_ancestry and no_anc_in_queue[k] == 0
            )
            verdict = pruner.on_settle(node, g, key, ancestry_complete)
            if verdict == PRUNE_NODE:
                pruned_table += 1
                continue
            if verdict == PRUNE_CONNECTION:
                conn_stopped[k] = 1
                continue

        if track_ancestry:
            push_anc = 1 if (anc[item] or node_is_transfer[node]) else 0
        for head, weight, ttf in adjacency[node]:
            relaxed += 1
            if ttf is None:
                t_next = key + weight
            else:
                deps, durs, fifo, n = ttf
                tau = key % period
                idx = bisect_left(deps, tau)
                if fifo:
                    # Next departure is optimal (arrivals non-decreasing).
                    if idx < n:
                        t_next = key + deps[idx] - tau + durs[idx]
                    elif n:
                        t_next = key + period + deps[0] - tau + durs[0]
                    else:
                        # Zero-point function: unreachable via
                        # build_td_graph (empty legs get no edge) but
                        # legal for TravelTimeFunction, and is_fifo()
                        # is True for it — match arrival()'s INF_TIME.
                        t_next = INF
                else:
                    # Cyclic two-pass scan, cf. TravelTimeFunction.arrival.
                    best = INF
                    for j in range(idx, n):
                        wait = deps[j] - tau
                        if wait >= best:
                            break
                        total = wait + durs[j]
                        if total < best:
                            best = total
                    else:
                        for j in range(idx):
                            wait = period + deps[j] - tau
                            if wait >= best:
                                break
                            total = wait + durs[j]
                            if total < best:
                                best = total
                    t_next = key + best if best < INF else INF
            head_item = head * num_local + k
            if t_next < labels[head_item] and not settled[head_item]:
                was_queued = labels[head_item] < INF
                labels[head_item] = t_next
                heappush(heap, (t_next, -head_item))
                pushes += 1
                if track_ancestry:
                    if was_queued:
                        if anc[head_item] != push_anc:
                            no_anc_in_queue[k] += 1 if not push_anc else -1
                            anc[head_item] = push_anc
                    else:
                        anc[head_item] = push_anc
                        if not push_anc:
                            no_anc_in_queue[k] += 1

    stats.settled_connections = settled_n
    stats.pruned_self = pruned_self
    stats.pruned_stopping = pruned_stop
    stats.pruned_table = pruned_table
    stats.queue_pushes = pushes
    stats.relaxed_edges = relaxed

    return SPCSResult(
        source=source,
        conn_indices=conn_indices,
        conn_deps=conn_deps,
        labels=np.asarray(labels, dtype=np.int64).reshape(
            num_nodes, num_local
        ),
        stats=stats,
        period=period,
    )
