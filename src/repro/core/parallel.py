"""Parallel SPCS driver (paper §3.2).

Partitions ``conn(S)`` into ``p`` subsets, runs one SPCS instance per
subset, merges the labels and reduces.  Execution backends:

* ``serial``   — run subsets one after another in this thread (exact
  per-thread work/time accounting; the default for experiments);
* ``threads``  — ``concurrent.futures.ThreadPoolExecutor``.  Functional
  but GIL-bound in CPython: threads serialize on bytecode, so expect no
  wall-clock speed-up (the repo's DESIGN.md documents this substitution);
* ``processes`` — fork-based ``multiprocessing``; real parallelism on
  multi-core hosts at the cost of forking and result pickling.

Orthogonal to the backend, ``kernel`` selects the per-subset search
implementation:

* ``python`` — the reference object-graph SPCS
  (:func:`~repro.core.spcs.spcs_profile_search`); default, and the
  implementation every other path is validated against;
* ``flat``   — the flat-array kernel
  (:func:`~repro.core.spcs_kernel.spcs_kernel_search`) over a packed
  :class:`~repro.graph.td_arrays.TDGraphArrays`; several times faster,
  identical reduced profiles.

Whatever the backend, the result carries *simulated-cores* accounting:
``simulated_time = max_t(thread_time_t) + merge_time`` — the wall-clock
a p-core machine would see, because the master must wait for the
slowest thread before merging (paper §3.2, "Choice of the Partition").
The per-thread settled-connection counts expose the paper's key
parallel effect: self-pruning cannot cross threads, so total work grows
with p.

Most callers reach this function through the
:class:`~repro.service.TransitService` facade (``service.profile``),
which prepares the packed arrays once and passes them via ``arrays=``;
calling it directly is equivalent and remains supported (docs/API.md).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.merge import MergedProfileResult, merge_thread_results
from repro.core.partition import PARTITION_STRATEGIES
from repro.core.spcs import SPCSResult
from repro.core.spcs_kernel import run_spcs_search
from repro.graph.td_arrays import TDGraphArrays, packed_arrays
from repro.graph.td_model import TDGraph

#: Valid ``kernel`` arguments of :func:`parallel_profile_search`.
KERNELS = ("python", "flat")

# Module-level state for fork-based workers (inherited copy-on-write).
_FORK_STATE: dict[str, object] = {}


def _fork_worker(args: tuple[int, int, list[int], bool, str, str]) -> SPCSResult:
    source, _thread_id, subset, self_pruning, queue, kernel = args
    return run_spcs_search(
        _FORK_STATE["graph"],  # type: ignore[arg-type]
        _FORK_STATE["arrays"] if kernel == "flat" else None,  # type: ignore[arg-type]
        source,
        connection_subset=subset,
        self_pruning=self_pruning,
        queue=queue,
    )


@dataclass(slots=True)
class ParallelRunStats:
    """Work and time accounting of one parallel one-to-all query."""

    num_threads: int
    partition_sizes: list[int]
    #: Settled connections per thread (queue extractions).
    settled_per_thread: list[int]
    #: Wall-clock seconds each thread's search took.
    time_per_thread: list[float]
    #: Seconds spent merging labels.
    merge_time: float
    #: Wall-clock of the whole call (backend-dependent).
    total_time: float

    @property
    def settled_connections(self) -> int:
        """Total settled connections, summed over threads (Table 1)."""
        return sum(self.settled_per_thread)

    @property
    def simulated_time(self) -> float:
        """What a p-core machine would measure: slowest thread + merge."""
        slowest = max(self.time_per_thread) if self.time_per_thread else 0.0
        return slowest + self.merge_time


@dataclass(slots=True)
class ParallelProfileResult:
    """Merged result plus accounting."""

    merged: MergedProfileResult
    thread_results: list[SPCSResult]
    stats: ParallelRunStats

    def profile(self, station: int):
        return self.merged.profile(station)


def parallel_profile_search(
    graph: TDGraph,
    source: int,
    num_threads: int = 1,
    *,
    strategy: str = "equal-connections",
    backend: str = "serial",
    self_pruning: bool = True,
    queue: str = "binary",
    kernel: str = "python",
    arrays: "TDGraphArrays | None" = None,
) -> ParallelProfileResult:
    """One-to-all profile search on ``num_threads`` simulated cores.

    ``strategy`` is a :data:`~repro.core.partition.PARTITION_STRATEGIES`
    key; ``backend`` one of ``serial`` / ``threads`` / ``processes``;
    ``kernel`` one of :data:`KERNELS` (``queue`` only applies to the
    ``python`` kernel — the flat kernel always uses the lazy C heap).
    ``arrays`` injects a pre-packed :class:`TDGraphArrays` for the
    ``flat`` kernel (the service facade owns one shared pack); when
    omitted the memoized :func:`packed_arrays` cache is used.
    """
    if num_threads < 1:
        raise ValueError(f"need at least one thread, got {num_threads}")
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    try:
        partition_fn = PARTITION_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {sorted(PARTITION_STRATEGIES)}"
        ) from None

    timetable = graph.timetable
    conns = timetable.outgoing_connections(source)
    conn_deps = [c.dep_time for c in conns]
    parts = partition_fn(conn_deps, num_threads, timetable.period)

    if kernel == "flat":
        if arrays is None:
            arrays = packed_arrays(graph)
    else:
        arrays = None
    if arrays is not None:
        # Build the kernel-side list mirrors here, outside the timed
        # region: the searches below must measure search work, not a
        # one-time cache fill (and forked workers inherit the finished
        # mirrors copy-on-write).
        arrays.kernel_adjacency()

    def search(subset: list[int]) -> SPCSResult:
        return run_spcs_search(
            graph,
            arrays,
            source,
            connection_subset=subset,
            self_pruning=self_pruning,
            queue=queue,
        )

    start_total = time.perf_counter()
    thread_results: list[SPCSResult] = []
    times: list[float] = []

    if backend == "serial":
        for subset in parts:
            t0 = time.perf_counter()
            thread_results.append(search(subset))
            times.append(time.perf_counter() - t0)
    elif backend == "threads":
        def run(subset: list[int]) -> tuple[SPCSResult, float]:
            t0 = time.perf_counter()
            result = search(subset)
            return result, time.perf_counter() - t0

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            for result, elapsed in pool.map(run, parts):
                thread_results.append(result)
                times.append(elapsed)
    elif backend == "processes":
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return parallel_profile_search(
                graph,
                source,
                num_threads,
                strategy=strategy,
                backend="threads",
                self_pruning=self_pruning,
                queue=queue,
                kernel=kernel,
                arrays=arrays,
            )
        _FORK_STATE["graph"] = graph
        _FORK_STATE["arrays"] = arrays
        args = [
            (source, t, subset, self_pruning, queue, kernel)
            for t, subset in enumerate(parts)
        ]
        try:
            with ctx.Pool(processes=num_threads) as pool:
                t0 = time.perf_counter()
                thread_results = pool.map(_fork_worker, args)
                elapsed = time.perf_counter() - t0
            # Per-thread times are not observable across processes;
            # attribute wall time proportionally to settled counts.
            total_settled = sum(
                r.stats.settled_connections for r in thread_results
            ) or 1
            times = [
                elapsed * r.stats.settled_connections / total_settled
                for r in thread_results
            ]
        finally:
            _FORK_STATE.pop("graph", None)
            _FORK_STATE.pop("arrays", None)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; choose serial, threads or processes"
        )

    t_merge = time.perf_counter()
    merged = merge_thread_results(thread_results, len(conns))
    merge_time = time.perf_counter() - t_merge
    total_time = time.perf_counter() - start_total

    stats = ParallelRunStats(
        num_threads=num_threads,
        partition_sizes=[len(p) for p in parts],
        settled_per_thread=[
            r.stats.settled_connections for r in thread_results
        ],
        time_per_thread=times,
        merge_time=merge_time,
        total_time=total_time,
    )
    return ParallelProfileResult(
        merged=merged, thread_results=thread_results, stats=stats
    )
