"""The paper's primary contribution (§3): self-pruning
connection-setting profile search (SPCS) and its parallelization.

* :mod:`repro.core.spcs` — the sequential algorithm with
  connection-setting, self-pruning, the stopping criterion and pruner
  hooks (used by the distance-table machinery in :mod:`repro.query`).
* :mod:`repro.core.spcs_kernel` — the flat-array kernel: the same
  algorithm over a packed :class:`~repro.graph.td_arrays.TDGraphArrays`
  with preallocated label vectors and a C heap; identical reduced
  profiles, several times faster (``kernel="flat"`` in the drivers).
* :mod:`repro.core.partition` — partitioning ``conn(S)`` over threads
  (§3.2): equal time-slots, equal #connections, k-means.
* :mod:`repro.core.parallel` — the parallel driver with ``serial`` /
  ``threads`` / ``processes`` execution backends and the
  simulated-cores accounting used by the benchmarks.
* :mod:`repro.core.merge` — merging per-thread labels and reading off
  reduced profiles.
"""

from repro.core.spcs import SPCSResult, spcs_profile_search
from repro.core.spcs_kernel import run_spcs_search, spcs_kernel_search
from repro.core.partition import (
    PARTITION_STRATEGIES,
    partition_equal_connections,
    partition_equal_time_slots,
    partition_kmeans,
)
from repro.core.merge import MergedProfileResult, merge_thread_results
from repro.core.multicriteria import (
    McProfileResult,
    McSPCSStats,
    mc_profile_search,
)
from repro.core.parallel import (
    KERNELS,
    ParallelProfileResult,
    ParallelRunStats,
    parallel_profile_search,
)

__all__ = [
    "SPCSResult",
    "spcs_profile_search",
    "spcs_kernel_search",
    "run_spcs_search",
    "KERNELS",
    "PARTITION_STRATEGIES",
    "partition_equal_connections",
    "partition_equal_time_slots",
    "partition_kmeans",
    "MergedProfileResult",
    "merge_thread_results",
    "McProfileResult",
    "McSPCSStats",
    "mc_profile_search",
    "ParallelProfileResult",
    "ParallelRunStats",
    "parallel_profile_search",
]
