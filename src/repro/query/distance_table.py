"""The profile distance table ``D`` (paper §4).

``D : S_trans × S_trans × Π → N0`` returns, for each pair of transfer
stations, the arrival time at the second when departing the first at a
given time — *without* transfer times at either endpoint (the pruning
rules add those explicitly).  Stored as one reduced
:class:`~repro.functions.algebra.Profile` per ordered pair.

Precomputation runs the parallel one-to-all algorithm from every
transfer station (paper §5.2), which is exactly the semantics required:
profile searches start at route nodes (no source transfer) and read
arrivals off station nodes (no target transfer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.parallel import parallel_profile_search
from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph


@dataclass(slots=True)
class DistanceTable:
    """Profile distance table over the transfer stations.

    ``profiles[a][b]`` is the reduced profile from transfer station
    ``transfer_stations[a]`` to ``transfer_stations[b]``.
    """

    transfer_stations: np.ndarray
    index_of: dict[int, int]
    profiles: list[list[Profile]]
    period: int
    #: Wall-clock seconds the precomputation took (Table 2, Prepro Time).
    build_seconds: float
    #: Total settled connections during precomputation.
    build_settled: int

    @property
    def num_transfer_stations(self) -> int:
        return int(self.transfer_stations.size)

    def contains(self, station: int) -> bool:
        return station in self.index_of

    def earliest_arrival(self, origin: int, dest: int, tau: int) -> int:
        """``D(origin, dest, τ)`` — both must be transfer stations.

        ``D(a, a, τ) = τ``: you are already there.
        """
        if origin == dest:
            return tau
        a = self.index_of[origin]
        b = self.index_of[dest]
        return self.profiles[a][b].earliest_arrival(tau)

    def profile_between(self, origin: int, dest: int) -> Profile:
        return self.profiles[self.index_of[origin]][self.index_of[dest]]

    def size_bytes(self) -> int:
        """Memory of the stored connection points (two int64 per point),
        the figure reported as Table 2's *Space* column."""
        points = sum(
            len(profile)
            for row in self.profiles
            for profile in row
        )
        return 16 * points

    def size_mib(self) -> float:
        return self.size_bytes() / (1024.0 * 1024.0)


def build_distance_table(
    graph: TDGraph,
    transfer_stations: np.ndarray | list[int],
    *,
    num_threads: int = 8,
    strategy: str = "equal-connections",
    kernel: str = "python",
    arrays=None,
) -> DistanceTable:
    """Precompute ``D`` by one parallel one-to-all run per transfer
    station (paper §5.2: "distance tables are computed by running our
    parallel one-to-all algorithm on 8 cores from every transfer
    station").

    ``kernel``/``arrays`` select the per-search implementation exactly
    as in :func:`~repro.core.parallel.parallel_profile_search`; both
    kernels produce identical reduced profiles, so the stored table is
    the same whichever builds it (the ``flat`` kernel is just faster).
    """
    stations = np.asarray(sorted(set(int(s) for s in transfer_stations)), dtype=np.int64)
    for s in stations:
        if not graph.is_station_node(int(s)):
            raise ValueError(f"transfer station {s} is not a station node")
    index_of = {int(s): i for i, s in enumerate(stations)}
    n = stations.size
    period = graph.timetable.period

    empty = Profile(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), period)
    profiles: list[list[Profile]] = [[empty] * n for _ in range(n)]

    t0 = time.perf_counter()
    settled = 0
    for a, origin in enumerate(stations):
        result = parallel_profile_search(
            graph,
            int(origin),
            num_threads,
            strategy=strategy,
            kernel=kernel,
            arrays=arrays,
        )
        settled += result.stats.settled_connections
        for b, dest in enumerate(stations):
            if a == b:
                continue
            profiles[a][b] = result.profile(int(dest))
    build_seconds = time.perf_counter() - t0

    return DistanceTable(
        transfer_stations=stations,
        index_of=index_of,
        profiles=profiles,
        period=period,
        build_seconds=build_seconds,
        build_settled=settled,
    )


def patch_distance_table(
    table: DistanceTable,
    graph: TDGraph,
    affected_sources,
    *,
    num_threads: int = 8,
    strategy: str = "equal-connections",
    kernel: str = "python",
    arrays=None,
) -> DistanceTable:
    """Rebuild only the rows of ``D`` whose one-to-all search can have
    changed, against an incrementally patched ``graph``.

    ``affected_sources`` is a boolean mask over stations (see
    :func:`repro.graph.td_patch.stations_reaching`): stations that can
    reach a delay-trigger station.  A profile search seeded at a source
    outside the mask never relaxes a changed route edge nor seeds from
    a changed ``conn(S)`` row, so its reduced profiles — and therefore
    the whole table row — are exactly what a cold build on the delayed
    graph would produce; those row lists are shared by reference (rows
    are never mutated after construction).

    ``build_seconds``/``build_settled`` report *this patch's* work, not
    cumulative totals — they are diagnostics of the latest (re)build,
    which is what the replan accounting wants.
    """
    stations = table.transfer_stations
    n = int(stations.size)
    period = table.period
    mask = np.asarray(affected_sources, dtype=bool)

    empty = Profile(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), period)
    profiles: list[list[Profile]] = list(table.profiles)

    t0 = time.perf_counter()
    settled = 0
    for a, origin in enumerate(stations):
        if not mask[int(origin)]:
            continue
        result = parallel_profile_search(
            graph,
            int(origin),
            num_threads,
            strategy=strategy,
            kernel=kernel,
            arrays=arrays,
        )
        settled += result.stats.settled_connections
        row: list[Profile] = [empty] * n
        for b, dest in enumerate(stations):
            if a == b:
                continue
            row[b] = result.profile(int(dest))
        profiles[a] = row
    build_seconds = time.perf_counter() - t0

    return DistanceTable(
        transfer_stations=stations,
        index_of=table.index_of,
        profiles=profiles,
        period=period,
        build_seconds=build_seconds,
        build_settled=settled,
    )
