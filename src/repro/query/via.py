"""Local and via stations (paper §4, Fig. 3).

The *local stations* of ``T`` are all stations reachable from ``T`` in
the reverse station graph through non-transfer stations only; the
*via stations* are the transfer stations adjacent to that local
neighbourhood — they separate ``T ∪ local(T)`` from the rest of the
station graph, so any global query must pass one of them.

Computed on-the-fly by a DFS on the reverse station graph, pruned at
transfer stations; the DFS doubles as the local/global classifier:
touching the source makes the query local.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.station_graph import StationGraph

__all__ = ["ViaInfo", "compute_via_stations"]


@dataclass(slots=True)
class ViaInfo:
    """Result of the via-station DFS for a target station."""

    target: int
    #: Stations L with a simple all-non-transfer path L → T (excl. T).
    local_stations: frozenset[int]
    #: Transfer stations adjacent to T ∪ local(T) — every global query
    #: passes one of them.
    via_stations: frozenset[int]

    def classify(self, source: int) -> str:
        """``"local"`` if the S-T query may avoid all via stations."""
        if source == self.target or source in self.local_stations:
            return "local"
        return "global"


def compute_via_stations(
    station_graph: StationGraph,
    target: int,
    transfer_mask: np.ndarray,
) -> ViaInfo:
    """Reverse-DFS from ``target``, pruning at transfer stations.

    ``transfer_mask`` is a boolean vector over stations (``S_trans``).
    Special case (paper §4): a transfer-station target has
    ``local(T) = ∅`` and ``via(T) = {T}``.
    """
    mask = np.asarray(transfer_mask, dtype=bool)
    if mask.shape != (station_graph.num_stations,):
        raise ValueError(
            f"transfer mask must cover all {station_graph.num_stations} "
            f"stations, got shape {mask.shape}"
        )
    if not (0 <= target < station_graph.num_stations):
        raise ValueError(f"unknown target station {target}")

    if mask[target]:
        return ViaInfo(
            target=target,
            local_stations=frozenset(),
            via_stations=frozenset({target}),
        )

    local: set[int] = set()
    via: set[int] = set()
    visited = np.zeros(station_graph.num_stations, dtype=bool)
    visited[target] = True
    stack = [target]
    while stack:
        station = stack.pop()
        for pred in station_graph.predecessors(station):
            pred = int(pred)
            if visited[pred]:
                continue
            visited[pred] = True
            if mask[pred]:
                via.add(pred)  # prune: do not search past transfer stations
            else:
                local.add(pred)
                stack.append(pred)

    return ViaInfo(
        target=target,
        local_stations=frozenset(local),
        via_stations=frozenset(via),
    )
