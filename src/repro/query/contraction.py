"""CH-style contraction of the station graph (paper §4, citing [12]).

Iteratively removes the least important station, inserting shortcut
edges to preserve min-travel-time distances between surviving stations.
Importance is the classic lazy-evaluated priority

    priority(u) = edge_difference(u) + deleted_neighbours(u)

with ``edge_difference = #shortcuts needed − #incident edges``.
Shortcut necessity is decided by a bounded witness search (a small
Dijkstra that ignores ``u``).

The paper only needs contraction for *ordering*: the ``c`` stations
that survive longest become the transfer stations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.graph.station_graph import StationGraph

#: Settle budget of one witness search; small values make contraction
#: insert a few redundant shortcuts (harmless for ordering).
WITNESS_SETTLE_LIMIT = 64


@dataclass(slots=True)
class ContractionResult:
    """Outcome of contracting ``num_removed`` stations."""

    #: Station ids in removal order (least important first).
    removal_order: list[int]
    #: Stations never removed (the important ones).
    survivors: list[int]
    #: Number of shortcut edges inserted.
    shortcuts_added: int


class _DynamicGraph:
    """Mutable directed graph with min-collapsed parallel edges."""

    __slots__ = ("succ", "pred", "alive")

    def __init__(self, station_graph: StationGraph) -> None:
        n = station_graph.num_stations
        self.succ: list[dict[int, int]] = [dict() for _ in range(n)]
        self.pred: list[dict[int, int]] = [dict() for _ in range(n)]
        self.alive = [True] * n
        for u in range(n):
            targets = station_graph.successors(u)
            weights = station_graph.successor_weights(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                if v == u:
                    continue
                self.add_edge(u, v, int(w))

    def add_edge(self, u: int, v: int, w: int) -> None:
        current = self.succ[u].get(v)
        if current is None or w < current:
            self.succ[u][v] = w
            self.pred[v][u] = w

    def remove_node(self, u: int) -> None:
        for v in list(self.succ[u]):
            del self.pred[v][u]
        for v in list(self.pred[u]):
            del self.succ[v][u]
        self.succ[u].clear()
        self.pred[u].clear()
        self.alive[u] = False

    def witness_exists(self, a: int, b: int, via: int, limit_weight: int) -> bool:
        """Bounded Dijkstra a→b avoiding ``via``; True iff some path of
        weight ≤ ``limit_weight`` exists."""
        if a == b:
            return True
        dist = {a: 0}
        heap = [(0, a)]
        settled = 0
        while heap and settled < WITNESS_SETTLE_LIMIT:
            d, x = heapq.heappop(heap)
            if d > dist.get(x, -1):
                continue
            if x == b:
                return d <= limit_weight
            if d > limit_weight:
                return False
            settled += 1
            for y, w in self.succ[x].items():
                if y == via:
                    continue
                nd = d + w
                if nd <= limit_weight and nd < dist.get(y, nd + 1):
                    dist[y] = nd
                    heapq.heappush(heap, (nd, y))
        return dist.get(b, limit_weight + 1) <= limit_weight


def _required_shortcuts(
    graph: _DynamicGraph, u: int
) -> list[tuple[int, int, int]]:
    """Shortcuts (a, b, w) needed if ``u`` were removed now."""
    shortcuts = []
    for a, w_in in graph.pred[u].items():
        for b, w_out in graph.succ[u].items():
            if a == b:
                continue
            through = w_in + w_out
            if not graph.witness_exists(a, b, u, through):
                shortcuts.append((a, b, through))
    return shortcuts


def _priority(graph: _DynamicGraph, u: int, deleted_neighbours: list[int]) -> int:
    shortcuts = _required_shortcuts(graph, u)
    incident = len(graph.pred[u]) + len(graph.succ[u])
    return len(shortcuts) - incident + deleted_neighbours[u]


def contract_stations(
    station_graph: StationGraph, num_to_remove: int
) -> ContractionResult:
    """Contract the ``num_to_remove`` least important stations.

    Uses lazy priority re-evaluation: the popped candidate is
    recomputed, and re-inserted if it no longer has minimum priority.
    """
    n = station_graph.num_stations
    if not (0 <= num_to_remove <= n):
        raise ValueError(
            f"num_to_remove must be within [0, {n}], got {num_to_remove}"
        )
    graph = _DynamicGraph(station_graph)
    deleted_neighbours = [0] * n

    heap: list[tuple[int, int]] = []
    for u in range(n):
        heapq.heappush(heap, (_priority(graph, u, deleted_neighbours), u))

    removal_order: list[int] = []
    shortcuts_added = 0
    while heap and len(removal_order) < num_to_remove:
        prio, u = heapq.heappop(heap)
        if not graph.alive[u]:
            continue
        current = _priority(graph, u, deleted_neighbours)
        if heap and current > heap[0][0]:
            heapq.heappush(heap, (current, u))  # lazy re-evaluation
            continue
        shortcuts = _required_shortcuts(graph, u)
        neighbours = set(graph.pred[u]) | set(graph.succ[u])
        graph.remove_node(u)
        for a, b, w in shortcuts:
            graph.add_edge(a, b, w)
        shortcuts_added += len(shortcuts)
        for v in neighbours:
            if graph.alive[v]:
                deleted_neighbours[v] += 1
        removal_order.append(u)

    survivors = [u for u in range(n) if graph.alive[u]]
    return ContractionResult(
        removal_order=removal_order,
        survivors=survivors,
        shortcuts_added=shortcuts_added,
    )
