"""Transfer-station selection (paper §4, "Selection of Transfer
Stations").

Two strategies:

* **contraction** — contract the station graph until only a target
  fraction of stations survives; survivors are the transfer stations
  (the paper marks "any station ... not removed after the contraction
  of c stations");
* **degree** — every station of station-graph degree > k.
"""

from __future__ import annotations

import numpy as np

from repro.graph.station_graph import StationGraph, build_station_graph
from repro.query.contraction import contract_stations
from repro.timetable.types import Timetable


def select_by_contraction(
    station_graph: StationGraph, fraction: float
) -> list[int]:
    """Keep the ``fraction`` of stations surviving contraction longest.

    ``fraction`` is the share of stations to mark as transfer stations
    (Table 2 uses 1 %, 2.5 %, 5 %, 10 %, 20 %, 30 %).
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    n = station_graph.num_stations
    keep = int(round(n * fraction))
    result = contract_stations(station_graph, n - keep)
    return sorted(result.survivors)


def select_by_degree(station_graph: StationGraph, min_degree: int) -> list[int]:
    """All stations with station-graph degree strictly above
    ``min_degree`` (the paper's ``deg > 2`` rows use ``min_degree=2``)."""
    return [
        s
        for s in range(station_graph.num_stations)
        if station_graph.degree(s) > min_degree
    ]


def select_transfer_stations(
    timetable: Timetable,
    *,
    method: str = "contraction",
    fraction: float = 0.05,
    min_degree: int = 2,
    station_graph: StationGraph | None = None,
) -> np.ndarray:
    """Unified entry point; returns a sorted int64 station-id vector."""
    if station_graph is None:
        station_graph = build_station_graph(timetable)
    if method == "contraction":
        stations = select_by_contraction(station_graph, fraction)
    elif method == "degree":
        stations = select_by_degree(station_graph, min_degree)
    else:
        raise ValueError(
            f"unknown selection method {method!r}; use contraction or degree"
        )
    return np.asarray(stations, dtype=np.int64)
