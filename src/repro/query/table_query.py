"""Station-to-station queries with distance-table pruning (paper §4).

Combines, per query:

* the **stopping criterion** (Theorem 2) — always on by default;
* **distance-table pruning** (Theorem 3) for *global* queries: per
  (connection, via-station) upper bounds ``µ_{i,j}`` maintained at
  transfer-station settles, pruning nodes that provably cannot improve
  the arrival at any via station of the target;
* **target pruning** (Theorem 4) when the target is itself a transfer
  station: per-connection lower bounds ``γ_i``, valid once every queue
  item has a transfer-station ancestor, stopping a connection's search
  outright when upper and lower bounds meet;
* the ``S, T ∈ S_trans`` **shortcut**: answer straight from the table.

The parallel setup mirrors §3.2: threads own disjoint connection
subsets, and since all pruning state (``µ_{i,j}``, ``γ_i``, ``Tm``) is
indexed per connection, sequentially sharing one pruner across thread
runs is behaviourally identical to per-thread state.

The :class:`~repro.service.TransitService` facade is the usual way to
reach this engine (``service.journey``): it injects the shared
prepared artifacts via the ``arrays=``/``station_graph=`` parameters
so repeated engine construction over one dataset re-packs nothing
(docs/API.md).  Direct construction stays supported and behaves
identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.merge import merge_thread_results
from repro.core.partition import PARTITION_STRATEGIES
from repro.core.spcs import PRUNE_CONNECTION, PRUNE_NODE, PRUNE_NONE
from repro.core.parallel import KERNELS
from repro.core.spcs_kernel import run_spcs_search
from repro.graph.td_arrays import TDGraphArrays, packed_arrays
from repro.functions.algebra import Profile
from repro.functions.piecewise import INF_TIME
from repro.graph.station_graph import StationGraph, build_station_graph
from repro.graph.td_model import TDGraph
from repro.query.distance_table import DistanceTable
from repro.query.via import ViaInfo, compute_via_stations


class DistanceTablePruner:
    """Implements Theorems 3 and 4 as an SPCS settle hook."""

    def __init__(
        self,
        graph: TDGraph,
        table: DistanceTable,
        source: int,
        target: int,
        via_stations: tuple[int, ...],
        *,
        target_pruning: bool = True,
    ) -> None:
        self._graph = graph
        self._table = table
        self._source = source
        self._target = target
        self._via = via_stations
        self._transfer_time = [s.transfer_time for s in graph.timetable.stations]
        self._target_is_transfer = table.contains(target)
        self._target_pruning = target_pruning and self._target_is_transfer
        #: µ_{i,j}: upper bound on the earliest train catchable at via
        #: station j for connection i, even with a transfer there.
        self._mu: dict[int, list[int]] = {}
        #: Per-station cache of the via-station profiles (and target
        #: profile) so the hot settle path avoids table index lookups.
        self._via_profiles: dict[int, list] = {}
        self._target_profiles: dict[int, object] = {}
        #: γ_i: tentative lower bound on the arrival at T (Theorem 4).
        self._gamma: dict[int, int] = {}
        #: arr(T, i) recorded when target pruning stops connection i.
        self.final_arrivals: dict[int, int] = {}
        #: Diagnostics.
        self.mu_updates = 0
        self.prunes = 0
        self.connection_stops = 0

    def on_settle(
        self, node: int, conn_index: int, arrival: int, ancestry_complete: bool
    ) -> int:
        graph = self._graph
        station = graph.node_station[node]
        if station == self._source:
            # Settles that never left the source (its seed route nodes,
            # the source station node, re-boarding platforms) do not
            # represent paths starting with connection i: letting them
            # contribute µ/γ would encode "wait for a later train" —
            # sound for mid-day anchors, where reduction covers it with
            # a later-index connection, but *wrong* for the last trains
            # of the day, whose cheaper alternative wraps past midnight
            # to a smaller index that reduction cannot substitute.
            return PRUNE_NONE
        if not self._table.contains(station):
            return PRUNE_NONE
        transfer_here = self._transfer_time[station]

        if self._target_pruning:
            target = self._target
            target_profile = self._target_profiles.get(station)
            if target_profile is None and station != target:
                target_profile = self._table.profile_between(station, target)
                self._target_profiles[station] = target_profile
            gamma = self._gamma.get(conn_index, INF_TIME)
            lower = (
                arrival
                if station == target
                else target_profile.earliest_arrival(arrival)
            )
            if lower < gamma:
                gamma = lower
                self._gamma[conn_index] = gamma
            if ancestry_complete and gamma < INF_TIME:
                if station == target:
                    upper = arrival
                else:
                    upper = target_profile.earliest_arrival(
                        arrival + transfer_here
                    )
                if upper <= gamma:
                    best = self.final_arrivals.get(conn_index, INF_TIME)
                    if upper < best:
                        self.final_arrivals[conn_index] = upper
                    self.connection_stops += 1
                    return PRUNE_CONNECTION

        if not self._via:
            return PRUNE_NONE

        # Per-station cache: (via station, its transfer time, profile or
        # None when station == via).
        cached = self._via_profiles.get(station)
        if cached is None:
            cached = [
                (
                    via,
                    self._transfer_time[via],
                    None
                    if station == via
                    else self._table.profile_between(station, via),
                )
                for via in self._via
            ]
            self._via_profiles[station] = cached

        # Theorem 3: update µ_{i,j} from this transfer-station settle...
        mu = self._mu.get(conn_index)
        if mu is None:
            mu = [INF_TIME] * len(self._via)
            self._mu[conn_index] = mu
        ready = arrival + transfer_here
        for j, (via, via_transfer, profile) in enumerate(cached):
            if profile is None:
                candidate = arrival + via_transfer
            else:
                reach = profile.earliest_arrival(ready)
                if reach >= INF_TIME:
                    continue
                candidate = reach + via_transfer
            if candidate < mu[j]:
                mu[j] = candidate
                self.mu_updates += 1

        # ... then prune if v provably cannot matter for any via station.
        for j, (via, _via_transfer, profile) in enumerate(cached):
            lower = arrival if profile is None else profile.earliest_arrival(arrival)
            if lower <= mu[j]:
                return PRUNE_NONE
        self.prunes += 1
        return PRUNE_NODE


@dataclass(slots=True)
class StationToStationResult:
    """Answer and accounting of one station-to-station profile query."""

    source: int
    target: int
    profile: Profile
    #: "local", "global", "table" (both endpoints transfer) or "trivial".
    classification: str
    settled_connections: int
    time_per_thread: list[float]
    merge_time: float
    total_time: float
    table_prunes: int = 0
    connection_stops: int = 0

    @property
    def simulated_time(self) -> float:
        slowest = max(self.time_per_thread) if self.time_per_thread else 0.0
        return slowest + self.merge_time

    def earliest_arrival(self, tau: int) -> int:
        return self.profile.earliest_arrival(tau)


class StationToStationEngine:
    """Reusable engine: build once per (graph, distance table) pair.

    ``kernel`` selects the per-subset search implementation: ``python``
    (the reference object-graph SPCS) or ``flat`` (the flat-array
    kernel over a packed :class:`TDGraphArrays`; identical reduced
    profiles, several times faster).  All pruning hooks — the stopping
    criterion, Theorem 3 distance-table pruning and Theorem 4 target
    pruning — run identically on either kernel because the pruner
    speaks the integer verdict-code protocol.
    """

    def __init__(
        self,
        graph: TDGraph,
        table: DistanceTable | None = None,
        *,
        num_threads: int = 8,
        strategy: str = "equal-connections",
        stopping: bool = True,
        table_pruning: bool = True,
        target_pruning: bool = True,
        queue: str = "binary",
        kernel: str = "python",
        arrays: TDGraphArrays | None = None,
        station_graph: StationGraph | None = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        self.graph = graph
        self.table = table
        self.num_threads = num_threads
        self.strategy = strategy
        self.stopping = stopping
        self.table_pruning = table_pruning and table is not None
        self.target_pruning = target_pruning and table is not None
        self.queue = queue
        self.kernel = kernel
        # Shared prepared artifacts (the service facade injects both so
        # every engine over one dataset reuses one pack / one station
        # graph); standalone construction falls back to the memoized
        # pack cache and a fresh station graph.
        if kernel == "flat":
            self._arrays = arrays if arrays is not None else packed_arrays(graph)
            # Pay the kernel-side mirror build at engine construction,
            # not inside the first query's timed search loop.
            self._arrays.kernel_adjacency()
        else:
            self._arrays = None
        self.station_graph: StationGraph = (
            station_graph
            if station_graph is not None
            else build_station_graph(graph.timetable)
        )
        num_stations = graph.num_stations
        self._transfer_mask = np.zeros(num_stations, dtype=bool)
        if table is not None:
            self._transfer_mask[table.transfer_stations] = True
        #: Per-target via info, reused across queries to the same
        #: target (the mask and station graph are fixed per engine).
        self._via_cache: dict[int, ViaInfo] = {}

    def classify(self, source: int, target: int) -> tuple[str, ViaInfo | None]:
        """Classify a query; the via info is reused by the pruner."""
        if source == target:
            return "trivial", None
        if self.table is not None and self.table.contains(source) and self.table.contains(target):
            return "table", None
        if self.table is None or not self.table_pruning:
            return "local", None
        via_info = self._via_cache.get(target)
        if via_info is None:
            via_info = compute_via_stations(
                self.station_graph, target, self._transfer_mask
            )
            self._via_cache[target] = via_info
        return via_info.classify(source), via_info

    def query(self, source: int, target: int) -> StationToStationResult:
        """All best connections from ``source`` to ``target`` over a full
        period, as a reduced profile."""
        graph = self.graph
        if not graph.is_station_node(source) or not graph.is_station_node(target):
            raise ValueError("source and target must be station nodes")

        start_total = time.perf_counter()
        classification, via_info = self.classify(source, target)

        if classification == "trivial":
            profile = Profile(
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                graph.timetable.period,
            )
            return StationToStationResult(
                source=source,
                target=target,
                profile=profile,
                classification="trivial",
                settled_connections=0,
                time_per_thread=[],
                merge_time=0.0,
                total_time=time.perf_counter() - start_total,
            )

        if classification == "table":
            # Both endpoints are transfer stations: the table already
            # holds all best connections (paper §4, Special Cases).
            profile = self.table.profile_between(source, target)
            return StationToStationResult(
                source=source,
                target=target,
                profile=profile,
                classification="table",
                settled_connections=0,
                time_per_thread=[],
                merge_time=0.0,
                total_time=time.perf_counter() - start_total,
            )

        timetable = graph.timetable
        conns = timetable.outgoing_connections(source)
        conn_deps = [c.dep_time for c in conns]
        parts = PARTITION_STRATEGIES[self.strategy](
            conn_deps, self.num_threads, timetable.period
        )

        use_table = (
            classification == "global"
            and self.table is not None
            and self.table_pruning
            and via_info is not None
        )
        pruner: DistanceTablePruner | None = None
        if use_table:
            pruner = DistanceTablePruner(
                graph,
                self.table,
                source,
                target,
                tuple(sorted(via_info.via_stations)),
                target_pruning=self.target_pruning,
            )
        elif (
            self.table is not None
            and self.target_pruning
            and self.table.contains(target)
        ):
            # Local query to a transfer-station target: Theorem 4 only.
            pruner = DistanceTablePruner(
                graph, self.table, source, target, (), target_pruning=True
            )

        # Ancestry must not count the source station itself: the pruner
        # skips source settles (they have not boarded connection i), so
        # γ's validity condition has to require a *contributing*
        # transfer-station ancestor.
        ancestry_mask = None
        if pruner is not None:
            ancestry_mask = self._transfer_mask.copy()
            ancestry_mask[source] = False

        thread_results = []
        times: list[float] = []
        for subset in parts:
            t0 = time.perf_counter()
            thread_results.append(
                run_spcs_search(
                    graph,
                    self._arrays,
                    source,
                    connection_subset=subset,
                    target=target if self.stopping else None,
                    pruner=pruner,
                    transfer_stations=ancestry_mask,
                    queue=self.queue,
                )
            )
            times.append(time.perf_counter() - t0)

        t_merge = time.perf_counter()
        merged = merge_thread_results(thread_results, len(conns))
        # Fold in arrivals recorded by target pruning (Theorem 4).
        if pruner is not None and pruner.final_arrivals:
            for g, arrival in pruner.final_arrivals.items():
                if arrival < merged.labels[target, g]:
                    merged.labels[target, g] = arrival
        profile = merged.profile(target)
        merge_time = time.perf_counter() - t_merge

        settled = sum(r.stats.settled_connections for r in thread_results)
        return StationToStationResult(
            source=source,
            target=target,
            profile=profile,
            classification=classification,
            settled_connections=settled,
            time_per_thread=times,
            merge_time=merge_time,
            total_time=time.perf_counter() - start_total,
            table_prunes=pruner.prunes if pruner else 0,
            connection_stops=pruner.connection_stops if pruner else 0,
        )
