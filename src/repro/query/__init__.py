"""Station-to-station queries (paper §4).

* :mod:`repro.query.via` — local stations, via stations, local/global
  classification (reverse DFS on the station graph).
* :mod:`repro.query.distance_table` — the profile distance table ``D``
  over transfer stations, precomputed with the parallel one-to-all
  algorithm.
* :mod:`repro.query.table_query` — the full station-to-station engine:
  stopping criterion + distance-table pruning (Theorem 3) + target
  pruning (Theorem 4) + the ``S, T ∈ S_trans`` shortcut.
* :mod:`repro.query.batch` — the batched engine: amortizes graph
  packing and worker-pool startup over many queries (the
  traffic-serving workload shape).
* :mod:`repro.query.transfer_selection` — choosing ``S_trans`` by
  station-graph contraction or by degree.
* :mod:`repro.query.contraction` — the CH-style contraction routine.
* :mod:`repro.query.min_transfers` — transfer-minimizing read-offs
  over multi-criteria searches (Pareto trade-off scans, fewest-transfer
  options, transfer-bounded day profiles).
"""

from repro.query.via import ViaInfo, compute_via_stations
from repro.query.min_transfers import (
    TradeoffFront,
    TradeoffScan,
    min_transfer_option,
    scan_tradeoffs,
    tradeoff_fronts,
    transfer_bounded_counts,
)
from repro.query.distance_table import DistanceTable, build_distance_table
from repro.query.table_query import (
    DistanceTablePruner,
    StationToStationEngine,
    StationToStationResult,
)
from repro.query.batch import (
    BATCH_BACKENDS,
    BatchQueryEngine,
    BatchResult,
    BatchStats,
)
from repro.query.transfer_selection import (
    select_by_contraction,
    select_by_degree,
    select_transfer_stations,
)

__all__ = [
    "ViaInfo",
    "compute_via_stations",
    "TradeoffFront",
    "TradeoffScan",
    "min_transfer_option",
    "scan_tradeoffs",
    "tradeoff_fronts",
    "transfer_bounded_counts",
    "DistanceTable",
    "build_distance_table",
    "DistanceTablePruner",
    "StationToStationEngine",
    "StationToStationResult",
    "BATCH_BACKENDS",
    "BatchQueryEngine",
    "BatchResult",
    "BatchStats",
    "select_by_contraction",
    "select_by_degree",
    "select_transfer_stations",
]
