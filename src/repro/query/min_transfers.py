"""Transfer-minimizing queries over multi-criteria profile searches.

The §6 search (:func:`repro.core.multicriteria.mc_profile_search`)
labels every (node, connection, transfer budget) triple; this module
holds the read-off logic that turns those labels into journeys and
reports — the fewest-transfers option of a Pareto front, scanning a
network for relations with genuine speed-vs-convenience trade-offs,
and counting optimal connections per transfer budget.  The served
``min-transfers`` request shape (:class:`repro.service.model.
MinTransfersRequest`) and ``examples/min_transfers.py`` are both thin
callers of these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.multicriteria import McProfileResult, mc_profile_search
from repro.functions.piecewise import INF_TIME
from repro.graph.td_model import TDGraph

__all__ = [
    "TradeoffFront",
    "TradeoffScan",
    "min_transfer_option",
    "scan_tradeoffs",
    "tradeoff_fronts",
    "transfer_bounded_counts",
]

#: Departure anchors a trade-off scan probes by default: the morning
#: shoulder, the morning peak, the evening peak.
DEFAULT_DEPARTURES: tuple[int, ...] = (7 * 60, 8 * 60, 17 * 60)


@dataclass(frozen=True, slots=True)
class TradeoffFront:
    """One station whose Pareto front shows a genuine trade-off.

    ``options`` are the non-dominated (transfers, arrival) pairs for
    departing at or after ``departure`` — at least two of them, i.e. an
    extra transfer buys a strictly earlier arrival.
    """

    station: int
    departure: int
    options: tuple[tuple[int, int], ...]


@dataclass(slots=True)
class TradeoffScan:
    """Result of :func:`scan_tradeoffs`: the source with the most
    trade-off fronts, its search result, and those fronts."""

    source: int
    result: McProfileResult
    fronts: tuple[TradeoffFront, ...]


def min_transfer_option(
    result: McProfileResult, station: int, departure: int
) -> tuple[int, int] | None:
    """The fewest-transfers (transfers, arrival) option for reaching
    ``station`` departing at or after ``departure`` — the first entry
    of the Pareto front — or ``None`` when unreachable within the
    search's transfer budget."""
    front = result.pareto_front(station, departure)
    return front[0] if front else None


def tradeoff_fronts(
    result: McProfileResult,
    stations: Iterable[int],
    *,
    departures: Sequence[int] = DEFAULT_DEPARTURES,
    min_options: int = 2,
) -> list[TradeoffFront]:
    """Stations (excluding the source) whose front shows at least
    ``min_options`` trade-offs at the first matching departure anchor.

    Each station contributes at most one front: the first departure in
    ``departures`` whose front is large enough wins, matching the
    scan's "does this relation trade speed for convenience at all"
    question rather than enumerating every anchor.
    """
    fronts: list[TradeoffFront] = []
    for station in stations:
        if station == result.source:
            continue
        for tau in departures:
            front = result.pareto_front(station, tau)
            if len(front) >= min_options:
                fronts.append(TradeoffFront(station, tau, tuple(front)))
                break
    return fronts


def scan_tradeoffs(
    graph: TDGraph,
    *,
    sources: Iterable[int] | None = None,
    departures: Sequence[int] = DEFAULT_DEPARTURES,
    max_transfers: int = 4,
    min_options: int = 2,
    stop_after: int = 3,
) -> TradeoffScan:
    """Scan candidate sources for the one with the most trade-off
    fronts (on sparse rail networks many relations are dominated by a
    single line, so a blind source choice often shows nothing).

    Runs one multi-criteria search per candidate, keeps the source
    with the most fronts, and stops early once ``stop_after`` fronts
    are found.  Deterministic for a fixed graph and argument set.
    """
    timetable = graph.timetable
    if sources is None:
        sources = range(min(timetable.num_stations, 16))
    best: TradeoffScan | None = None
    for source in sources:
        candidate = mc_profile_search(graph, source, max_transfers=max_transfers)
        fronts = tradeoff_fronts(
            candidate,
            range(timetable.num_stations),
            departures=departures,
            min_options=min_options,
        )
        if best is None or len(fronts) > len(best.fronts):
            best = TradeoffScan(source, candidate, tuple(fronts))
        if len(best.fronts) >= stop_after:
            break
    if best is None:
        raise ValueError("scan_tradeoffs needs at least one source")
    return best


def transfer_bounded_counts(
    result: McProfileResult, station: int, budgets: Sequence[int]
) -> dict[int, int]:
    """Per transfer budget, the number of reachable optimal connections
    toward ``station`` over the whole period (the day-profile view of
    how much each extra transfer opens up)."""
    counts: dict[int, int] = {}
    for budget in budgets:
        points = result.profile_points(station, budget)
        counts[budget] = sum(1 for p in points if p[1] < INF_TIME)
    return counts
