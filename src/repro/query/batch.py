"""Batched query engine — the traffic-serving workload shape.

A deployment answering user journeys does not run one cold query at a
time: it holds a prepared graph and distance table and answers a
*stream* of (source, target) requests.  :class:`BatchQueryEngine`
models that shape.  Construction pays every per-dataset cost exactly
once — packing the graph into its flat-array form, building the station
graph, wiring the distance table — and then amortizes it over many
queries, optionally distributing the queries themselves over a worker
pool (a different axis than the per-query connection partitioning of
paper §3.2, which the inner engine still applies).

Semantics contract: the batch engine answers every query with the very
same code path a one-at-a-time
:class:`~repro.query.table_query.StationToStationEngine` would use —
same kernel, same stopping criterion, same distance-table and target
pruning — so results are bitwise-identical to serial one-at-a-time
execution regardless of backend.  ``tests/query/test_batch_engine.py``
enforces this.

Backends for distributing queries:

* ``serial``    — answer in submission order on the calling thread;
* ``threads``   — thread pool; GIL-bound for the pure-Python kernels
  but overlaps with any C-level work;
* ``processes`` — fork pool.  The engine (graph, packed arrays, table)
  is inherited copy-on-write by the workers, so startup is paid once
  per batch, not once per query; only the per-query results travel
  back through pickling.

Batched workloads are usually issued through
:meth:`repro.service.TransitService.batch`, which owns the prepared
artifacts and injects them here (``arrays=``/``station_graph=``);
direct construction stays supported and behaves identically
(docs/API.md).
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.parallel import ParallelProfileResult, parallel_profile_search
from repro.graph.station_graph import StationGraph
from repro.graph.td_arrays import TDGraphArrays
from repro.graph.td_model import TDGraph
from repro.query.distance_table import DistanceTable
from repro.query.table_query import StationToStationEngine, StationToStationResult

#: Valid ``backend`` arguments of :class:`BatchQueryEngine`.
BATCH_BACKENDS = ("serial", "threads", "processes")

# Fork-worker state (inherited copy-on-write; see _run_forked), keyed
# by a token unique to the issuing engine so concurrent fan-outs from
# different engines never clobber each other; each work item carries
# its engine's token, which forked workers resolve against their
# inherited copy of this dict.
_BATCH_STATE: dict[int, object] = {}
_STATE_TOKENS = itertools.count()


def _query_worker(payload: tuple[int, int, tuple[int, int]]):
    token, idx, (source, target) = payload
    engine: StationToStationEngine = _BATCH_STATE[token]  # type: ignore[assignment]
    return idx, engine.query(source, target)


def _profile_worker(payload: tuple[int, int, tuple[int, int | None]]):
    token, idx, (source, num_threads) = payload
    batch: BatchQueryEngine = _BATCH_STATE[token]  # type: ignore[assignment]
    return idx, batch._one_profile(source, num_threads)


@dataclass(slots=True)
class BatchStats:
    """Throughput accounting of one batch run.

    ``backend``/``num_workers`` record what actually executed — a
    batch of ≤1 queries short-circuits to serial on the calling
    thread whatever the engine was configured with.
    """

    num_queries: int
    backend: str
    kernel: str
    #: Workers used to distribute queries (1 for serial).
    num_workers: int
    #: Seconds spent preparing shared state (packing, pool spin-up is
    #: included in total_seconds only — fork cost is per batch).
    setup_seconds: float
    #: Wall-clock of the whole batch, excluding engine construction.
    total_seconds: float

    @property
    def queries_per_second(self) -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return self.num_queries / self.total_seconds


@dataclass(slots=True)
class BatchResult:
    """Per-query results (in submission order) plus batch accounting."""

    results: list
    stats: BatchStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, idx: int):
        return self.results[idx]


@dataclass
class BatchQueryEngine:
    """Amortize per-dataset setup over many queries (see module doc).

    Parameters mirror :class:`StationToStationEngine` where they share
    meaning.  ``num_threads`` is the *per-query* connection
    partitioning (paper §3.2); ``workers`` is how many pool workers
    distribute whole queries for the ``threads``/``processes``
    backends (defaults to 4).
    """

    graph: TDGraph
    table: DistanceTable | None = None
    kernel: str = "flat"
    backend: str = "serial"
    workers: int = 4
    num_threads: int = 1
    strategy: str = "equal-connections"
    stopping: bool = True
    table_pruning: bool = True
    target_pruning: bool = True
    queue: str = "binary"
    #: Optional prepared artifacts (injected by the service facade so
    #: the batch engine shares one pack / station graph with every
    #: other query path over the same dataset).
    arrays: TDGraphArrays | None = None
    station_graph: StationGraph | None = None
    setup_seconds: float = field(init=False, default=0.0)
    _engine: StationToStationEngine = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BATCH_BACKENDS}"
            )
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        t0 = time.perf_counter()
        # Constructing the engine packs the graph and warms the
        # kernel-side mirrors (flat kernel), so fork-based batches
        # inherit the finished pack instead of rebuilding per worker;
        # setup_seconds records that one-time cost.
        self._engine = StationToStationEngine(
            self.graph,
            self.table,
            num_threads=self.num_threads,
            strategy=self.strategy,
            stopping=self.stopping,
            table_pruning=self.table_pruning,
            target_pruning=self.target_pruning,
            queue=self.queue,
            kernel=self.kernel,
            arrays=self.arrays,
            station_graph=self.station_graph,
        )
        self.setup_seconds = time.perf_counter() - t0

    # -- station-to-station batches ------------------------------------

    def query_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> BatchResult:
        """Answer many (source, target) profile queries.

        Results come back in submission order and are identical to
        calling :meth:`StationToStationEngine.query` once per pair.
        """
        indexed = list(enumerate(pairs))
        t0 = time.perf_counter()
        if self.backend == "serial" or len(indexed) <= 1:
            effective = "serial"
            results = [self._engine.query(s, t) for _, (s, t) in indexed]
        elif self.backend == "threads":
            effective = "threads"
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(
                    pool.map(lambda it: self._engine.query(*it[1]), indexed)
                )
        else:
            results, effective = self._run_forked(
                _query_worker, indexed, self._engine
            )
        total = time.perf_counter() - t0
        return BatchResult(
            results=results,
            stats=self._stats(len(indexed), total, effective),
        )

    # -- one-to-all batches --------------------------------------------

    def profile_many(
        self,
        sources: Sequence[int],
        *,
        num_threads: Sequence[int | None] | None = None,
    ) -> BatchResult:
        """Run one-to-all profile searches from many sources.

        Each element is a
        :class:`~repro.core.parallel.ParallelProfileResult`, identical
        to a fresh :func:`parallel_profile_search` call with this
        engine's settings.  ``num_threads``, when given, is a sequence
        parallel to ``sources`` overriding the per-query connection
        partitioning for individual searches (``None`` entries fall
        back to the engine's ``num_threads``).
        """
        if num_threads is None:
            num_threads = [None] * len(sources)
        if len(num_threads) != len(sources):
            raise ValueError(
                f"num_threads must parallel sources: "
                f"{len(num_threads)} vs {len(sources)}"
            )
        indexed = list(enumerate(zip(sources, num_threads)))
        t0 = time.perf_counter()
        if self.backend == "serial" or len(indexed) <= 1:
            effective = "serial"
            results = [self._one_profile(s, p) for _, (s, p) in indexed]
        elif self.backend == "threads":
            effective = "threads"
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(
                    pool.map(lambda it: self._one_profile(*it[1]), indexed)
                )
        else:
            results, effective = self._run_forked(
                _profile_worker, indexed, self
            )
        total = time.perf_counter() - t0
        return BatchResult(
            results=results,
            stats=self._stats(len(indexed), total, effective),
        )

    # -- internals ------------------------------------------------------

    def _one_profile(
        self, source: int, num_threads: int | None = None
    ) -> ParallelProfileResult:
        return parallel_profile_search(
            self.graph,
            source,
            num_threads if num_threads is not None else self.num_threads,
            strategy=self.strategy,
            backend="serial",
            queue=self.queue,
            kernel=self.kernel,
            # Reuse the pack the inner engine already owns (one pack
            # per dataset, however many query paths run over it).
            arrays=self._engine._arrays,
        )

    def _run_forked(
        self, worker, indexed, state_value
    ) -> tuple[list, str]:
        """Run ``worker`` over a fork pool; returns the ordered results
        and the backend that actually executed (``threads`` when the
        platform has no fork).

        ``state_value`` is registered in :data:`_BATCH_STATE` under a
        fresh token for the duration of the fan-out, and every work
        item is tagged with that token — so two engines (or two
        concurrent batches on one engine) forking at the same time each
        resolve their own state instead of clobbering a shared key.
        """
        import multiprocessing as mp

        token = next(_STATE_TOKENS)
        payloads = [(token, idx, item) for idx, item in indexed]
        _BATCH_STATE[token] = state_value
        try:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                effective = "threads"
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    out = list(pool.map(worker, payloads))
            else:
                effective = "processes"
                with ctx.Pool(processes=self.workers) as pool:
                    out = pool.map(worker, payloads)
        finally:
            _BATCH_STATE.pop(token, None)
        out.sort(key=lambda pair: pair[0])
        return [r for _, r in out], effective

    def _stats(self, n: int, total: float, effective_backend: str) -> BatchStats:
        # Report what actually ran: tiny batches short-circuit to
        # serial regardless of the configured backend.
        return BatchStats(
            num_queries=n,
            backend=effective_backend,
            kernel=self.kernel,
            num_workers=1 if effective_backend == "serial" else self.workers,
            setup_seconds=self.setup_seconds,
            total_seconds=total,
        )
