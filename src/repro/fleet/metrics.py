"""Gateway-side observability.

One :class:`GatewayMetrics` belongs to one
:class:`~repro.fleet.gateway.FleetGateway`.  Mutation happens on the
gateway's event-loop thread only (forward results are observed after
``run_in_executor`` returns), so — like
:class:`~repro.server.metrics.ServerMetrics` — no locking is needed.

The gateway's request counters deliberately reuse the worker's
endpoint labels, so a dashboard can overlay "requests the fleet
received" (gateway) with "requests each worker served" (worker
``/metrics``, aggregated in the gateway snapshot's ``fleet`` section)
and attribute the difference to failovers and rejections.  What is
*new* here is the routing story: per-worker forward counts, failovers
(a query re-sent to a peer after its first worker died mid-request),
ejections/readmissions, delay-log catch-up replays, and the duration
of the routing pause each coordinated swap holds.
"""

from __future__ import annotations

import time

from repro.server.metrics import LatencyHistogram

__all__ = ["GatewayMetrics"]


class GatewayMetrics:
    """Routing/forwarding accounting of one gateway (loop-only)."""

    def __init__(self) -> None:
        self._started = time.monotonic()
        self.requests_total: dict[str, int] = {}  # guarded-by: loop
        self.responses_total: dict[str, dict[str, int]] = {}  # guarded-by: loop
        self.latency: dict[str, LatencyHistogram] = {}  # guarded-by: loop
        self.rejected_total = 0  # guarded-by: loop
        self.rejected_by_endpoint: dict[str, int] = {}  # guarded-by: loop
        self.inflight = 0  # guarded-by: loop
        #: Forwards that returned (any status), per worker name.
        self.forwards_total: dict[str, int] = {}  # guarded-by: loop
        #: Queries re-sent to a peer after the first worker failed
        #: (transport error or retriable 503).
        self.failovers_total = 0  # guarded-by: loop
        #: 503s answered because no healthy worker was available.
        self.no_worker_total = 0  # guarded-by: loop
        self.ejections_total: dict[str, int] = {}  # guarded-by: loop
        self.readmissions_total: dict[str, int] = {}  # guarded-by: loop
        #: Catch-up replay POSTs sent to restarted workers before
        #: readmission (the catch-up protocol, ``docs/FLEET.md``).
        self.catch_up_batches_total = 0  # guarded-by: loop
        #: Logged delay batches those posts *represented* — coalescing
        #: merges consecutive slack-free batches, so this counts the
        #: batches caught up, not the posts sent.
        self.catch_up_coalesced_total = 0  # guarded-by: loop
        #: Coordinated swaps that requested the incremental delta
        #: replan (``replan: incremental``), per dataset.
        self.incremental_swaps_total: dict[str, int] = {}  # guarded-by: loop
        #: Gateway-coordinated swaps committed, per dataset.
        self.swaps_total: dict[str, int] = {}  # guarded-by: loop
        self.last_swap_seconds: dict[str, float] = {}  # guarded-by: loop
        #: How long the last swap held the dataset's routing gate
        #: closed (drain + fleet-wide commit), in seconds.
        self.last_swap_pause_seconds: dict[str, float] = {}  # guarded-by: loop
        self.health_sweep_errors_total = 0  # guarded-by: loop

    # -- observation hooks ---------------------------------------------

    def observe_request(self, endpoint: str) -> None:
        self.requests_total[endpoint] = (
            self.requests_total.get(endpoint, 0) + 1
        )

    def observe_response(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        per_status = self.responses_total.setdefault(endpoint, {})
        key = str(status)
        per_status[key] = per_status.get(key, 0) + 1
        hist = self.latency.get(endpoint)
        if hist is None:
            hist = self.latency[endpoint] = LatencyHistogram()
        hist.observe(seconds)

    def observe_reject(self, endpoint: str) -> None:
        self.rejected_total += 1
        self.rejected_by_endpoint[endpoint] = (
            self.rejected_by_endpoint.get(endpoint, 0) + 1
        )

    def observe_forward(self, worker: str) -> None:
        self.forwards_total[worker] = self.forwards_total.get(worker, 0) + 1

    def observe_ejection(self, worker: str) -> None:
        self.ejections_total[worker] = (
            self.ejections_total.get(worker, 0) + 1
        )

    def observe_readmission(self, worker: str) -> None:
        self.readmissions_total[worker] = (
            self.readmissions_total.get(worker, 0) + 1
        )

    def observe_swap(
        self,
        dataset: str,
        seconds: float,
        pause_seconds: float,
        *,
        incremental: bool = False,
    ) -> None:
        self.swaps_total[dataset] = self.swaps_total.get(dataset, 0) + 1
        self.last_swap_seconds[dataset] = seconds
        self.last_swap_pause_seconds[dataset] = pause_seconds
        if incremental:
            self.incremental_swaps_total[dataset] = (
                self.incremental_swaps_total.get(dataset, 0) + 1
            )

    # -- rendering ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe gateway section of the fleet ``/metrics``."""
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests_total": dict(self.requests_total),
            "responses_total": {
                endpoint: dict(statuses)
                for endpoint, statuses in self.responses_total.items()
            },
            "rejected_total": self.rejected_total,
            "rejected_by_endpoint": dict(self.rejected_by_endpoint),
            "inflight": self.inflight,
            "latency": {
                endpoint: hist.snapshot()
                for endpoint, hist in self.latency.items()
            },
            "forwards_total": dict(self.forwards_total),
            "failovers_total": self.failovers_total,
            "no_worker_total": self.no_worker_total,
            "ejections_total": dict(self.ejections_total),
            "readmissions_total": dict(self.readmissions_total),
            "catch_up_batches_total": self.catch_up_batches_total,
            "catch_up_coalesced_total": self.catch_up_coalesced_total,
            "swaps_total": dict(self.swaps_total),
            "incremental_swaps_total": dict(self.incremental_swaps_total),
            "last_swap_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.last_swap_seconds.items()
            },
            "last_swap_pause_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.last_swap_pause_seconds.items()
            },
            "health_sweep_errors_total": self.health_sweep_errors_total,
        }
