"""Coalescing the per-dataset delay log for worker catch-up replay.

The gateway records every committed delay batch (``swap.py``) so a
worker (re)joining the fleet can be brought to the current generation
by replaying what it missed.  Naively that is one ``apply`` POST per
missed batch — O(committed batches) sequential replans per restart,
which after a long stream dwarfs the worker's own warm start.

:func:`coalesce_delay_log` collapses a missed-log suffix into a
*bounded* replay plan.  The key fact is the delay composition rule
(``repro.timetable.delays`` module docstring): with ``slack_per_leg ==
0`` lateness is purely additive — applying batch *A* then batch *B*
shifts every departure by ``late_A(leg) + late_B(leg)``, exactly what
the single merged batch (per ``(train, from_stop)`` minutes summed)
produces, bit for bit including periodic wrap-around.  Slack breaks
that: the per-leg recovery ``late = max(0, late - slack)`` clamps the
*carried* lateness between batches, so a slack-bearing batch is a
sequencing barrier and must replay on its own.

The plan is therefore: maximal consecutive runs of slack-free entries
merge into one ``apply`` body (size bounded by the timetable — at most
one item per ``(train, from_stop)`` pair — regardless of stream
length); slack-bearing entries pass through unchanged.  Each planned
body carries ``generations``, the number of logged batches it stands
for, so the worker's generation counter advances in lockstep with the
gateway's committed-batch count (``repro.server.protocol`` rejects it
anywhere but ``apply``).  A body requests ``replan: incremental`` only
when every batch it represents did — the conservative choice; either
mode yields identical answers, so this only affects replay cost.

Pinned by ``tests/fleet/test_catchup_coalescing.py``: plan shape,
bitwise parity with sequential replay, and the long-stream rejoin
end-to-end (a worker rejoining after ~25 committed batches).
"""

from __future__ import annotations

import json


def coalesce_delay_log(entries: list[bytes]) -> list[tuple[dict, int]]:
    """Collapse a delay-log suffix into a bounded replay plan.

    ``entries`` are the gateway's logged replay bodies (JSON bytes,
    oldest first; no ``mode`` key).  Returns ``(body, represented)``
    pairs to POST in order: ``body`` is an ``apply``-shaped wire object
    (without ``mode``) and ``represented`` how many log entries it
    stands for.  ``sum(represented) == len(entries)`` always.
    """
    plan: list[tuple[dict, int]] = []
    run: list[dict] = []

    def flush() -> None:
        if not run:
            return
        if len(run) == 1:
            plan.append((run[0], 1))
        else:
            merged: dict[tuple[int, int], int] = {}
            for body in run:
                for item in body["delays"]:
                    key = (item["train"], item.get("from_stop", 0))
                    merged[key] = merged.get(key, 0) + item["minutes"]
            items = []
            for (train, from_stop), minutes in sorted(merged.items()):
                item: dict = {"train": train, "minutes": minutes}
                if from_stop:
                    item["from_stop"] = from_stop
                items.append(item)
            coalesced: dict = {"delays": items}
            if all(body.get("replan") == "incremental" for body in run):
                coalesced["replan"] = "incremental"
            coalesced["generations"] = len(run)
            plan.append((coalesced, len(run)))
        run.clear()

    for raw in entries:
        body = json.loads(raw)
        if body.get("slack_per_leg", 0):
            # Slack clamps carried lateness between batches: a
            # sequencing barrier — replay this entry on its own.
            flush()
            plan.append((body, 1))
        else:
            run.append(body)
    flush()
    return plan
