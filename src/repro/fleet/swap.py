"""Fleet-wide coordinated delay swaps: prepare everywhere, pause,
commit everywhere.

The problem: a delay batch applied worker-by-worker (N independent
``mode=apply`` posts) leaves a window — seconds long, since each
worker replans — in which half the fleet answers from the old
timetable and half from the new one.  A client polling through the
gateway would see answers flip back and forth between generations.

The protocol (server side in :mod:`repro.server.registry`):

1. **Prepare** — the gateway posts ``mode=prepare`` to every healthy
   worker serving the dataset, *concurrently*.  Each worker replans
   off its event loop and holds the new service aside under a token,
   still answering queries from the old timetable.  All the expensive
   work happens here, with zero routing impact.
2. **Pause** — the gateway closes the dataset's routing gate (new
   queries park; other datasets are untouched) and waits for the
   dataset's in-flight forwards to drain, so no request straddles the
   flip.
3. **Commit** — ``mode=commit`` with each worker's token.  A commit is
   one pointer assignment per worker (microseconds), so the pause is
   bounded by a round-trip, not a replan.
4. **Resume** — the gate reopens; every subsequent query sees the new
   generation on every worker.

Failure handling: any prepare failure aborts the surviving prepares
and reports the first real (4xx) worker error — the fleet stays
uniformly old.  Once *any* worker commits, the fleet has moved: the
batch is appended to the gateway's delay log, and workers whose
commit failed are ejected — readmission replays the log
(:meth:`~repro.fleet.gateway.FleetGateway._admit_worker`), restoring
agreement.  The whole flow runs under the gateway's swap lock, which
worker admission also takes: a worker can never enter rotation
between prepare and commit (it would miss the flip).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING

from repro.client.errors import BackendError
from repro.server.protocol import PROTOCOL_VERSION

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.fleet.gateway import FleetGateway, WorkerState

__all__ = ["FleetSwapCoordinator"]


class FleetSwapCoordinator:
    """Drives the two-phase swap over one gateway's worker fleet."""

    def __init__(self, gateway: "FleetGateway") -> None:
        self._gw = gateway

    async def coordinate(self, dataset: str, body: dict) -> tuple:
        """Apply one ``mode=apply`` delay body fleet-wide; returns the
        gateway's ``(status, payload, extra headers)`` response.  The
        response is shape-compatible with a single worker's apply
        acknowledgement (``decode_delay_update`` reads it unchanged)
        plus a ``fleet`` section describing the coordination."""
        gw = self._gw
        path = f"/v1/datasets/{dataset}/delays"
        async with gw._swap_lock:
            targets = [
                st
                for st in gw._workers.values()
                if st.state == "healthy" and dataset in st.datasets
            ]
            if not targets:
                # Unknown dataset or empty fleet: pass one worker's own
                # answer through when possible (bitwise error parity).
                st = gw._pick(dataset, set())
                if st is None:
                    gw.metrics.no_worker_total += 1
                    return 503, _error(
                        "no_healthy_workers",
                        f"no healthy worker serves dataset {dataset!r}",
                        retriable=True,
                    ), gw._retry_after_header()
                return await self._passthrough(st, path, body)
            t0 = time.perf_counter()

            # Phase 1: replan everywhere, in parallel, while serving.
            prepare_body = json.dumps({**body, "mode": "prepare"}).encode(
                "utf-8"
            )
            tokens, failure = await self._prepare_all(
                targets, path, prepare_body
            )
            if failure is not None:
                await self._abort_all(path, tokens)
                return failure
            replan_seconds = max(
                payload.get("replan_seconds", 0.0)
                for payload in tokens.values()
            )

            # Phase 2: pause the dataset's routing, drain, commit.
            gate = gw._gate(dataset)
            gate.clear()
            pause_t0 = time.perf_counter()
            try:
                if not await self._drain(dataset):
                    await self._abort_all(path, tokens)
                    return 503, _error(
                        "swap_drain_timeout",
                        f"in-flight queries on {dataset!r} did not drain "
                        f"within {gw.swap_drain_timeout:g}s; swap aborted",
                        retriable=True,
                    ), gw._retry_after_header()
                committed, failed = await self._commit_all(
                    path, {st: payload["token"] for st, payload in tokens.items()}
                )
            finally:
                gate.set()
            pause_seconds = time.perf_counter() - pause_t0

            if not committed:
                # No worker flipped: the fleet is still uniformly on
                # the old generation — safe to report failure.
                return 502, _error(
                    "swap_commit_failed",
                    f"no worker committed the prepared swap on "
                    f"{dataset!r}; the fleet is unchanged",
                    retriable=True,
                ), gw._retry_after_header()

            # The fleet moved.  Record the batch (restarted/failed
            # workers replay it before readmission) and eject workers
            # that did not make the flip.
            replay = dict(body)
            replay.pop("mode", None)
            gw._delay_log.setdefault(dataset, []).append(
                json.dumps(replay).encode("utf-8")
            )
            for st, reason in failed:
                gw._eject(st, reason=f"swap commit failed: {reason}")

            generation = len(gw._delay_log[dataset])
            swap_seconds = 0.0
            for st, payload in committed:
                st.generations[dataset] = payload.get("generation", generation)
                swap_seconds = max(
                    swap_seconds, payload.get("swap_seconds", 0.0)
                )
            total = time.perf_counter() - t0
            gw.metrics.observe_swap(
                dataset,
                total,
                pause_seconds,
                incremental=body.get("replan") == "incremental",
            )
            delays = body.get("delays") or []
            return 200, {
                "v": PROTOCOL_VERSION,
                "dataset": dataset,
                "mode": "apply",
                "generation": generation,
                "num_delays": len(delays),
                "slack_per_leg": body.get("slack_per_leg", 0),
                "swap_seconds": round(swap_seconds, 6),
                "fleet": {
                    "workers_committed": sorted(
                        st.name for st, _ in committed
                    ),
                    "workers_failed": sorted(st.name for st, _ in failed),
                    "replan_seconds": round(replan_seconds, 6),
                    "pause_seconds": round(pause_seconds, 6),
                    "total_seconds": round(total, 6),
                },
            }

    # -- phases ----------------------------------------------------------

    async def _prepare_all(
        self, targets: list["WorkerState"], path: str, prepare_body: bytes
    ) -> tuple[dict, tuple | None]:
        """Concurrent prepares.  Returns ``(ok_payloads_by_state,
        failure_response_or_None)``; on failure the caller aborts the
        survivors."""
        gw = self._gw
        results = await asyncio.gather(
            *(
                gw._forward(
                    st, "POST", path, prepare_body,
                    idempotent=False, control=True,
                )
                for st in targets
            ),
            return_exceptions=True,
        )
        tokens: dict = {}
        client_error: tuple | None = None
        transport_failures = 0
        for st, result in zip(targets, results):
            if isinstance(result, BaseException):
                if not isinstance(result, BackendError):
                    raise result
                gw._eject(st, reason=f"prepare failed: {result}")
                transport_failures += 1
                continue
            status, _, raw = result
            if status != 200:
                # A real worker answer (400 unknown train, 409 pending
                # out-of-band prepare, ...) — every worker validates
                # identically, so the first one speaks for the fleet.
                if client_error is None:
                    client_error = (status, raw, {})
                continue
            tokens[st] = json.loads(raw)
        if client_error is not None:
            return tokens, client_error
        if transport_failures or len(tokens) != len(targets):
            return tokens, (
                502,
                _error(
                    "swap_prepare_failed",
                    f"{transport_failures} worker(s) failed during "
                    f"prepare; swap aborted, fleet unchanged",
                    retriable=True,
                ),
                gw._retry_after_header(),
            )
        return tokens, None

    async def _abort_all(self, path: str, tokens: dict) -> None:
        """Best-effort ``mode=abort`` on every prepared worker; abort
        is idempotent server-side, and a worker that misses it clears
        the pending replan on its next apply anyway."""
        gw = self._gw

        async def _abort(st, token) -> None:
            body = json.dumps({"mode": "abort", "token": token}).encode()
            try:
                await gw._forward(
                    st, "POST", path, body, idempotent=False, control=True
                )
            except BackendError:
                pass

        await asyncio.gather(
            *(
                _abort(st, payload["token"])
                for st, payload in tokens.items()
            ),
            return_exceptions=True,
        )

    async def _drain(self, dataset: str) -> bool:
        """Wait for the dataset's in-flight forwards to finish (the
        gate is already closed, so none can join).  False on timeout."""
        gw = self._gw
        loop = asyncio.get_running_loop()
        deadline = loop.time() + gw.swap_drain_timeout
        while gw._dataset_inflight.get(dataset, 0) > 0:
            if loop.time() > deadline:
                return False
            await asyncio.sleep(0.002)
        return True

    async def _commit_all(
        self, path: str, tokens: dict
    ) -> tuple[list, list]:
        """Concurrent commits; returns ``(committed, failed)`` as
        ``(state, payload)`` / ``(state, reason)`` pairs."""
        gw = self._gw
        states = list(tokens)
        results = await asyncio.gather(
            *(
                gw._forward(
                    st,
                    "POST",
                    path,
                    json.dumps(
                        {"mode": "commit", "token": tokens[st]}
                    ).encode("utf-8"),
                    idempotent=False,
                    control=True,
                )
                for st in states
            ),
            return_exceptions=True,
        )
        committed: list = []
        failed: list = []
        for st, result in zip(states, results):
            if isinstance(result, BaseException):
                if not isinstance(result, BackendError):
                    raise result
                failed.append((st, str(result)))
                continue
            status, _, raw = result
            if status != 200:
                failed.append((st, f"status {status}: {raw[:200]!r}"))
                continue
            committed.append((st, json.loads(raw)))
        return committed, failed

    async def _passthrough(
        self, st: "WorkerState", path: str, body: dict
    ) -> tuple:
        gw = self._gw
        try:
            status, headers, raw = await gw._forward(
                st,
                "POST",
                path,
                json.dumps(body).encode("utf-8"),
                idempotent=False,
                control=True,
            )
        except BackendError as exc:
            gw._eject(st, reason=f"{type(exc).__name__}: {exc}")
            return 502, _error(
                "upstream_failed", str(exc), retriable=True
            ), gw._retry_after_header()
        extra: dict = {}
        retry_after = headers.get("retry-after")
        if retry_after is not None:
            extra["Retry-After"] = retry_after
        return status, raw, extra


def _error(code: str, message: str, *, retriable: bool = False) -> dict:
    payload: dict = {
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }
    if retriable:
        payload["error"]["retriable"] = True
    return payload
