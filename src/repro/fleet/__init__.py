"""The serve fleet: sharded multi-process serving behind one gateway.

PR 4 built a single-process asyncio server
(:class:`~repro.server.app.TransitServer`); its throughput ceiling is
the GIL — profile searches are pure-Python compute, so one process
saturates one core no matter how many worker threads it runs.  This
package scales the serving layer *across processes*:

* :mod:`repro.fleet.supervisor` — spawn N ``repro-transit serve``
  worker processes over the same artifact stores (the store's
  ``.npy`` buffers mmap to shared physical pages, so N workers cost
  one copy of the data), discover their ephemeral ports through
  atomically-written port files, and auto-restart crashes with capped
  backoff;
* :mod:`repro.fleet.gateway` — an asyncio front process speaking the
  same wire protocol, load-balancing per dataset over healthy
  workers, health-checking ``/healthz``, ejecting failed workers and
  readmitting restarted ones after delay-log catch-up, failing
  queries over to a peer when a worker dies mid-request, and
  aggregating fleet-wide ``/metrics``;
* :mod:`repro.fleet.swap` — fleet-wide delay updates through a
  two-phase prepare/commit so no client ever observes a mixed fleet;
* :mod:`repro.fleet.metrics` — the gateway's routing counters.

Entry point: ``repro-transit serve-fleet --store DIR --workers N``.
Clients connect to the gateway exactly as to a single server —
``repro.client.connect("http://gateway:port")`` — with bitwise
identical answers (the gateway forwards worker responses verbatim).
See ``docs/FLEET.md`` for topology, failure modes, and the swap
protocol.
"""

from repro.fleet.gateway import FleetGateway, WorkerState
from repro.fleet.metrics import GatewayMetrics
from repro.fleet.supervisor import WorkerSupervisor
from repro.fleet.swap import FleetSwapCoordinator

__all__ = [
    "FleetGateway",
    "FleetSwapCoordinator",
    "GatewayMetrics",
    "WorkerState",
    "WorkerSupervisor",
]
