"""The fleet routing gateway: one address in front of N workers.

A :class:`FleetGateway` is a :class:`~repro.server.http_base.
BaseAsyncHttpServer` that serves the *same wire protocol* as a worker
(``docs/SERVER.md``) by forwarding requests byte-for-byte to healthy
:class:`~repro.server.app.TransitServer` processes.  To every client
it is just another server URL — ``repro.client.connect("http://gw")``
works unchanged, and answers are **bitwise identical** to a single
worker's because the gateway never decodes a worker response on the
query path (:meth:`repro.client.http.HttpBackend.forward` hands back
raw bytes, which :class:`BaseAsyncHttpServer` writes verbatim).

Responsibilities (see ``docs/FLEET.md`` for the protocol walk-through):

* **Health-checked routing.**  A background loop polls every worker's
  ``/healthz``.  Per dataset, requests round-robin over workers that
  report ``"ok"``; a worker reporting ``"draining"`` stops receiving
  new requests *before* it starts rejecting any (the readiness/
  liveness split), and one that fails ``eject_after`` consecutive
  probes — or any forward — is ejected immediately.
* **Failover.**  A query whose worker dies mid-request (connection
  refused/reset, timeout) is retried **once** on a peer; queries are
  read-only so the retry is safe.  A worker answering a retriable 503
  (overloaded) also gets one peer try before the 503 passes through.
* **Readmission with catch-up.**  The gateway records every committed
  delay batch per dataset (the *delay log*).  A worker that comes
  (back) up at a stale generation — a supervisor restart loads the
  pristine store at generation 0 — is replayed the missing batches
  and only then routed to, so a restarted worker can never serve
  pre-delay answers into a post-delay fleet.
* **Coordinated swaps.**  ``POST /v1/datasets/{name}/delays`` against
  the gateway is applied fleet-wide through the two-phase
  prepare/commit protocol (:mod:`repro.fleet.swap`): every worker
  replans while still serving, then the gateway pauses the dataset's
  routing for the microseconds the pointer swaps take — no client
  ever observes a mixed fleet.
* **Fleet metrics.**  ``GET /metrics`` renders the gateway's own
  routing counters plus every worker's snapshot and a cross-worker
  aggregate.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

from repro.client.errors import BackendTimeoutError, TransportError
from repro.client.http import HttpBackend, RetryPolicy
from repro.fleet.catchup import coalesce_delay_log
from repro.fleet.metrics import GatewayMetrics
from repro.fleet.swap import FleetSwapCoordinator
from repro.server.http_base import BaseAsyncHttpServer
from repro.server.protocol import PROTOCOL_VERSION

__all__ = ["FleetGateway", "WorkerState"]

_QUERY_SHAPES = (
    "profile",
    "journey",
    "batch",
    "multicriteria",
    "via",
    "min-transfers",
)

#: A forward failure with one of these is a dead/unreachable worker:
#: eject immediately and fail the query over to a peer.
_FORWARD_FAILURES = (TransportError, BackendTimeoutError)


class WorkerState:
    """One worker as the gateway sees it.

    ``state`` transitions (all on the gateway's event loop)::

        new ──ok──> catching-up ──caught up──> healthy
        healthy ──"draining" healthz──> draining (no new routing)
        healthy/draining ──probe/forward failures──> down (ejected)
        down ──ok──> catching-up ──> healthy   (readmission)

    Only ``healthy`` workers receive traffic.  A restarted worker
    reappears under the same name at a new URL: the old state object
    is discarded and the replacement funnels through catch-up.
    """

    __slots__ = (
        "name",
        "base_url",
        "backend",
        "health",
        "state",
        "failures",
        "datasets",
        "generations",
        "last_error",
    )

    def __init__(
        self,
        name: str,
        base_url: str,
        *,
        timeout: float,
        health_timeout: float,
        pool_size: int,
    ) -> None:
        self.name = name
        self.base_url = base_url
        no_retry = RetryPolicy(retries=0)
        #: Forward path: generous timeout, deep pool.
        self.backend = HttpBackend(
            base_url, timeout=timeout, retry=no_retry, pool_size=pool_size
        )
        #: Probe path: short timeout so a hung worker cannot stall the
        #: health loop for the forward timeout.
        self.health = HttpBackend(
            base_url, timeout=health_timeout, retry=no_retry, pool_size=1
        )
        self.state = "new"
        self.failures = 0
        self.datasets: set[str] = set()
        self.generations: dict[str, int] = {}
        self.last_error: str | None = None

    def close(self) -> None:
        self.backend.close()
        self.health.close()

    def describe(self) -> dict:
        return {
            "url": self.base_url,
            "state": self.state,
            "datasets": sorted(self.datasets),
            "generations": dict(self.generations),
            "last_error": self.last_error,
        }


class FleetGateway(BaseAsyncHttpServer):
    """Route the serving protocol over a fleet of workers (module doc).

    ``workers`` is the endpoint source: a static mapping/sequence of
    worker URLs, or a callable returning the current ``name -> url``
    mapping — :meth:`repro.fleet.supervisor.WorkerSupervisor.endpoints`
    is exactly that callable, which is how restarts propagate.
    """

    def __init__(
        self,
        workers: Mapping[str, str]
        | Sequence[str]
        | Callable[[], Mapping[str, str]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 256,
        health_interval: float = 0.25,
        health_timeout: float = 2.0,
        eject_after: int = 2,
        worker_timeout: float = 30.0,
        retry_after: float = 0.25,
        drain_grace: float = 0.0,
        forward_threads: int = 16,
        swap_drain_timeout: float = 60.0,
        metrics: GatewayMetrics | None = None,
    ) -> None:
        super().__init__(host=host, port=port, drain_grace=drain_grace)
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1, got {eject_after}")
        self._provider = _as_provider(workers)
        self.max_inflight = max_inflight
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.eject_after = eject_after
        self.worker_timeout = worker_timeout
        self.retry_after = retry_after
        self.swap_drain_timeout = swap_drain_timeout
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self._workers: dict[str, WorkerState] = {}
        #: Names that were ever routed to: a later admission of the
        #: same name is a *readmission* even across process restarts
        #: (the WorkerState object is new, the name is not).
        self._ever_admitted: set[str] = set()
        #: Per-dataset round-robin cursors.
        self._rr: dict[str, int] = {}
        #: Per-dataset routing gates; absent means open (zero hot-path
        #: cost until the first coordinated swap).  A cleared gate
        #: parks new queries while a swap commits.
        self._gates: dict[str, asyncio.Event] = {}
        #: Forwards currently in flight per dataset (what a swap's
        #: routing pause drains).
        self._dataset_inflight: dict[str, int] = {}
        #: The delay log: every committed batch per dataset, in commit
        #: order, as ready-to-replay ``mode=apply`` bodies.  Its length
        #: is the fleet's committed generation.
        self._delay_log: dict[str, list[bytes]] = {}  # guarded-by: _swap_lock
        #: Serializes coordinated swaps and worker admissions — the
        #: two operations that must see a frozen (generation, healthy
        #: set) pair.  Routing never takes it.
        self._swap_lock = asyncio.Lock()
        self._swap = FleetSwapCoordinator(self)
        #: Query forwards block a thread each; swap/health/catch-up
        #: control traffic runs on its own small pool so a saturated
        #: query path can never deadlock a swap commit.
        self._forward_pool = ThreadPoolExecutor(
            max_workers=forward_threads, thread_name_prefix="gw-forward"
        )
        self._control_pool = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="gw-control"
        )
        self._health_task: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        await self._health_sweep()  # populate before the first request
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )

    async def wait_ready(
        self, *, workers: int = 1, timeout: float = 60.0
    ) -> None:
        """Block until at least ``workers`` workers are healthy (the
        serve-fleet CLI and tests gate startup on this)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            healthy = sum(
                1 for st in self._workers.values() if st.state == "healthy"
            )
            if healthy >= workers:
                return
            if asyncio.get_running_loop().time() > deadline:
                states = {
                    name: st.state for name, st in self._workers.items()
                }
                raise TimeoutError(
                    f"only {healthy}/{workers} workers healthy after "
                    f"{timeout:g}s (states: {states})"
                )
            await asyncio.sleep(0.02)

    async def _post_drain(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        self._forward_pool.shutdown(wait=True)
        self._control_pool.shutdown(wait=True)
        for st in self._workers.values():
            st.close()

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict | bytes, dict]:
        endpoint = self._endpoint_label(method, path)
        self.metrics.observe_request(endpoint)
        t0 = time.perf_counter()
        extra: dict = {}
        try:
            answer = await self._route(method, path, headers, body, endpoint)
            if len(answer) == 3:
                status, payload, extra = answer
            else:
                status, payload = answer
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            status, payload = 500, _error(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.observe_response(
            endpoint, status, time.perf_counter() - t0
        )
        return status, payload, extra

    def _endpoint_label(self, method: str, path: str) -> str:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if parts == ["healthz"] or parts == ["metrics"]:
            return f"{method} /{parts[0]}"
        if parts[:2] == ["v1", "datasets"]:
            if len(parts) == 2:
                return "GET /v1/datasets"
            return "POST /v1/datasets/{name}/delays"
        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            return f"POST /v1/{{name}}/{parts[2]}"
        return f"{method} <unmatched>"

    async def _route(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        endpoint: str,
    ) -> tuple:
        parts = [p for p in path.split("?")[0].split("/") if p]

        if parts == ["healthz"]:
            if method != "GET":
                return 405, _error(
                    "method_not_allowed", f"use GET, not {method}"
                )
            return 200, self._healthz_payload()

        if parts == ["metrics"]:
            if method != "GET":
                return 405, _error(
                    "method_not_allowed", f"use GET, not {method}"
                )
            return 200, await self._metrics_payload()

        if parts == ["v1", "datasets"]:
            if method != "GET":
                return 405, _error(
                    "method_not_allowed", f"use GET, not {method}"
                )
            return await self._handle_forward(
                None, "GET", path, None, endpoint, headers
            )

        if (
            len(parts) == 4
            and parts[:2] == ["v1", "datasets"]
            and parts[3] == "delays"
        ):
            if method != "POST":
                return 405, _error(
                    "method_not_allowed", f"use POST, not {method}"
                )
            return await self._handle_delays(parts[2], body, endpoint)

        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            if method != "POST":
                return 405, _error(
                    "method_not_allowed", f"use POST, not {method}"
                )
            return await self._handle_forward(
                parts[1], "POST", path, body, endpoint, headers
            )

        return 404, _error("unknown_route", f"no route for {method} {path}")

    # -- admission and forwarding ---------------------------------------

    def _admit(self, endpoint: str) -> tuple[int, dict, dict] | None:
        if self._draining:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "draining", "gateway is shutting down", retriable=True
            ), self._retry_after_header()
        if self._inflight >= self.max_inflight:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(max_inflight={self.max_inflight}); retry",
                retriable=True,
            ), self._retry_after_header()
        return None

    def _retry_after_header(self) -> dict:
        value = self.retry_after
        rendered = (
            str(int(value)) if float(value).is_integer() else f"{value:g}"
        )
        return {"Retry-After": rendered}

    async def _handle_forward(
        self,
        dataset: str | None,
        method: str,
        path: str,
        body: bytes | None,
        endpoint: str,
        headers: dict[str, str],
    ) -> tuple:
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            if dataset is not None:
                gate = self._gates.get(dataset)
                if gate is not None and not gate.is_set():
                    # A coordinated swap is committing: park until the
                    # fleet is uniformly on the new generation.
                    await gate.wait()
                self._dataset_inflight[dataset] = (
                    self._dataset_inflight.get(dataset, 0) + 1
                )
            try:
                return await self._proxy(
                    dataset, method, path, body, endpoint, headers
                )
            finally:
                if dataset is not None:
                    self._dataset_inflight[dataset] -= 1
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight

    async def _proxy(
        self,
        dataset: str | None,
        method: str,
        path: str,
        body: bytes | None,
        endpoint: str,
        headers: dict[str, str],
    ) -> tuple:
        forward_headers = None
        attempt_header = headers.get("x-retry-attempt")
        if attempt_header is not None:
            forward_headers = {"X-Retry-Attempt": attempt_header}
        tried: set[str] = set()
        for attempt in (0, 1):
            st = self._pick(dataset, tried)
            if st is None:
                self.metrics.no_worker_total += 1
                self.metrics.observe_reject(endpoint)
                return 503, _error(
                    "no_healthy_workers",
                    "no healthy worker available"
                    + (f" for dataset {dataset!r}" if dataset else ""),
                    retriable=True,
                ), self._retry_after_header()
            tried.add(st.name)
            try:
                status, resp_headers, raw = await self._forward(
                    st, method, path, body, headers=forward_headers
                )
            except _FORWARD_FAILURES as exc:
                # The worker died under us (killed, crashed, hung).
                # Queries are read-only: retry exactly once on a peer.
                self._eject(st, reason=f"{type(exc).__name__}: {exc}")
                if attempt == 0:
                    self.metrics.failovers_total += 1
                    continue
                return 502, _error(
                    "upstream_failed",
                    f"worker {st.name} failed mid-request and no peer "
                    f"could answer: {exc}",
                    retriable=True,
                ), self._retry_after_header()
            if (
                status == 503
                and attempt == 0
                and self._pick(dataset, tried) is not None
            ):
                # Overloaded/draining worker; a peer may have headroom.
                self.metrics.failovers_total += 1
                continue
            self.metrics.observe_forward(st.name)
            extra: dict = {}
            retry_after = resp_headers.get("retry-after")
            if retry_after is not None:
                extra["Retry-After"] = retry_after
            return status, raw, extra
        raise AssertionError("unreachable")  # pragma: no cover

    async def _forward(
        self,
        st: WorkerState,
        method: str,
        path: str,
        body: bytes | None,
        *,
        headers: dict[str, str] | None = None,
        idempotent: bool = True,
        control: bool = False,
    ) -> tuple[int, dict, bytes]:
        """One pooled worker exchange off the event loop.  ``control``
        selects the small control pool (swaps, catch-up) so the query
        path can never starve coordination traffic."""
        pool = self._control_pool if control else self._forward_pool
        return await asyncio.get_running_loop().run_in_executor(
            pool,
            lambda: st.backend.forward(
                method, path, body, headers=headers, idempotent=idempotent
            ),
        )

    def _pick(
        self, dataset: str | None, exclude: set[str]
    ) -> WorkerState | None:
        """Round-robin over healthy workers serving ``dataset``.

        Falls back to *any* healthy worker when none lists the dataset
        — the worker then answers the protocol's own 404
        ``unknown_dataset``, keeping error payloads bitwise identical
        to a single server."""
        healthy = [
            name
            for name, st in self._workers.items()
            if st.state == "healthy" and name not in exclude
        ]
        if dataset is not None:
            serving = [
                name
                for name in healthy
                if dataset in self._workers[name].datasets
            ]
            if serving:
                healthy = serving
        if not healthy:
            return None
        healthy.sort()
        key = dataset if dataset is not None else "*"
        cursor = self._rr.get(key, 0)
        self._rr[key] = cursor + 1
        return self._workers[healthy[cursor % len(healthy)]]

    def _gate(self, dataset: str) -> asyncio.Event:
        gate = self._gates.get(dataset)
        if gate is None:
            gate = self._gates[dataset] = asyncio.Event()
            gate.set()
        return gate

    # -- delays (coordinated swap) --------------------------------------

    async def _handle_delays(
        self, dataset: str, body: bytes, endpoint: str
    ) -> tuple:
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            if not body:
                return 400, _error("invalid_request", "request body is empty")
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError as exc:
                return 400, _error(
                    "invalid_json", f"request body is not valid JSON: {exc}"
                )
            if not isinstance(parsed, dict):
                return 400, _error(
                    "invalid_request", "request body must be a JSON object"
                )
            mode = parsed.get("mode", "apply")
            if mode != "apply":
                return 400, _error(
                    "invalid_request",
                    f"mode {mode!r} is not accepted by the gateway: it "
                    f"coordinates the two-phase swap itself — POST "
                    f"mode=apply (or omit mode)",
                )
            return await self._swap.coordinate(dataset, parsed)
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight

    # -- health, ejection, readmission ----------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            try:
                await self._health_sweep()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — the loop must survive
                self.metrics.health_sweep_errors_total += 1

    async def _health_sweep(self) -> None:
        """Reconcile worker states with the endpoint provider, then
        probe every worker's ``/healthz`` concurrently."""
        endpoints = dict(self._provider())
        for name, url in endpoints.items():
            st = self._workers.get(name)
            if st is None or st.base_url != url:
                if st is not None:
                    # Same name, new address: a supervisor restart.
                    if st.state == "healthy":
                        self._eject(st, reason="endpoint replaced")
                    st.close()
                self._workers[name] = WorkerState(
                    name,
                    url,
                    timeout=self.worker_timeout,
                    health_timeout=self.health_timeout,
                    pool_size=8,
                )
        for name in list(self._workers):
            if name not in endpoints:
                st = self._workers.pop(name)
                if st.state == "healthy":
                    self._eject(st, reason="endpoint removed")
                st.close()
        states = list(self._workers.values())
        results = await asyncio.gather(
            *(self._probe(st) for st in states), return_exceptions=True
        )
        for st, result in zip(states, results):
            # The sweep may race a provider change; skip replaced states.
            if self._workers.get(st.name) is st:
                self._note_probe(st, result)

    async def _probe(self, st: WorkerState) -> dict:
        status, _, raw = await asyncio.get_running_loop().run_in_executor(
            self._control_pool,
            lambda: st.health.forward("GET", "/healthz"),
        )
        if status != 200:
            raise TransportError(f"healthz answered {status}")
        return json.loads(raw)

    def _note_probe(self, st: WorkerState, result: dict | BaseException) -> None:
        if isinstance(result, BaseException):
            if isinstance(result, asyncio.CancelledError):
                raise result
            st.failures += 1
            st.last_error = f"{type(result).__name__}: {result}"
            if (
                st.state in ("healthy", "draining")
                and st.failures >= self.eject_after
            ):
                self._eject(st, reason=st.last_error)
            return
        st.failures = 0
        st.last_error = None
        st.datasets = set(result.get("datasets", ()))
        st.generations = {
            name: int(gen)
            for name, gen in (result.get("generations") or {}).items()
        }
        if result.get("status") != "ok":
            # Readiness off: stop routing, but this is not a failure —
            # the worker is draining gracefully and still answering.
            if st.state == "healthy":
                st.state = "draining"
            return
        if st.state in ("healthy", "catching-up"):
            return
        # new / down / draining-then-recovered: (re)admit via catch-up.
        st.state = "catching-up"
        asyncio.get_running_loop().create_task(self._admit_worker(st))

    async def _admit_worker(self, st: WorkerState) -> None:
        """Bring a worker into rotation, replaying any delay batches
        it missed first.  Runs under the swap lock so no coordinated
        swap can move the fleet's generation mid-catch-up (and a
        worker can never become healthy between a swap's prepare and
        commit, which would leave it unswapped).

        The missed-log suffix is coalesced first
        (:func:`repro.fleet.catchup.coalesce_delay_log`): consecutive
        slack-free batches merge into one bounded ``apply`` carrying a
        ``generations`` count, so a worker rejoining after a long
        stream catches up in O(slack barriers + 1) posts instead of
        O(committed batches), with generation accounting unchanged."""
        try:
            async with self._swap_lock:
                for dataset in sorted(st.datasets):
                    log = self._delay_log.get(dataset, ())
                    have = st.generations.get(dataset, 0)
                    if have > len(log):
                        raise RuntimeError(
                            f"worker {st.name} is at generation {have} of "
                            f"{dataset!r} but the fleet committed only "
                            f"{len(log)} — it was mutated out-of-band; "
                            f"restart it from the store"
                        )
                    plan = coalesce_delay_log(list(log[have:]))
                    for body, represented in plan:
                        status, _, raw = await self._forward(
                            st,
                            "POST",
                            f"/v1/datasets/{dataset}/delays",
                            json.dumps(body).encode(),
                            idempotent=False,
                            control=True,
                        )
                        if status != 200:
                            raise RuntimeError(
                                f"catch-up replay on {st.name} answered "
                                f"{status}: {raw[:200]!r}"
                            )
                        self.metrics.catch_up_batches_total += 1
                        self.metrics.catch_up_coalesced_total += represented
                        st.generations[dataset] = (
                            st.generations.get(dataset, 0) + represented
                        )
                if self._workers.get(st.name) is not st:
                    return  # replaced while catching up; discard
                st.state = "healthy"
                st.failures = 0
                if st.name in self._ever_admitted:
                    self.metrics.observe_readmission(st.name)
                else:
                    self._ever_admitted.add(st.name)
        except Exception as exc:  # noqa: BLE001 — stay down, retry later
            st.last_error = f"{type(exc).__name__}: {exc}"
            if st.state == "catching-up":
                st.state = "down"

    def _eject(self, st: WorkerState, *, reason: str) -> None:
        """Take a worker out of rotation immediately (probe threshold
        reached, or any forward failure).  Idempotent per incident."""
        was_routed = st.state in ("healthy", "draining")
        st.state = "down"
        st.failures = 0
        st.last_error = reason
        if was_routed:
            self.metrics.observe_ejection(st.name)

    # -- introspection payloads -----------------------------------------

    def _healthz_payload(self) -> dict:
        datasets: set[str] = set()
        for st in self._workers.values():
            if st.state == "healthy":
                datasets.update(st.datasets)
        return {
            "v": PROTOCOL_VERSION,
            "status": self.health_status,
            "ready": self.health_status == "ok",
            "role": "gateway",
            "datasets": sorted(datasets),
            "generations": {
                # Safe lock-free read: this sync method runs on the event
                # loop with no await point, and _swap_lock holders mutate
                # the log only from coroutines on this same loop.
                # lint: disable=LOCK-GUARD — loop-confined sync read
                name: len(log) for name, log in self._delay_log.items()
            },
            "workers": {
                name: st.describe()
                for name, st in sorted(self._workers.items())
            },
        }

    async def _metrics_payload(self) -> dict:
        """Gateway counters + per-worker snapshots + a fleet aggregate
        (best-effort: an unreachable worker renders as ``null``)."""
        states = [
            st for st in self._workers.values() if st.state != "down"
        ]
        snapshots = await asyncio.gather(
            *(self._fetch_metrics(st) for st in states),
            return_exceptions=True,
        )
        workers: dict[str, dict | None] = {}
        for st, snap in zip(states, snapshots):
            workers[st.name] = None if isinstance(snap, BaseException) else snap
        fleet = _aggregate(
            [snap for snap in workers.values() if snap is not None]
        )
        return {
            "v": PROTOCOL_VERSION,
            "gateway": self.metrics.snapshot(),
            "workers": dict(sorted(workers.items())),
            "fleet": fleet,
        }

    async def _fetch_metrics(self, st: WorkerState) -> dict:
        status, _, raw = await asyncio.get_running_loop().run_in_executor(
            self._control_pool,
            lambda: st.health.forward("GET", "/metrics"),
        )
        if status != 200:
            raise TransportError(f"metrics answered {status}")
        return json.loads(raw)


def _as_provider(
    workers: Mapping[str, str]
    | Sequence[str]
    | Callable[[], Mapping[str, str]],
) -> Callable[[], Mapping[str, str]]:
    if callable(workers):
        return workers
    if isinstance(workers, Mapping):
        static = dict(workers)
    else:
        static = {f"w{i}": url for i, url in enumerate(workers)}
    if not static:
        raise ValueError("at least one worker endpoint is required")
    return lambda: static


def _aggregate(snapshots: list[dict]) -> dict:
    """Sum the load-bearing counters across worker snapshots."""
    requests: dict[str, int] = {}
    rejected = 0
    retries = 0
    swaps: dict[str, int] = {}
    micro_batches = 0
    micro_batched = 0
    for snap in snapshots:
        for endpoint, count in (snap.get("requests_total") or {}).items():
            requests[endpoint] = requests.get(endpoint, 0) + int(count)
        rejected += int(snap.get("rejected_total") or 0)
        retries += int(snap.get("retries_observed_total") or 0)
        for name, count in (snap.get("swaps_total") or {}).items():
            swaps[name] = swaps.get(name, 0) + int(count)
        micro = snap.get("micro_batching") or {}
        micro_batches += int(micro.get("batches_total") or 0)
        micro_batched += int(micro.get("batched_queries_total") or 0)
    return {
        "workers_reporting": len(snapshots),
        "requests_total": requests,
        "rejected_total": rejected,
        "retries_observed_total": retries,
        "swaps_total": swaps,
        "micro_batching": {
            "batches_total": micro_batches,
            "batched_queries_total": micro_batched,
        },
    }


def _error(code: str, message: str, *, retriable: bool = False) -> dict:
    payload: dict = {
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }
    if retriable:
        payload["error"]["retriable"] = True
    return payload
