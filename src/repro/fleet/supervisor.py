"""Worker process supervision for the serve fleet.

A :class:`WorkerSupervisor` spawns N ``repro-transit serve`` worker
*processes* over the same artifact-store directories and keeps them
alive.  Multiple processes are the whole point of the fleet: one
asyncio server is GIL-bound on compute-heavy profile queries, while N
workers over the same mmap-cold stores share the page cache and scale
query throughput with cores (``benchmarks/bench_server_throughput.py
--fleet``).

Design points:

* **Port discovery is a file, not a log line.**  Every worker binds an
  ephemeral port (``--port 0``) so N workers on one host can never
  collide, and writes the bound port to ``--port-file`` *atomically*
  (temp file + ``os.replace``) only after the socket is bound.  The
  supervisor polls for the file: it either does not exist yet or holds
  a complete, valid port — no parsing races, no half-written reads.
* **Crash restarts are automatic and capped.**  A monitor thread polls
  child processes; an exit while the fleet is running schedules a
  respawn after the worker's current backoff delay, which doubles per
  consecutive crash up to ``max_backoff`` (a crash-looping store
  cannot spin the host) and resets once a worker stays up
  ``stable_after`` seconds.
* **Names are stable, addresses are not.**  Workers are named
  ``w0..wN-1`` forever; each restart binds a fresh port.  The gateway
  keys its routing state by name and treats an address change as
  "down, then a new worker" — which funnels restarts through the
  delay-log catch-up path (``docs/FLEET.md``).

The supervisor knows nothing about HTTP beyond the port file; health
is the gateway's job (:class:`~repro.fleet.gateway.FleetGateway`
polls ``/healthz`` and ejects/readmits around exactly these
restarts).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Sequence

__all__ = ["WorkerSupervisor"]


class _Worker:
    """One supervised slot: a stable name, a changing process."""

    __slots__ = (
        "index",
        "name",
        "port_file",
        "log_path",
        "process",
        "log_handle",
        "spawned_at",
        "respawn_at",
        "backoff",
        "restarts",
        "last_exit_code",
        "port",
    )

    def __init__(self, index: int, runtime_dir: Path) -> None:
        self.index = index
        self.name = f"w{index}"
        self.port_file = runtime_dir / f"{self.name}.port"
        self.log_path = runtime_dir / f"{self.name}.log"
        self.process: subprocess.Popen | None = None
        self.log_handle = None
        self.spawned_at = 0.0
        #: Monotonic deadline for the pending respawn (None: running).
        self.respawn_at: float | None = None
        self.backoff = 0.0
        self.restarts = 0
        self.last_exit_code: int | None = None
        #: Bound port of the *current* incarnation (None until its
        #: port file appears).
        self.port: int | None = None


class WorkerSupervisor:
    """Spawn and babysit N ``serve`` worker processes (module doc)."""

    def __init__(
        self,
        stores: Sequence[str | Path],
        num_workers: int = 2,
        *,
        host: str = "127.0.0.1",
        runtime_dir: str | Path | None = None,
        worker_threads: int = 4,
        max_inflight: int = 64,
        batch_window_ms: float = 2.0,
        batch_max: int = 8,
        drain_grace: float = 0.2,
        restart_backoff: float = 0.25,
        backoff_multiplier: float = 2.0,
        max_backoff: float = 5.0,
        stable_after: float = 10.0,
        poll_interval: float = 0.1,
        spawn_timeout: float = 120.0,
        stop_timeout: float = 15.0,
        python: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if not stores:
            raise ValueError("at least one store directory is required")
        self.stores = [str(s) for s in stores]
        self.host = host
        self.worker_threads = worker_threads
        self.max_inflight = max_inflight
        self.batch_window_ms = batch_window_ms
        self.batch_max = batch_max
        self.drain_grace = drain_grace
        self.restart_backoff = restart_backoff
        self.backoff_multiplier = backoff_multiplier
        self.max_backoff = max_backoff
        self.stable_after = stable_after
        self.poll_interval = poll_interval
        self.spawn_timeout = spawn_timeout
        self.stop_timeout = stop_timeout
        self.python = python or sys.executable
        if runtime_dir is None:
            self._runtime_dir = Path(
                tempfile.mkdtemp(prefix="repro-fleet-")
            )
            self._owns_runtime_dir = True
        else:
            self._runtime_dir = Path(runtime_dir)
            self._runtime_dir.mkdir(parents=True, exist_ok=True)
            self._owns_runtime_dir = False
        self._workers = [  # guarded-by: _lock
            _Worker(i, self._runtime_dir) for i in range(num_workers)
        ]
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------

    @property
    def runtime_dir(self) -> Path:
        """Where port files and worker logs live."""
        return self._runtime_dir

    def start(self) -> None:
        """Spawn every worker and wait until each has bound its port.

        Fails fast — with the dying worker's log tail — if any worker
        exits before binding (bad store, bad flags): a fleet must not
        come up partially."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        with self._lock:
            for worker in self._workers:
                self._spawn(worker)
        self._await_ports()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """SIGTERM every worker (graceful drain), escalating to
        SIGKILL after ``stop_timeout``; idempotent."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.stop_timeout)
            self._monitor = None
        with self._lock:
            procs = [w.process for w in self._workers if w.process]
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
        deadline = time.monotonic() + self.stop_timeout
        for proc in procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(remaining, 0.1))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        with self._lock:
            for worker in self._workers:
                worker.process = None
                if worker.log_handle is not None:
                    worker.log_handle.close()
                    worker.log_handle = None

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- gateway-facing surface ----------------------------------------

    def endpoints(self) -> dict[str, str]:
        """``name -> http://host:port`` for every worker that is alive
        *and* has bound its port.  This is the gateway's endpoint
        provider: a crashed worker drops out here (its port file is
        removed before respawn), a restarted one reappears under the
        same name at a new port."""
        live: dict[str, str] = {}
        with self._lock:
            for worker in self._workers:
                if worker.process is None or worker.process.poll() is not None:
                    continue
                if worker.port is None:
                    worker.port = self._read_port(worker)
                if worker.port is not None:
                    live[worker.name] = f"http://{self.host}:{worker.port}"
        return live

    def worker_pids(self) -> dict[str, int]:
        """``name -> pid`` of live workers (tests kill through this)."""
        with self._lock:
            return {
                w.name: w.process.pid
                for w in self._workers
                if w.process is not None and w.process.poll() is None
            }

    def kill(self, name: str, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to one worker (failure injection in tests; the
        monitor then restarts it like any crash)."""
        with self._lock:
            for worker in self._workers:
                if worker.name == name and worker.process is not None:
                    worker.process.send_signal(sig)
                    return
        raise KeyError(f"no live worker named {name!r}")

    @property
    def restarts_total(self) -> int:
        with self._lock:
            return sum(w.restarts for w in self._workers)

    def log_tail(self, name: str, lines: int = 20) -> str:
        """The last ``lines`` of one worker's captured output."""
        with self._lock:
            worker = next(
                (w for w in self._workers if w.name == name), None
            )
        if worker is None:
            raise KeyError(f"no worker named {name!r}")
        # The file read happens outside the lock: log_path is immutable
        # per slot, and tailing a log must not stall the monitor loop.
        try:
            text = worker.log_path.read_text(errors="replace")
        except OSError:
            return ""
        return "\n".join(text.splitlines()[-lines:])

    # -- internals ------------------------------------------------------

    def _command(self, worker: _Worker) -> list[str]:
        cmd = [self.python, "-m", "repro.cli", "serve"]
        for store in self.stores:
            cmd += ["--store", store]
        cmd += [
            "--host", self.host,
            "--port", "0",
            "--port-file", str(worker.port_file),
            "--workers", str(self.worker_threads),
            "--max-inflight", str(self.max_inflight),
            "--batch-window-ms", str(self.batch_window_ms),
            "--batch-max", str(self.batch_max),
            "--drain-grace-ms", str(self.drain_grace * 1000.0),
        ]
        return cmd

    def _spawn(self, worker: _Worker) -> None:
        """(Re)spawn one worker; caller holds the lock."""
        # A stale port file from the previous incarnation must never
        # be served to the gateway as the new address.
        try:
            worker.port_file.unlink()
        except FileNotFoundError:
            pass
        worker.port = None
        env = dict(os.environ)
        # The workers must import the same repro package the
        # supervisor runs, regardless of how it was put on the path.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{package_root}{os.pathsep}{existing}"
                if existing
                else package_root
            )
        if worker.log_handle is not None:
            worker.log_handle.close()
        worker.log_handle = open(worker.log_path, "ab")
        worker.process = subprocess.Popen(
            self._command(worker),
            stdout=worker.log_handle,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(self._runtime_dir),
        )
        worker.spawned_at = time.monotonic()
        worker.respawn_at = None
        if worker.backoff == 0.0:
            worker.backoff = self.restart_backoff

    def _read_port(self, worker: _Worker) -> int | None:
        try:
            text = worker.port_file.read_text()
        except OSError:
            return None
        try:
            return int(text.strip())
        except ValueError:
            return None  # impossible with atomic writes; stay paranoid

    def _await_ports(self) -> None:
        deadline = time.monotonic() + self.spawn_timeout
        with self._lock:
            pending = list(self._workers)
        while pending:
            still = []
            for worker in pending:
                if worker.process is not None and worker.process.poll() is not None:
                    code = worker.process.returncode
                    tail = self.log_tail(worker.name)
                    self.stop()
                    raise RuntimeError(
                        f"worker {worker.name} exited with code {code} "
                        f"before binding its port; last output:\n{tail}"
                    )
                if self._read_port(worker) is None:
                    still.append(worker)
            pending = still
            if pending:
                if time.monotonic() > deadline:
                    names = ", ".join(w.name for w in pending)
                    self.stop()
                    raise RuntimeError(
                        f"worker(s) {names} did not bind a port within "
                        f"{self.spawn_timeout:g}s"
                    )
                time.sleep(0.02)

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            now = time.monotonic()
            with self._lock:
                for worker in self._workers:
                    process = worker.process
                    if process is not None and process.poll() is not None:
                        # Crashed (or was killed). Schedule a respawn
                        # after the current backoff; a worker that had
                        # been stable restarts almost immediately.
                        worker.last_exit_code = process.returncode
                        if now - worker.spawned_at >= self.stable_after:
                            worker.backoff = self.restart_backoff
                        worker.respawn_at = now + worker.backoff
                        worker.backoff = min(
                            worker.backoff * self.backoff_multiplier,
                            self.max_backoff,
                        )
                        worker.process = None
                        worker.port = None
                        try:
                            worker.port_file.unlink()
                        except FileNotFoundError:
                            pass
                    elif (
                        worker.process is None
                        and worker.respawn_at is not None
                        and now >= worker.respawn_at
                    ):
                        worker.restarts += 1
                        self._spawn(worker)
